"""Tests for the Algorithm-1 orchestration and variants."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.training.self_refine import SelfRefineConfig, SelfRefineTrainer
from repro.training.trainer import (
    VARIANTS,
    train_stress_model,
    variant_config,
)


class TestConfig:
    def test_defaults_follow_paper(self):
        config = SelfRefineConfig()
        assert config.beta == pytest.approx(0.1)
        assert config.num_trials == 5

    def test_invalid_values_raise(self):
        with pytest.raises(TrainingError):
            SelfRefineConfig(num_trials=0)
        with pytest.raises(TrainingError):
            SelfRefineConfig(max_reflection_rounds=0)


class TestVariants:
    def test_all_paper_variants_registered(self):
        assert set(VARIANTS) == {
            "ours", "wo_chain", "wo_learn_des", "wo_refine", "wo_reflection"
        }

    def test_variant_switches(self):
        assert variant_config("wo_chain").use_chain is False
        assert variant_config("wo_learn_des").learn_describe is False
        assert variant_config("wo_refine").use_refinement is False
        assert variant_config("wo_reflection").use_reflection is False
        assert variant_config("ours") == SelfRefineConfig()

    def test_unknown_variant_raises(self):
        with pytest.raises(TrainingError):
            variant_config("wo_everything")


class TestFullTraining:
    def test_report_is_populated(self, trained):
        __, report, __, __ = trained
        assert report.describe_curve, "instruction tuning must run"
        assert report.assess_curve_bootstrap
        assert report.describe_curve[-1] < report.describe_curve[0]

    def test_refinement_produces_pairs(self, trained):
        __, report, __, __ = trained
        assert report.num_description_pairs > 0
        assert report.num_rationale_pairs > 0
        assert report.num_reflection_rounds >= report.num_description_pairs

    def test_trained_model_beats_chance(self, trained):
        model, __, __, test = trained
        from repro.cot.chain import StressChainPipeline

        pipeline = StressChainPipeline(model)
        predictions = np.array([
            pipeline.predict(s.video).label for s in test
        ])
        labels = test.labels
        assert (predictions == labels).mean() > 0.7

    def test_wo_chain_skips_describe(self, micro_split, instruction_pairs):
        train, __ = micro_split
        config = variant_config("wo_chain", SelfRefineConfig(
            describe_epochs=10, assess_epochs=20,
            refine_sample_limit=5, num_trials=2,
            num_rationale_candidates=2, seed=1,
        ))
        __, report = train_stress_model(train, instruction_pairs, config)
        assert report.describe_curve == []
        assert report.num_description_pairs == 0

    def test_wo_refine_skips_dpo(self, micro_split, instruction_pairs):
        train, __ = micro_split
        config = variant_config("wo_refine", SelfRefineConfig(
            describe_epochs=10, assess_epochs=20, seed=1,
        ))
        __, report = train_stress_model(train, instruction_pairs, config)
        assert report.num_description_pairs == 0
        assert report.num_rationale_pairs == 0

    def test_training_is_deterministic(self, micro_split, instruction_pairs):
        train, __ = micro_split
        config = SelfRefineConfig(
            describe_epochs=15, assess_epochs=20,
            refine_sample_limit=5, num_trials=2,
            num_rationale_candidates=2, seed=2,
        )
        model_a, __ = train_stress_model(train, instruction_pairs, config,
                                         seed=2)
        model_b, __ = train_stress_model(train, instruction_pairs, config,
                                         seed=2)
        for name, value in model_a.state_dict().items():
            assert np.allclose(value, model_b.state_dict()[name]), name


class TestSeedPrecedence:
    """train_stress_model must drive the model RNG and every training
    stage from ONE root seed (the historical bug seeded the model from
    the ``seed`` argument while training used ``config.seed``)."""

    CONFIG_KW = dict(
        describe_epochs=4, assess_epochs=6, refine_sample_limit=3,
        num_trials=2, num_rationale_candidates=2,
        dpo_desc_epochs=1, dpo_rationale_epochs=1,
    )

    def test_config_only_uses_config_seed(self, micro_split,
                                          instruction_pairs):
        train, __ = micro_split
        pairs = instruction_pairs[:20]
        config = SelfRefineConfig(seed=9, **self.CONFIG_KW)
        model_a, __ = train_stress_model(train, pairs, config)
        model_b, __ = train_stress_model(train, pairs, config, seed=9)
        for name, value in model_a.state_dict().items():
            assert np.array_equal(value, model_b.state_dict()[name]), name

    def test_explicit_seed_overrides_config_seed(self, micro_split,
                                                 instruction_pairs):
        train, __ = micro_split
        pairs = instruction_pairs[:20]
        conflicted = SelfRefineConfig(seed=1, **self.CONFIG_KW)
        aligned = SelfRefineConfig(seed=9, **self.CONFIG_KW)
        model_a, __ = train_stress_model(train, pairs, conflicted, seed=9)
        model_b, __ = train_stress_model(train, pairs, aligned)
        for name, value in model_a.state_dict().items():
            assert np.array_equal(value, model_b.state_dict()[name]), name

    def test_seed_only_call_pattern(self, micro_split, instruction_pairs):
        train, __ = micro_split
        pairs = instruction_pairs[:20]
        config = SelfRefineConfig(seed=4, **self.CONFIG_KW)
        model_a, __ = train_stress_model(train, pairs, config)
        model_b, __ = train_stress_model(train, pairs, config, seed=4)
        model_c, __ = train_stress_model(train, pairs,
                                         SelfRefineConfig(seed=0,
                                                          **self.CONFIG_KW),
                                         seed=4)
        state_a, state_b, state_c = (model_a.state_dict(),
                                     model_b.state_dict(),
                                     model_c.state_dict())
        for name in state_a:
            assert np.array_equal(state_a[name], state_b[name]), name
            assert np.array_equal(state_a[name], state_c[name]), name
