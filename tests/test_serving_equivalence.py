"""Bitwise service <-> serial equivalence.

The serving layer's core guarantee: every response from
:class:`StressService` is *bitwise identical* to what a serial
``pipeline.predict`` call would have returned for the same request --
same label, same float64 probability (``==``, no tolerance), same
description and rationale cues, and the same dialogue transcript.

The suite covers all four inference protocols (plain chain, direct
assessment, retrieval-augmented, test-time refine), cold and warm
caches, duplicate-heavy request mixes, and the ``run_many`` batch
entry point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cot.chain import StressChainPipeline
from repro.datasets.base import Sample
from repro.model.foundation import FoundationModel
from repro.retrieval.retriever import RandomRetriever
from repro.rng import make_rng
from repro.serving import ServiceConfig, StressService
from repro.video.frame import Video, VideoSpec

VARIANTS = ("chain", "no_chain", "retriever", "refine")


def _videos(count: int, base_seed: int) -> list[Video]:
    videos = []
    for index in range(count):
        rng = np.random.default_rng(base_seed + index)
        curves = np.clip(rng.random((12, 12)) * rng.uniform(0.2, 1.0), 0, 1)
        videos.append(Video(VideoSpec(
            video_id=f"eq-{base_seed}-{index}",
            subject_id=f"eq-subj-{index % 3}",
            au_intensities=curves, identity=rng.standard_normal(8),
            noise_scale=0.02, seed=base_seed * 100 + index,
        )))
    return videos


@pytest.fixture(scope="module")
def model():
    return FoundationModel(make_rng(31, "serving-equivalence"))


@pytest.fixture(scope="module")
def pool():
    rng = np.random.default_rng(88)
    samples = []
    for index in range(4):
        curves = np.clip(rng.random((12, 12)) * 0.5, 0, 1)
        video = Video(VideoSpec(
            video_id=f"eq-pool-{index}", subject_id=f"eq-pool-subj-{index}",
            au_intensities=curves, identity=rng.standard_normal(8),
            seed=6_500 + index,
        ))
        samples.append(Sample(video=video, label=index % 2,
                              true_aus=np.zeros(12)))
    return samples


def _make_pipeline(variant: str, model, pool) -> StressChainPipeline:
    if variant == "chain":
        return StressChainPipeline(model)
    if variant == "no_chain":
        return StressChainPipeline(model, use_chain=False)
    if variant == "retriever":
        return StressChainPipeline(
            model,
            retriever=RandomRetriever(model, pool, num_examples=2, seed=3),
        )
    return StressChainPipeline(
        model, test_time_refine=True,
        verification_pool=[s.video for s in pool],
        refine_rounds=2, num_verify_trials=2, seed=17,
    )


def assert_results_identical(served, serial, context: str = "") -> None:
    assert served.label == serial.label, context
    # float64 bitwise: == with no tolerance is the whole point
    assert served.prob_stressed == serial.prob_stressed, context
    if serial.description is None:
        assert served.description is None, context
    else:
        assert served.description is not None, context
        assert served.description.au_ids == serial.description.au_ids, context
    assert tuple(served.rationale) == tuple(serial.rationale), context
    assert served.session.transcript() == serial.session.transcript(), context
    assert len(served.session) == len(serial.session), context


@pytest.mark.parametrize("variant", VARIANTS)
def test_served_matches_serial_per_variant(variant, model, pool):
    pipeline = _make_pipeline(variant, model, pool)
    videos = _videos(5, base_seed=40)
    serial = [pipeline.predict(video) for video in videos]
    with StressService(pipeline, ServiceConfig(max_wait_ms=0.5)) as service:
        # cold caches, then a warm second pass over the same contents
        for pass_name in ("cold", "warm"):
            for video, want in zip(videos, serial):
                got = service.predict(video, timeout=60)
                assert_results_identical(
                    got, want, f"{variant}/{pass_name}/{video.video_id}")


@pytest.mark.parametrize("variant", ["chain", "refine"])
def test_duplicate_heavy_mix(variant, model, pool):
    """Request mixes that repeat contents within one batch resolve to
    the identical serial result for every copy."""
    pipeline = _make_pipeline(variant, model, pool)
    videos = _videos(3, base_seed=55)
    serial = {v.video_id: pipeline.predict(v) for v in videos}
    mix = [videos[i] for i in (0, 1, 0, 2, 1, 0, 2, 2, 1, 0)]
    with StressService(
        pipeline, ServiceConfig(max_batch_size=16, max_wait_ms=25),
    ) as service:
        futures = [service.submit(video) for video in mix]
        for video, future in zip(mix, futures):
            assert_results_identical(
                future.result(60), serial[video.video_id],
                f"{variant}/{video.video_id}")
        stats = service.stats()
    assert stats.completed == len(mix)
    assert stats.deduplicated + stats.cache["describe"].hits > 0


def test_sessions_are_per_request(model, pool):
    """Two requests for the same content get distinct sessions -- a
    caller mutating one transcript cannot corrupt another response."""
    pipeline = _make_pipeline("chain", model, pool)
    video = _videos(1, base_seed=70)[0]
    with StressService(pipeline) as service:
        first = service.predict(video, timeout=60)
        second = service.predict(video, timeout=60)
    assert first.session is not second.session
    assert first.session.transcript() == second.session.transcript()


def test_predict_many_matches_serial(model, pool):
    for variant in VARIANTS:
        pipeline = _make_pipeline(variant, model, pool)
        videos = _videos(4, base_seed=80)
        serial = [pipeline.predict(video) for video in videos]
        batched = pipeline.predict_many(videos, batch_size=3)
        assert len(batched) == len(serial)
        for want, got in zip(serial, batched):
            assert_results_identical(got, want, variant)
