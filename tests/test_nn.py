"""Tests for the numpy neural substrate: ops, layers, optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.layers import MLP, Linear, Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.serialization import load_params, save_params
from repro.nn.tensorops import (
    binary_cross_entropy_with_logits,
    log_sigmoid,
    logit,
    logsumexp,
    one_hot,
    relu,
    sigmoid,
    softmax,
)
from repro.rng import make_rng

finite_arrays = st.lists(
    st.floats(min_value=-50, max_value=50), min_size=1, max_size=16
).map(np.array)


class TestTensorOps:
    def test_sigmoid_extremes(self):
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)

    @given(finite_arrays)
    def test_log_sigmoid_consistent(self, x):
        assert np.allclose(log_sigmoid(x), np.log(sigmoid(x) + 1e-300),
                           atol=1e-6)

    def test_log_sigmoid_no_overflow(self):
        out = log_sigmoid(np.array([-1e6, 1e6]))
        assert np.isfinite(out).all()

    @given(finite_arrays)
    def test_softmax_sums_to_one(self, x):
        assert softmax(x).sum() == pytest.approx(1.0)

    @given(finite_arrays)
    def test_logsumexp_matches_naive(self, x):
        naive = np.log(np.exp(x - x.max()).sum()) + x.max()
        assert logsumexp(x) == pytest.approx(naive, abs=1e-8)

    def test_logit_inverts_sigmoid(self):
        p = np.array([0.1, 0.5, 0.9])
        assert np.allclose(sigmoid(logit(p)), p)

    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        assert np.array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_range_checked(self):
        with pytest.raises(ValueError):
            one_hot(np.array([5]), 3)

    def test_bce_gradient_matches_finite_difference(self):
        rng = make_rng(0, "bce")
        logits = rng.normal(0, 2, 6)
        targets = (rng.random(6) > 0.5).astype(float)
        __, grad = binary_cross_entropy_with_logits(logits, targets)
        eps = 1e-6
        for i in range(6):
            bumped = logits.copy()
            bumped[i] += eps
            up, __ = binary_cross_entropy_with_logits(bumped, targets)
            bumped[i] -= 2 * eps
            down, __ = binary_cross_entropy_with_logits(bumped, targets)
            assert grad[i] == pytest.approx((up - down) / (2 * eps), abs=1e-5)

    def test_bce_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            binary_cross_entropy_with_logits(np.zeros(3), np.zeros(4))


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, make_rng(0, "lin"))
        assert layer.forward(np.zeros((2, 4))).shape == (2, 3)

    def test_gradient_check(self):
        rng = make_rng(1, "lin")
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x)
        loss_grad = np.ones_like(out)
        grad_in = layer.backward(loss_grad)
        eps = 1e-6
        # Weight gradient finite difference on one entry.
        analytic = layer.weight.grad[1, 0]
        layer.weight.value[1, 0] += eps
        up = layer.forward(x).sum()
        layer.weight.value[1, 0] -= 2 * eps
        down = layer.forward(x).sum()
        assert analytic == pytest.approx((up - down) / (2 * eps), abs=1e-4)
        # Input gradient: d sum(xW+b) / dx = W row sums.
        assert np.allclose(grad_in, layer.weight.value.sum(axis=1))

    def test_backward_before_forward_raises(self):
        layer = Linear(2, 2, make_rng(0, "lin"))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))


class TestMLP:
    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4], make_rng(0, "mlp"))

    def test_can_fit_xor(self):
        rng = make_rng(2, "xor")
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0.0, 1.0, 1.0, 0.0])
        mlp = MLP([2, 8, 1], rng)
        optimizer = Adam(mlp.parameters(), lr=5e-2)
        for __ in range(400):
            optimizer.zero_grad()
            logits = mlp.forward(x)[:, 0]
            __, grad = binary_cross_entropy_with_logits(logits, y)
            mlp.backward(grad[:, np.newaxis])
            optimizer.step()
        predictions = mlp.forward(x)[:, 0] > 0
        assert np.array_equal(predictions, y.astype(bool))


class TestModule:
    def test_state_dict_roundtrip(self):
        mlp = MLP([3, 4, 1], make_rng(3, "m"))
        state = mlp.state_dict()
        clone = MLP([3, 4, 1], make_rng(4, "m2"))
        clone.load_state_dict(state)
        x = np.ones((1, 3))
        assert np.allclose(mlp.forward(x), clone.forward(x))

    def test_load_missing_param_raises(self):
        mlp = MLP([3, 4, 1], make_rng(3, "m"))
        with pytest.raises(KeyError):
            mlp.load_state_dict({})

    def test_load_shape_mismatch_raises(self):
        mlp = MLP([3, 4, 1], make_rng(3, "m"))
        state = {name: np.zeros(2) for name in mlp.state_dict()}
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)

    def test_copy_is_independent(self):
        mlp = MLP([2, 2], make_rng(5, "m"))
        clone = mlp.copy()
        clone.layers[0].weight.value += 1.0
        assert not np.allclose(mlp.layers[0].weight.value,
                               clone.layers[0].weight.value)


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter("w", np.array([5.0, -3.0]))

    def test_sgd_descends(self):
        param = self._quadratic_param()
        optimizer = SGD([param], lr=0.1)
        for __ in range(100):
            param.zero_grad()
            param.grad += 2 * param.value
            optimizer.step()
        assert np.abs(param.value).max() < 1e-3

    def test_sgd_momentum_descends(self):
        param = self._quadratic_param()
        optimizer = SGD([param], lr=0.05, momentum=0.9)
        for __ in range(200):
            param.zero_grad()
            param.grad += 2 * param.value
            optimizer.step()
        assert np.abs(param.value).max() < 1e-2

    def test_adam_descends(self):
        param = self._quadratic_param()
        optimizer = Adam([param], lr=0.3)
        for __ in range(200):
            param.zero_grad()
            param.grad += 2 * param.value
            optimizer.step()
        assert np.abs(param.value).max() < 1e-2

    def test_weight_decay_shrinks(self):
        param = Parameter("w", np.array([1.0]))
        optimizer = Adam([param], lr=0.1, weight_decay=1.0)
        for __ in range(50):
            param.zero_grad()
            optimizer.step()
        assert abs(param.value[0]) < 1.0

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=-1.0)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        mlp = MLP([3, 2], make_rng(6, "s"))
        path = tmp_path / "params.npz"
        save_params(mlp, path)
        clone = MLP([3, 2], make_rng(7, "s2"))
        load_params(clone, path)
        x = np.ones((1, 3))
        assert np.allclose(mlp.forward(x), clone.forward(x))

    def test_load_missing_file_raises(self, tmp_path):
        mlp = MLP([3, 2], make_rng(6, "s"))
        with pytest.raises(FileNotFoundError):
            load_params(mlp, tmp_path / "nope.npz")
