"""Tests for the chain pipeline, rationale grounding, in-context shift."""

import numpy as np
import pytest

from repro.cot.chain import StressChainPipeline
from repro.cot.incontext import (
    InContextExample,
    description_similarity,
    incontext_logit_shift,
)
from repro.cot.rationale import Rationale
from repro.errors import ModelError
from repro.facs.descriptions import FacialDescription


class TestPipeline:
    def test_result_fields(self, trained):
        model, __, __, test = trained
        pipeline = StressChainPipeline(model)
        result = pipeline.predict(test[0].video)
        assert result.label in (0, 1)
        assert 0.0 <= result.prob_stressed <= 1.0
        assert result.description is not None
        assert isinstance(result.rationale, Rationale)
        assert result.elapsed_seconds > 0
        assert len(result.session) >= 2  # describe + assess (+ highlight)

    def test_rationale_orders_description(self, trained):
        model, __, __, test = trained
        pipeline = StressChainPipeline(model)
        result = pipeline.predict(test[0].video)
        assert set(result.rationale) <= set(result.description.au_ids)

    def test_wo_chain_has_no_description(self, trained):
        model, __, __, test = trained
        pipeline = StressChainPipeline(model, use_chain=False)
        result = pipeline.predict(test[0].video)
        assert result.description is None
        assert isinstance(result.rationale, Rationale)

    def test_deterministic(self, trained):
        model, __, __, test = trained
        pipeline = StressChainPipeline(model)
        a = pipeline.predict(test[0].video)
        b = pipeline.predict(test[0].video)
        assert a.label == b.label
        assert a.rationale.au_ids == b.rationale.au_ids

    def test_test_time_refine_requires_pool(self, trained):
        model, __, __, __ = trained
        with pytest.raises(ModelError):
            StressChainPipeline(model, test_time_refine=True)

    def test_test_time_refine_runs(self, trained):
        model, __, train, test = trained
        pipeline = StressChainPipeline(
            model, test_time_refine=True,
            verification_pool=[s.video for s in list(train)[:20]],
            refine_rounds=1, num_verify_trials=2,
        )
        result = pipeline.predict(test[0].video)
        assert result.label in (0, 1)


class TestRationale:
    def test_render_mentions_regions(self):
        text = Rationale((4, 12)).render()
        assert "eyebrow" in text and "lips" in text

    def test_render_empty(self):
        assert "No single facial expression" in Rationale(()).render()

    def test_segment_ranking_no_duplicates(self, trained):
        model, __, __, test = trained
        video = test[0].video
        labels = video.segmentation(64)
        ranking = Rationale((1, 2, 4)).segment_ranking(labels, per_au=2)
        assert len(ranking) == len(set(ranking))

    def test_model_segment_ranking_prioritises_first_au(self, trained):
        model, __, __, test = trained
        video = test[0].video
        labels = video.segmentation(64)
        a_first = Rationale((4, 6)).model_segment_ranking(model, labels)
        b_first = Rationale((6, 4)).model_segment_ranking(model, labels)
        assert a_first[0] != b_first[0] or a_first == b_first[::-1]


class TestInContext:
    def test_similarity_bounds(self):
        a = FacialDescription((1, 4))
        b = FacialDescription((1, 4))
        c = FacialDescription((6, 12))
        assert description_similarity(a, b) == pytest.approx(1.0)
        assert description_similarity(a, c) == 0.0
        assert description_similarity(a, FacialDescription(())) == 0.0

    def test_no_examples_no_shift(self):
        assert incontext_logit_shift(FacialDescription((1,)), []) == 0.0

    def test_shift_direction_follows_label(self):
        query = FacialDescription((1, 4))
        stressed = InContextExample(FacialDescription((1, 4)), 1)
        unstressed = InContextExample(FacialDescription((1, 4)), 0)
        assert incontext_logit_shift(query, [stressed]) > 0
        assert incontext_logit_shift(query, [unstressed]) < 0

    def test_similar_example_shifts_more(self):
        query = FacialDescription((1, 4))
        near = InContextExample(FacialDescription((1, 4)), 1)
        far = InContextExample(FacialDescription((12,)), 1)
        assert incontext_logit_shift(query, [near]) > \
            incontext_logit_shift(query, [far])
