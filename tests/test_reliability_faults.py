"""Fault injection: plan determinism, spec parsing, armed sites."""

import numpy as np
import pytest

from repro.errors import ConfigError, FaultInjectedError
from repro.model.foundation import FoundationModel
from repro.model.persistence import save_model
from repro.reliability.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    configure_from_env,
    fault_point,
    injected,
    install_plan,
    uninstall_plan,
)
from repro.rng import make_rng
from repro.serving.cache import LRUCache


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    uninstall_plan()


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(site="model.backward", rate=0.5)

    def test_rate_bounds(self):
        with pytest.raises(ConfigError):
            FaultSpec(site="serve.execute", rate=1.5)
        with pytest.raises(ConfigError):
            FaultSpec(site="serve.execute", rate=-0.1)

    def test_bad_mode(self):
        with pytest.raises(ConfigError):
            FaultSpec(site="serve.execute", rate=0.5, mode="crash")

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan([FaultSpec(site="cache.get", rate=0.1),
                       FaultSpec(site="cache.get", rate=0.2)])


class TestSpecParsing:
    def test_full_grammar(self):
        plan = FaultPlan.from_spec(
            "seed=9;serve.execute:rate=0.25;"
            "cache.get:rate=1.0,mode=delay,delay_ms=0.5,max=3")
        assert plan.seed == 9
        assert set(plan.sites) == {"serve.execute", "cache.get"}

    def test_missing_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_spec("serve.execute:mode=error")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_spec("serve.execute:rate=0.5,when=later")

    def test_empty_spec_is_empty_plan(self):
        plan = FaultPlan.from_spec("")
        assert plan.sites == ()

    def test_env_configuration(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "serve.execute:rate=0.5;seed=3")
        plan = configure_from_env()
        assert plan is not None and plan.seed == 3
        assert active_plan() is plan

    def test_env_unset_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        uninstall_plan()
        assert configure_from_env() is None
        assert active_plan() is None


class TestDeterminism:
    @staticmethod
    def _schedule(seed: int, hits: int) -> list[bool]:
        plan = FaultPlan([FaultSpec(site="serve.execute", rate=0.3)],
                         seed=seed)
        outcomes = []
        for _ in range(hits):
            try:
                plan.check("serve.execute")
                outcomes.append(False)
            except FaultInjectedError:
                outcomes.append(True)
        return outcomes

    def test_same_seed_same_schedule(self):
        assert self._schedule(5, 200) == self._schedule(5, 200)

    def test_different_seed_different_schedule(self):
        assert self._schedule(5, 200) != self._schedule(6, 200)

    def test_rate_is_respected(self):
        faults = sum(self._schedule(0, 2000))
        assert 450 <= faults <= 750  # ~0.3 * 2000, generous band

    def test_max_faults_cap(self):
        plan = FaultPlan(
            [FaultSpec(site="serve.execute", rate=1.0, max_faults=2)])
        fired = 0
        for _ in range(10):
            try:
                plan.check("serve.execute")
            except FaultInjectedError:
                fired += 1
        assert fired == 2
        counts = plan.counts()["serve.execute"]
        assert counts.hits == 10 and counts.faults == 2

    def test_sites_draw_independent_streams(self):
        # The cache.get stream must not perturb serve.execute's.
        lone = FaultPlan([FaultSpec(site="serve.execute", rate=0.3)], seed=1)
        paired = FaultPlan([FaultSpec(site="serve.execute", rate=0.3),
                            FaultSpec(site="cache.get", rate=0.3)], seed=1)
        lone_faults, paired_faults = 0, 0
        for _ in range(100):
            try:
                lone.check("serve.execute")
            except FaultInjectedError:
                lone_faults += 1
            try:
                paired.check("cache.get")
            except FaultInjectedError:
                pass
            try:
                paired.check("serve.execute")
            except FaultInjectedError:
                paired_faults += 1
        assert lone_faults == paired_faults


class TestArming:
    def test_unarmed_fault_point_is_noop(self):
        uninstall_plan()
        for site in FAULT_SITES:
            fault_point(site)  # must not raise

    def test_injected_context_restores_previous(self):
        outer = FaultPlan([], seed=1)
        install_plan(outer)
        with injected(FaultPlan([], seed=2)) as inner:
            assert active_plan() is inner
        assert active_plan() is outer

    def test_delay_mode_does_not_raise(self):
        plan = FaultPlan([FaultSpec(site="cache.get", rate=1.0,
                                    mode="delay", delay_ms=0.1)])
        with injected(plan):
            cache = LRUCache(4)
            assert cache.get("missing") is None
        assert plan.counts()["cache.get"].faults > 0


class TestCompiledSites:
    def test_model_forward_site(self, sample_video):
        model = FoundationModel(make_rng(0, "fault-site"))
        with injected(FaultPlan(
                [FaultSpec(site="model.forward", rate=1.0)])):
            with pytest.raises(FaultInjectedError):
                model.embed_video(sample_video)
        # Disarmed: same call succeeds.
        assert model.embed_video(sample_video).shape[0] == 1

    def test_cache_get_site(self):
        cache = LRUCache(4)
        cache.put("k", 1)
        with injected(FaultPlan([FaultSpec(site="cache.get", rate=1.0)])):
            with pytest.raises(FaultInjectedError):
                cache.get("k")
        assert cache.get("k") == 1

    def test_persistence_site(self, tmp_path):
        model = FoundationModel(make_rng(0, "fault-site"))
        with injected(FaultPlan(
                [FaultSpec(site="persistence.io", rate=1.0)])):
            with pytest.raises(FaultInjectedError):
                save_model(model, tmp_path / "m.npz")

    def test_cv_fold_site(self, micro_uvsd):
        from repro.evaluation.cross_validation import cross_validate

        def fit(train, fold_index):
            return lambda sample: 0

        with injected(FaultPlan([FaultSpec(site="cv.fold", rate=1.0)])):
            with pytest.raises(FaultInjectedError):
                cross_validate(fit, micro_uvsd, num_folds=2, seed=0)

    def test_faults_off_results_identical(self, trained, sample_video):
        """An armed zero-rate plan must not perturb a single output."""
        from repro.cot.chain import StressChainPipeline

        model, __, __, __ = trained
        pipeline = StressChainPipeline(model)
        baseline = pipeline.predict(sample_video)
        with injected(FaultPlan(
                [FaultSpec(site=site, rate=0.0) for site in FAULT_SITES])):
            armed = pipeline.predict(sample_video)
        assert armed.label == baseline.label
        assert armed.prob_stressed == baseline.prob_stressed
        assert armed.rationale.au_ids == baseline.rationale.au_ids
        assert np.array_equal(
            armed.description.to_vector(), baseline.description.to_vector())
