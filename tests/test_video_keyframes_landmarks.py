"""Tests for keyframe extraction and landmark grounding."""

import numpy as np
import pytest

from repro.facs.action_units import AU_IDS
from repro.facs.regions import region_for_au
from repro.video.frame import IDENTITY_DIM, Video, VideoSpec
from repro.video.keyframes import expressiveness, extract_keyframes
from repro.video.landmarks import (
    au_landmark,
    landmark_for_region,
    segments_for_au,
)


def _spec(curves):
    return VideoSpec(
        video_id="v0", subject_id="s0", au_intensities=curves,
        identity=np.zeros(IDENTITY_DIM), seed=0,
    )


class TestKeyframes:
    def test_expressiveness_is_row_sum(self):
        curves = np.zeros((4, 12))
        curves[2, :] = 0.5
        assert np.allclose(expressiveness(_spec(curves)),
                           [0, 0, 6.0, 0])

    def test_extract_most_and_least(self):
        curves = np.zeros((5, 12))
        curves[3, :] = 0.9
        curves[1, 0] = 0.2
        expressive, neutral = extract_keyframes(_spec(curves))
        assert expressive == 3
        assert neutral == 0  # earliest among ties

    def test_tie_resolution_deterministic(self):
        curves = np.full((4, 12), 0.5)
        assert extract_keyframes(_spec(curves)) == (0, 0)


class TestLandmarks:
    def test_region_landmark_in_frame(self):
        row, col = landmark_for_region("lips", 96)
        assert 0 <= row < 96 and 0 <= col < 96

    def test_au_landmark_inside_region(self):
        for au_id in AU_IDS:
            row, col = au_landmark(au_id, 96)
            assert region_for_au(au_id).contains(row, col)

    def test_unknown_region_raises(self):
        with pytest.raises(KeyError):
            landmark_for_region("nostril", 96)

    def test_segments_for_au_covers_blob(self):
        """The ranked segments must carry the AU's pattern energy: the
        top segment overlaps the AU's region, and the landmark pixel's
        own segment ranks within the top three."""
        from repro.video.face_synth import default_renderer

        video = Video(_spec(np.full((4, 12), 0.2)))
        labels = video.segmentation(64)
        for au_id in AU_IDS:
            segments = segments_for_au(au_id, labels, max_segments=3)
            assert segments, f"no segment found for AU{au_id}"
            pattern = np.abs(default_renderer(96).au_pattern(au_id))
            top_energy = pattern[labels == segments[0]].sum()
            assert top_energy > 0, f"AU{au_id} top segment carries no energy"
            row, col = au_landmark(au_id, 96)
            assert labels[row, col] in segments

    def test_max_segments_respected(self):
        video = Video(_spec(np.full((4, 12), 0.2)))
        labels = video.segmentation(64)
        assert len(segments_for_au(4, labels, max_segments=1)) == 1
