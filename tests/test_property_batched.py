"""Property-based equivalence of the batched prediction engine.

Hypothesis drives the three ``*_from_frames_batch`` entry points
against their per-frame counterparts over arbitrary frame stacks:
random contents, float32/float64 inputs, batch sizes from 0 (the
empty-stack edge) through small stacks, and mixed per-frame
descriptions including the direct-query ``None``.

Frames are generated from a hypothesis-chosen RNG seed rather than
element-by-element -- same coverage of the input space, orders of
magnitude cheaper per example.  Tolerances follow the repo convention
for stacked-GEMM vs single-row math (``rtol=0, atol=1e-12``): BLAS
does not guarantee row-wise bitwise equality across batch shapes,
which is exactly why the *serving* path never routes per-request math
through these entry points (see DESIGN.md section 10).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.facs.action_units import NUM_AUS
from repro.facs.descriptions import FacialDescription
from repro.model.foundation import FoundationModel
from repro.rng import make_rng
from repro.video.frame import Video, VideoSpec

FRAME = 96  # must divide into the model's 12x12 patch grid

_MODEL = FoundationModel(make_rng(123, "property-model"))

batch_sizes = st.integers(min_value=0, max_value=5)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
dtypes = st.sampled_from([np.float64, np.float32])


def _frames(n: int, seed: int, dtype) -> tuple[np.ndarray, np.ndarray]:
    """A deterministic (N, 96, 96) stack and neutral frame in [0, 1]."""
    rng = np.random.default_rng(seed)
    stack = rng.random((n, FRAME, FRAME)).astype(dtype)
    neutral = rng.random((FRAME, FRAME)).astype(dtype)
    return stack, neutral


class TestAuLogitsBatch:
    @given(n=batch_sizes, seed=seeds, dtype=dtypes)
    def test_matches_per_frame_loop(self, n, seed, dtype):
        frames, neutral = _frames(n, seed, dtype)
        batched = _MODEL.au_logits_from_frames_batch(frames, neutral)
        assert batched.shape == (n, NUM_AUS)
        assert batched.dtype == np.float64
        looped = [
            _MODEL.au_logits_from_frames(frame, neutral) for frame in frames
        ]
        np.testing.assert_allclose(
            batched, np.stack(looped) if looped else np.zeros((0, NUM_AUS)),
            rtol=0, atol=1e-12,
        )


class TestAssessLogitBatch:
    @given(n=batch_sizes, seed=seeds, dtype=dtypes,
           desc_mode=st.sampled_from(["none", "matrix", "mixed_list"]))
    def test_matches_per_frame_loop(self, n, seed, dtype, desc_mode):
        frames, neutral = _frames(n, seed, dtype)
        desc_rng = np.random.default_rng(seed + 1)
        vectors = (desc_rng.random((n, NUM_AUS)) < 0.5).astype(np.float64)
        if desc_mode == "none":
            descriptions = None
            per_frame = [None] * n
        elif desc_mode == "matrix":
            descriptions = vectors
            per_frame = [FacialDescription.from_vector(v) for v in vectors]
        else:
            per_frame = [
                FacialDescription.from_vector(v) if i % 2 == 0 else None
                for i, v in enumerate(vectors)
            ]
            descriptions = list(per_frame)
        batched = _MODEL.assess_logit_from_frames_batch(
            frames, neutral, descriptions)
        assert batched.shape == (n,)
        looped = np.array([
            _MODEL.assess_logit_from_frames(frame, neutral, desc)
            for frame, desc in zip(frames, per_frame)
        ])
        np.testing.assert_allclose(batched, looped, rtol=0, atol=1e-12)

    @given(n=st.integers(min_value=0, max_value=4), seed=seeds)
    def test_wrong_description_count_rejected(self, n, seed):
        frames, neutral = _frames(n, seed, np.float64)
        with pytest.raises(ModelError):
            _MODEL.assess_logit_from_frames_batch(
                frames, neutral, [None] * (n + 1))

    @given(n=st.integers(min_value=0, max_value=4), seed=seeds)
    def test_wrong_matrix_shape_rejected(self, n, seed):
        frames, neutral = _frames(n, seed, np.float64)
        with pytest.raises(ModelError):
            _MODEL.assess_logit_from_frames_batch(
                frames, neutral, np.zeros((n + 2, NUM_AUS)))


class TestChainProbBatch:
    @given(n=batch_sizes, seed=seeds, dtype=dtypes)
    def test_matches_per_frame_loop(self, n, seed, dtype):
        frames, neutral = _frames(n, seed, dtype)
        batched = _MODEL.chain_prob_from_frames_batch(frames, neutral)
        assert batched.shape == (n,)
        looped = np.array([
            _MODEL.chain_prob_from_frames(frame, neutral) for frame in frames
        ])
        np.testing.assert_allclose(batched, looped, rtol=0, atol=1e-12)
        if n:
            assert float(batched.min()) >= 0.0
            assert float(batched.max()) <= 1.0


class TestEmptyBatchEdges:
    """Batch size 0 is legal everywhere and returns empty outputs."""

    def test_empty_stack(self):
        frames, neutral = _frames(0, 3, np.float64)
        assert _MODEL.au_logits_from_frames_batch(
            frames, neutral).shape == (0, NUM_AUS)
        assert _MODEL.chain_prob_from_frames_batch(
            frames, neutral).shape == (0,)
        for descriptions in (None, [], np.zeros((0, NUM_AUS))):
            out = _MODEL.assess_logit_from_frames_batch(
                frames, neutral, descriptions)
            assert out.shape == (0,)

    def test_batch_of_one_matches_single(self):
        frames, neutral = _frames(1, 5, np.float64)
        np.testing.assert_allclose(
            _MODEL.au_logits_from_frames_batch(frames, neutral)[0],
            _MODEL.au_logits_from_frames(frames[0], neutral),
            rtol=0, atol=1e-12,
        )

    def test_non_stack_input_rejected(self):
        __, neutral = _frames(0, 3, np.float64)
        with pytest.raises(ModelError):
            _MODEL.au_logits_from_frames_batch(neutral, neutral)


class TestVideoPathConsistency:
    """The frames-based entry points agree with the video-based chain
    when fed a video's own keyframes."""

    @given(seed=st.integers(min_value=0, max_value=100))
    def test_au_logits_match_video_path(self, seed):
        rng = np.random.default_rng(seed)
        curves = np.clip(rng.random((12, NUM_AUS)), 0, 1)
        video = Video(VideoSpec(
            video_id=f"prop-{seed}", subject_id=f"prop-subj-{seed}",
            au_intensities=curves, identity=rng.standard_normal(8),
            seed=10_000 + seed,
        ))
        expressive, neutral = video.keyframes
        np.testing.assert_allclose(
            _MODEL.au_logits_from_frames(expressive, neutral),
            _MODEL.au_logits(video),
            rtol=0, atol=1e-12,
        )
