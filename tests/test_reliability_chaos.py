"""Chaos suite: concurrent serving under injected faults, breaker
behaviour, and SIGKILL-grade training interruption.

The liveness contract under chaos: with a seeded :class:`FaultPlan`
armed and concurrent clients running, **every** submitted future
resolves -- to a result or to a typed library error -- no worker dies,
expired requests are shed without executor work, and the counters stay
consistent.  With faults off (or a zero-rate plan armed), everything
is bitwise what it always was.
"""

import os
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cot.chain import ChainResult, StressChainPipeline
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FaultInjectedError,
)
from repro.reliability.breaker import BreakerConfig, CLOSED, OPEN
from repro.reliability.faults import (
    FaultPlan,
    FaultSpec,
    injected,
    uninstall_plan,
)
from repro.reliability.retry import RetryPolicy
from repro.serving.cache import StageCaches
from repro.serving.executor import ChainBatchExecutor
from repro.serving.service import ServiceConfig, StressService


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    uninstall_plan()


@pytest.fixture()
def pipeline(trained):
    model, __, __, __ = trained
    return StressChainPipeline(model)


@pytest.fixture()
def video_pool(trained):
    __, __, __, test = trained
    return [sample.video for sample in list(test)[:8]]


# ----------------------------------------------------------------------
# Serving chaos
# ----------------------------------------------------------------------


class TestConcurrentChaos:
    def test_every_future_resolves_under_faults(self, pipeline, video_pool):
        plan = FaultPlan([
            FaultSpec(site="serve.execute", rate=0.15),
            FaultSpec(site="model.forward", rate=0.05),
            FaultSpec(site="cache.get", rate=0.05, mode="delay",
                      delay_ms=0.2),
        ], seed=1234)
        config = ServiceConfig(
            max_batch_size=4, max_wait_ms=1.0,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_ms=0.1,
                                     max_delay_ms=0.5, seed=5),
        )
        futures, futures_lock = [], threading.Lock()

        with injected(plan), StressService(pipeline, config) as service:

            def client(worker: int):
                for i in range(8):
                    video = video_pool[(worker + i) % len(video_pool)]
                    # Every fourth request carries an (effectively
                    # already expired) deadline to exercise shedding
                    # amid the fault storm.
                    deadline_ms = 0.01 if i % 4 == 3 else None
                    future = service.submit(video, deadline_ms=deadline_ms)
                    with futures_lock:
                        futures.append(future)

            threads = [threading.Thread(target=client, args=(n,))
                       for n in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive()

            # Liveness: every single future resolves, each to a chain
            # result or a *typed* reliability error -- nothing hangs,
            # nothing leaks a bare RuntimeError.
            results = failures = 0
            for future in futures:
                exc = future.exception(timeout=30)
                if exc is None:
                    result = future.result(timeout=0)
                    assert isinstance(result, ChainResult)
                    assert result.label in (0, 1)
                    results += 1
                else:
                    assert isinstance(
                        exc, (FaultInjectedError, DeadlineExceededError))
                    failures += 1
            assert results > 0  # chaos did not take the service down

            snapshot = service.stats()
            assert snapshot.requests == len(futures) == 48
            assert (snapshot.completed + snapshot.failed + snapshot.shed
                    == snapshot.requests)
            assert snapshot.rejected == 0
            assert service.close(timeout=10) is True

        # The plan actually fired (the seed guarantees it at these
        # rates and volumes).
        assert any(c.faults for c in plan.counts().values())

    def test_shed_requests_spend_no_executor_work(self, pipeline,
                                                  video_pool):
        config = ServiceConfig(max_batch_size=8, max_wait_ms=5.0)
        with StressService(pipeline, config) as service:
            with pytest.raises(DeadlineExceededError):
                # 10us of budget cannot survive the 5ms batching wait.
                service.predict(video_pool[0], timeout=10, deadline_ms=0.01)
            snapshot = service.stats()
        assert snapshot.shed == 1
        assert snapshot.completed == 0 and snapshot.failed == 0
        assert snapshot.batches == 0  # no batch ever reached the executor

    def test_fault_schedule_is_deterministic(self, pipeline, video_pool):
        def signature(seed: int) -> list:
            out = []
            executor = ChainBatchExecutor(pipeline, StageCaches())
            with injected(FaultPlan(
                    [FaultSpec(site="serve.execute", rate=0.4)], seed=seed)):
                for video in video_pool:
                    outcomes, __ = executor.run_batch([video])
                    outcome = outcomes[0]
                    if isinstance(outcome, BaseException):
                        out.append(type(outcome).__name__)
                    else:
                        out.append((outcome.label, outcome.prob_stressed))
            return out

        first, second = signature(7), signature(7)
        assert first == second
        assert "FaultInjectedError" in first  # the schedule fired

    def test_zero_rate_plan_served_results_bitwise(self, pipeline,
                                                   video_pool):
        video = video_pool[0]
        baseline = pipeline.predict(video)
        plan = FaultPlan([
            FaultSpec(site="serve.execute", rate=0.0),
            FaultSpec(site="model.forward", rate=0.0),
        ])
        with injected(plan), StressService(pipeline) as service:
            served = service.predict(video, timeout=10)
        assert served.degraded is False
        assert served.label == baseline.label
        assert served.prob_stressed == baseline.prob_stressed
        assert served.rationale.au_ids == baseline.rationale.au_ids
        assert np.array_equal(served.description.to_vector(),
                              baseline.description.to_vector())


class TestBreakerChaos:
    def _config(self, **breaker_overrides):
        # threshold 0.6: the warm-up success plus two injected failures
        # trips ([T,F,F] = 0.67), but one failure alone ([T,F] = 0.5)
        # does not -- the trip point in these tests is exact.
        breaker = dict(window=4, failure_threshold=0.6, min_volume=2,
                       open_duration_s=60.0, half_open_probes=2)
        breaker.update(breaker_overrides)
        return ServiceConfig(max_batch_size=1, max_wait_ms=0.5,
                             breaker=BreakerConfig(**breaker))

    def test_open_breaker_serves_cached_degraded(self, pipeline, video_pool):
        warm, cold = video_pool[0], video_pool[1]
        plan = FaultPlan([FaultSpec(site="serve.execute", rate=1.0)], seed=3)
        with StressService(pipeline, self._config()) as service:
            reference = service.predict(warm, timeout=10)  # fills caches

            with injected(plan):
                for _ in range(2):
                    with pytest.raises(FaultInjectedError):
                        service.predict(warm, timeout=10)
                assert service.breaker.state == OPEN

                hits_before = plan.counts()["serve.execute"].hits
                degraded = service.predict(warm, timeout=10)
                # Answered from cache alone: flagged, correct, and the
                # executor (whose fault site would have fired at rate
                # 1.0) was never touched.
                assert degraded.degraded is True
                assert degraded.label == reference.label
                assert degraded.prob_stressed == reference.prob_stressed
                assert plan.counts()["serve.execute"].hits == hits_before

                with pytest.raises(CircuitOpenError):
                    service.predict(cold, timeout=10)

            snapshot = service.stats()
            assert snapshot.breaker_state == OPEN
            assert snapshot.degraded == 1

    def test_breaker_recovers_through_half_open(self, pipeline, video_pool):
        video = video_pool[0]
        config = self._config(open_duration_s=0.05)
        plan = FaultPlan([FaultSpec(site="serve.execute", rate=1.0)], seed=3)
        with StressService(pipeline, config) as service:
            with injected(plan):
                for _ in range(2):
                    with pytest.raises(FaultInjectedError):
                        service.predict(video, timeout=10)
            # Faults gone, but the circuit is still open: the cold
            # request fails fast until the cooldown elapses...
            with pytest.raises(CircuitOpenError):
                service.predict(video_pool[2], timeout=10)
            time.sleep(0.06)
            # ...then half-open probes succeed and close the circuit.
            for _ in range(2):
                result = service.predict(video, timeout=10)
                assert result.degraded is False
            assert service.breaker.state == CLOSED
            assert service.predict(video, timeout=10).label in (0, 1)


# ----------------------------------------------------------------------
# Training interruption (hard kill)
# ----------------------------------------------------------------------

#: One source of truth for the subprocess and the in-process resume.
#: Mirrors tests/test_training_checkpoint.py's tiny-but-complete run.
_TINY_SETUP = textwrap.dedent("""
    from repro.datasets import (
        build_instruction_pairs, generate_disfa, generate_uvsd)
    from repro.training.self_refine import SelfRefineConfig

    config = SelfRefineConfig(
        describe_epochs=8, assess_epochs=10, refine_sample_limit=4,
        num_trials=2, num_rationale_candidates=2, max_reflection_rounds=2,
        seed=11)
    data = generate_uvsd(seed=11, num_samples=16, num_subjects=4)
    pairs = build_instruction_pairs(
        generate_disfa(seed=11, num_samples=20, num_subjects=4))
""")

_KILL_SCRIPT = _TINY_SETUP + textwrap.dedent("""
    import os, sys
    import repro.reliability.checkpoint as ckpt
    from repro.training.trainer import train_stress_model

    kill_after = int(sys.argv[1])
    original = ckpt.TrainingCheckpointer.save_stage

    def save_then_die(self, stage_index, *args, **kwargs):
        path = original(self, stage_index, *args, **kwargs)
        if stage_index >= kill_after:
            # SIGKILL-equivalent: no finally blocks, no atexit, the
            # process just stops with the checkpoint already fsynced.
            os._exit(9)
        return path

    ckpt.TrainingCheckpointer.save_stage = save_then_die
    train_stress_model(data, pairs, config, checkpoint_dir=sys.argv[2])
    sys.exit(3)  # unreachable: the kill must fire first
""")


@pytest.fixture(scope="module")
def tiny_training():
    namespace = {}
    exec(_TINY_SETUP, namespace)  # noqa: S102 - same literals as subprocess
    return namespace["config"], namespace["data"], namespace["pairs"]


@pytest.fixture(scope="module")
def uninterrupted(tiny_training):
    from repro.training.trainer import train_stress_model

    config, data, pairs = tiny_training
    return train_stress_model(data, pairs, config)


class TestKilledTrainingResumes:
    @pytest.mark.parametrize("kill_after", [0, 2, 4])
    def test_resume_after_hard_kill_is_bitwise_identical(
            self, kill_after, tiny_training, uninterrupted, tmp_path):
        from repro.training.trainer import train_stress_model

        config, data, pairs = tiny_training
        script = tmp_path / "kill_training.py"
        script.write_text(_KILL_SCRIPT)
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        env.pop("REPRO_FAULTS", None)  # chaos env must not leak in
        proc = subprocess.run(
            [sys.executable, str(script), str(kill_after),
             str(tmp_path / "ckpt")],
            capture_output=True, text=True, timeout=300, env=env)
        assert proc.returncode == 9, proc.stderr

        # The kill landed right after stage ``kill_after``'s checkpoint.
        saved = sorted((tmp_path / "ckpt").glob("stage_*.npz"))
        assert len(saved) == kill_after + 1

        model, report = uninterrupted
        resumed_model, resumed_report = train_stress_model(
            data, pairs, config, checkpoint_dir=str(tmp_path / "ckpt"))
        state, resumed_state = model.state_dict(), resumed_model.state_dict()
        assert state.keys() == resumed_state.keys()
        for name in state:
            assert np.array_equal(state[name], resumed_state[name]), name
        assert resumed_report == report
