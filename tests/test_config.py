"""The centralized ``REPRO_*`` settings reader."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    BACKEND_ENV,
    ENV_VARS,
    FAULTS_ENV,
    HYPOTHESIS_PROFILE_ENV,
    NUM_WORKERS_ENV,
    POOL_BACKEND_ENV,
    POOL_REPLICAS_ENV,
    TRACE_ENV,
    Settings,
    env_value,
    settings,
)
from repro.errors import ConfigError, ReproError


class TestDefaults:
    def test_empty_environment_is_all_unset(self):
        got = Settings.from_env({})
        assert got == Settings()
        assert got.num_workers is None
        assert got.parallel_backend is None
        assert got.trace_path is None
        assert got.faults_spec is None
        assert got.pool_replicas is None
        assert got.pool_backend is None
        assert got.hypothesis_profile == "fast"

    def test_empty_string_counts_as_unset(self):
        got = Settings.from_env({
            BACKEND_ENV: "", TRACE_ENV: "", FAULTS_ENV: "",
            POOL_BACKEND_ENV: "", HYPOTHESIS_PROFILE_ENV: "",
            NUM_WORKERS_ENV: "", POOL_REPLICAS_ENV: "",
        })
        assert got == Settings()


class TestParsing:
    def test_full_environment(self):
        got = Settings.from_env({
            NUM_WORKERS_ENV: "4",
            BACKEND_ENV: "thread",
            TRACE_ENV: "/tmp/trace.jsonl",
            FAULTS_ENV: "serve.execute:rate=0.5",
            POOL_REPLICAS_ENV: "3",
            POOL_BACKEND_ENV: "process",
            HYPOTHESIS_PROFILE_ENV: "ci",
        })
        assert got.num_workers == 4
        assert got.parallel_backend == "thread"
        assert got.trace_path == "/tmp/trace.jsonl"
        assert got.faults_spec == "serve.execute:rate=0.5"
        assert got.pool_replicas == 3
        assert got.pool_backend == "process"
        assert got.hypothesis_profile == "ci"

    @pytest.mark.parametrize("var", [NUM_WORKERS_ENV, POOL_REPLICAS_ENV])
    @pytest.mark.parametrize("raw", ["lots", "1.5", "0", "-2"])
    def test_bad_counts_rejected(self, var, raw):
        with pytest.raises(ConfigError):
            Settings.from_env({var: raw})

    def test_config_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            Settings.from_env({NUM_WORKERS_ENV: "zero"})


class TestLiveRead:
    def test_settings_reads_fresh_each_call(self, monkeypatch):
        monkeypatch.delenv(NUM_WORKERS_ENV, raising=False)
        assert settings().num_workers is None
        monkeypatch.setenv(NUM_WORKERS_ENV, "2")
        assert settings().num_workers == 2
        monkeypatch.setenv(NUM_WORKERS_ENV, "5")
        assert settings().num_workers == 5


class TestRegistry:
    def test_every_field_has_a_documented_variable(self):
        # One Settings field per ENV_VARS entry -- the README table is
        # generated from the same registry, so drift here means the
        # docs are stale too.
        assert len(ENV_VARS) == len(dataclasses.fields(Settings))

    def test_registry_names_are_repro_prefixed(self):
        assert all(name.startswith("REPRO_") for name in ENV_VARS)

    def test_readme_documents_every_variable(self):
        import pathlib

        readme = (pathlib.Path(__file__).parent.parent
                  / "README.md").read_text(encoding="utf-8")
        missing = [name for name in ENV_VARS if f"`{name}`" not in readme]
        assert not missing, (
            f"README.md configuration table is missing {missing}")


class TestRawAccess:
    """The narrow per-variable reader used by import-time hooks."""

    def test_env_value_reads_one_variable(self):
        assert env_value(TRACE_ENV, {TRACE_ENV: "/tmp/t.jsonl"}) \
            == "/tmp/t.jsonl"
        assert env_value(TRACE_ENV, {}) is None
        assert env_value(TRACE_ENV, {TRACE_ENV: ""}) is None

    def test_env_value_ignores_malformed_unrelated_variables(self):
        # This is the point of the narrow reader: a bad count must not
        # leak into an unrelated variable's read.
        assert env_value(TRACE_ENV, {
            TRACE_ENV: "/tmp/t.jsonl", POOL_REPLICAS_ENV: "abc",
        }) == "/tmp/t.jsonl"

    def test_env_value_rejects_unregistered_names(self):
        with pytest.raises(ConfigError):
            env_value("REPRO_NO_SUCH_KNOB", {})

    def test_import_survives_malformed_unrelated_variable(self):
        # Regression: the tracing/faults import hooks used to parse the
        # *whole* environment, so REPRO_POOL_REPLICAS=abc broke
        # ``import repro`` before any pool was ever constructed.
        import os
        import subprocess
        import sys

        env = {**os.environ, "REPRO_POOL_REPLICAS": "abc",
               "REPRO_NUM_WORKERS": "nope"}
        proc = subprocess.run(
            [sys.executable, "-c",
             "import repro; print(repro.__version__)"],
            env=env, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        # ...while the variable's actual consumer still fails loudly.
        env = {**os.environ, "REPRO_POOL_REPLICAS": "abc"}
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.serving.pool import resolve_pool_replicas;"
             "resolve_pool_replicas()"],
            env=env, capture_output=True, text=True)
        assert proc.returncode != 0
        assert "ConfigError" in proc.stderr
        assert "REPRO_POOL_REPLICAS" in proc.stderr


class TestConsumers:
    """The three pre-pool consumers resolve through the shared reader."""

    def test_parallel_backend_flows_through(self, monkeypatch):
        from repro.evaluation.parallel import resolve_backend

        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert resolve_backend() == "thread"
        monkeypatch.setenv(BACKEND_ENV, "nonsense")
        with pytest.raises(ConfigError):
            resolve_backend()

    def test_num_workers_flows_through(self, monkeypatch):
        from repro.evaluation.parallel import resolve_num_workers

        monkeypatch.setenv(NUM_WORKERS_ENV, "7")
        assert resolve_num_workers() == 7

    def test_trace_path_flows_through(self, monkeypatch, tmp_path):
        from repro.observability import tracing

        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(path))
        previous = tracing.uninstall_exporter()
        try:
            assert tracing.configure_from_env()
            exporter = tracing.uninstall_exporter()
            assert isinstance(exporter, tracing.JsonlExporter)
            exporter.close()
        finally:
            if previous is not None:
                tracing.install_exporter(previous)

    def test_faults_spec_flows_through(self, monkeypatch):
        from repro.reliability import faults

        monkeypatch.setenv(FAULTS_ENV, "cache.get:rate=0.25;seed=9")
        previous = faults.active_plan()
        try:
            plan = faults.configure_from_env()
            assert plan is not None
            assert plan.seed == 9
            assert plan.sites == ("cache.get",)
        finally:
            if previous is not None:
                faults.install_plan(previous)
            else:
                faults.uninstall_plan()
