"""Micro-batcher shutdown edge cases.

The shutdown contract: ``close`` returns ``True`` iff the worker fully
exited (so every pending future is resolved), it is idempotent under
concurrent callers, ``drain=False`` fails queued-but-unstarted work
with :class:`ServiceClosedError` while letting the mid-flight batch
finish, and the worker survives a ``BaseException`` escaping the batch
callback instead of dying with futures still pending.
"""

import threading
import time

import pytest

from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.serving.batcher import MicroBatcher
from repro.serving.service import SerialDispatcher


class BlockingBatch:
    """A batch callback that parks the worker until released."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.batches: list[list] = []

    def __call__(self, items):
        self.batches.append(list(items))
        self.started.set()
        assert self.release.wait(timeout=10), "test forgot to release worker"
        return [item * 2 for item in items]


class TestCloseReturnValue:
    def test_clean_drain_returns_true(self):
        batcher = MicroBatcher(lambda items: [i * 2 for i in items],
                               max_wait_ms=1.0)
        future = batcher.submit(21)
        assert batcher.close(timeout=5) is True
        assert future.result(timeout=0) == 42

    def test_timed_out_close_returns_false_then_true(self):
        blocker = BlockingBatch()
        batcher = MicroBatcher(blocker, max_wait_ms=0.0)
        future = batcher.submit(1)
        assert blocker.started.wait(timeout=5)
        # Worker is parked inside on_batch: a short-timeout close must
        # say so instead of pretending the drain finished.
        assert batcher.close(drain=True, timeout=0.05) is False
        assert not future.done()
        blocker.release.set()
        assert batcher.close(timeout=5) is True
        assert future.result(timeout=0) == 2

    def test_close_idempotent(self):
        batcher = MicroBatcher(lambda items: list(items))
        assert batcher.close(timeout=5) is True
        assert batcher.close(timeout=5) is True


class TestDrainFalseRace:
    def test_mid_flight_batch_finishes_queued_work_fails(self):
        blocker = BlockingBatch()
        batcher = MicroBatcher(blocker, max_batch_size=1, max_wait_ms=0.0)
        in_flight = batcher.submit(1)
        assert blocker.started.wait(timeout=5)
        queued = [batcher.submit(2), batcher.submit(3)]

        closed = batcher.close(drain=False, timeout=0.05)
        assert closed is False  # worker still parked in the batch
        blocker.release.set()
        assert batcher.close(timeout=5) is True

        # The batch already handed to on_batch completed normally...
        assert in_flight.result(timeout=0) == 2
        # ...but the queued-not-started requests were failed fast.
        for future in queued:
            with pytest.raises(ServiceClosedError):
                future.result(timeout=0)
        # on_batch never saw the abandoned items.
        assert blocker.batches == [[1]]

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(lambda items: list(items))
        batcher.close(timeout=5)
        with pytest.raises(ServiceClosedError):
            batcher.submit(1)


class TestConcurrentClose:
    def test_concurrent_submitters_and_closers(self):
        batcher = MicroBatcher(
            lambda items: [time.sleep(0.0005) or i * 2 for i in items],
            max_batch_size=4, max_wait_ms=0.5, max_queue_depth=64)
        futures, futures_lock = [], threading.Lock()
        stop_submitting = threading.Event()

        def submitter(offset):
            for i in range(50):
                if stop_submitting.is_set():
                    return
                try:
                    future = batcher.submit(offset * 1000 + i)
                except (ServiceClosedError, ServiceOverloadedError):
                    continue
                with futures_lock:
                    futures.append((offset * 1000 + i, future))

        close_results = []

        def closer():
            time.sleep(0.01)
            close_results.append(batcher.close(drain=True, timeout=10))
            stop_submitting.set()

        threads = [threading.Thread(target=submitter, args=(n,))
                   for n in range(6)]
        threads += [threading.Thread(target=closer) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()

        # Both closes completed the drain; every accepted future
        # resolved to its result -- none hung, none was dropped.
        assert close_results == [True, True]
        assert futures  # the race actually admitted some work
        for item, future in futures:
            assert future.result(timeout=0) == item * 2


class TestWorkerSurvival:
    def test_base_exception_fails_batch_not_worker(self):
        calls = []

        def fragile(items):
            calls.append(list(items))
            if len(calls) == 1:
                raise KeyboardInterrupt("operator ctrl-C mid-batch")
            return [i * 2 for i in items]

        batcher = MicroBatcher(fragile, max_batch_size=2, max_wait_ms=0.0)
        first = batcher.submit(1)
        assert isinstance(first.exception(timeout=5), KeyboardInterrupt)
        # The worker survived: the next request is served normally.
        second = batcher.submit(5)
        assert second.result(timeout=5) == 10
        assert batcher.close(timeout=5) is True


class TestSerialDispatcherContext:
    def test_context_manager_protocol(self, trained, sample_video):
        from repro.cot.chain import StressChainPipeline

        model, __, __, __ = trained
        pipeline = StressChainPipeline(model)
        with SerialDispatcher(pipeline) as dispatcher:
            result = dispatcher.predict(sample_video)
        assert result.label in (0, 1)
        assert dispatcher.close() is True  # idempotent, parity with service
