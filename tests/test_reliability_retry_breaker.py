"""Retry policy and circuit breaker unit tests."""

import pytest

from repro.errors import (
    ConfigError,
    FaultInjectedError,
    ModelError,
    TransientError,
)
from repro.reliability.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.reliability.retry import RetryPolicy, is_retryable, retry_call


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# Retry
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)

    def test_delays_deterministic_per_scope(self):
        policy = RetryPolicy(max_attempts=5, seed=3)
        assert policy.delays_s("batch:1") == policy.delays_s("batch:1")
        assert policy.delays_s("batch:1") != policy.delays_s("batch:2")

    def test_delays_bounded(self):
        policy = RetryPolicy(max_attempts=8, base_delay_ms=1.0,
                             multiplier=4.0, max_delay_ms=10.0, jitter=0.1)
        delays = policy.delays_s()
        assert len(delays) == 7
        for d in delays:
            assert 0.0 < d <= 0.010 * 1.1
        # The schedule grows until the cap bites.
        assert delays[0] < delays[2]

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy(max_attempts=1).delays_s() == []


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise FaultInjectedError("boom")
            return "ok"

        slept = []
        result = retry_call(flaky, RetryPolicy(max_attempts=3),
                            sleep=slept.append)
        assert result == "ok"
        assert len(calls) == 3 and len(slept) == 2

    def test_fatal_error_not_retried(self):
        calls = []

        def fatal():
            calls.append(1)
            raise ModelError("deterministic")

        with pytest.raises(ModelError):
            retry_call(fatal, RetryPolicy(max_attempts=5), sleep=lambda s: None)
        assert len(calls) == 1

    def test_budget_exhaustion_reraises_last(self):
        calls = []

        def always():
            calls.append(1)
            raise FaultInjectedError("again")

        with pytest.raises(FaultInjectedError):
            retry_call(always, RetryPolicy(max_attempts=3),
                       sleep=lambda s: None)
        assert len(calls) == 3

    def test_on_retry_hook_sees_attempts(self):
        seen = []

        def flaky():
            if len(seen) < 1:
                raise FaultInjectedError("x")
            return 1

        retry_call(flaky, RetryPolicy(max_attempts=2), sleep=lambda s: None,
                   on_retry=lambda attempt, exc: seen.append((attempt, exc)))
        assert len(seen) == 1
        assert seen[0][0] == 1 and isinstance(seen[0][1], FaultInjectedError)

    def test_classification_rule(self):
        assert is_retryable(FaultInjectedError("x"))
        assert is_retryable(TransientError("x"))
        assert not is_retryable(ModelError("x"))
        assert not is_retryable(ValueError("x"))


# ----------------------------------------------------------------------
# Breaker
# ----------------------------------------------------------------------


def _tripped_breaker(clock, **overrides):
    kwargs = dict(window=8, failure_threshold=0.5, min_volume=4,
                  open_duration_s=1.0, half_open_probes=2)
    kwargs.update(overrides)
    breaker = CircuitBreaker(BreakerConfig(**kwargs), clock=clock,
                             name="test")
    for _ in range(4):
        breaker.record(False)
    assert breaker.state == OPEN
    return breaker


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            BreakerConfig(window=0)
        with pytest.raises(ConfigError):
            BreakerConfig(failure_threshold=0.0)
        with pytest.raises(ConfigError):
            BreakerConfig(min_volume=0)
        with pytest.raises(ConfigError):
            BreakerConfig(half_open_probes=0)


class TestBreaker:
    def test_stays_closed_under_min_volume(self):
        breaker = CircuitBreaker(
            BreakerConfig(min_volume=8, window=8), clock=FakeClock(),
            name="test")
        for _ in range(7):
            breaker.record(False)
        assert breaker.state == CLOSED and breaker.allow()

    def test_trips_on_failure_rate(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock)
        assert not breaker.allow()

    def test_successes_keep_it_closed(self):
        breaker = CircuitBreaker(
            BreakerConfig(window=8, failure_threshold=0.5, min_volume=4),
            clock=FakeClock(), name="test")
        for i in range(20):
            breaker.record(i % 3 == 0)  # 2/3 failures would trip...
        assert breaker.state == OPEN  # ...and does
        breaker = CircuitBreaker(
            BreakerConfig(window=8, failure_threshold=0.5, min_volume=4),
            clock=FakeClock(), name="test")
        for i in range(20):
            breaker.record(i % 4 != 0)  # 1/4 failures stays under 0.5
        assert breaker.state == CLOSED

    def test_half_open_after_cooldown(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock)
        clock.advance(0.5)
        assert breaker.state == OPEN
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_bounded_probes(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock, half_open_probes=2)
        clock.advance(1.1)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # probe budget spent

    def test_all_probes_succeed_closes(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock, half_open_probes=2)
        clock.advance(1.1)
        assert breaker.allow() and breaker.allow()
        breaker.record(True)
        assert breaker.state == HALF_OPEN
        breaker.record(True)
        assert breaker.state == CLOSED
        # The window was reset: old failures don't linger.
        breaker.record(False)
        assert breaker.state == CLOSED

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock)
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record(False)
        assert breaker.state == OPEN
        assert not breaker.allow()
        # And the cooldown restarts from the re-open instant.
        clock.advance(1.1)
        assert breaker.state == HALF_OPEN

    def test_straggler_outcome_while_open_is_ignored(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock)
        breaker.record(True)  # admitted pre-trip, lands post-trip
        assert breaker.state == OPEN
