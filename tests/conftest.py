"""Shared fixtures.

Expensive artifacts (datasets, a trained model) are session-scoped and
deliberately tiny; they exist so integration-grade tests can assert on
real trained behaviour without each test paying the training cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import settings as repro_settings

try:  # hypothesis is a dev dependency; profiles only matter if present
    from hypothesis import HealthCheck, settings as hypothesis_settings

    # Tier-1 stays fast: the default profile draws few examples and is
    # derandomized (fixed seed), so local runs are quick and stable.
    # CI's dedicated hypothesis job selects the "ci" profile via
    # REPRO_HYPOTHESIS_PROFILE for a deeper, equally reproducible sweep.
    hypothesis_settings.register_profile(
        "fast", max_examples=15, deadline=None, derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.register_profile(
        "ci", max_examples=150, deadline=None, derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.load_profile(repro_settings().hypothesis_profile)
except ImportError:  # pragma: no cover - hypothesis always in dev env
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the golden chain fixtures under tests/golden/ "
             "instead of comparing against them",
    )


@pytest.fixture()
def update_golden(request):
    return request.config.getoption("--update-golden")

from repro.datasets import (
    build_instruction_pairs,
    generate_disfa,
    generate_rsl,
    generate_uvsd,
    train_test_split,
)
from repro.model.foundation import FoundationModel
from repro.rng import make_rng
from repro.training.self_refine import SelfRefineConfig
from repro.training.trainer import train_stress_model
from repro.video.frame import Video, VideoSpec


@pytest.fixture(scope="session")
def micro_uvsd():
    return generate_uvsd(seed=7, num_samples=160, num_subjects=16)


@pytest.fixture(scope="session")
def micro_rsl():
    return generate_rsl(seed=7, num_samples=120, num_subjects=12)


@pytest.fixture(scope="session")
def micro_disfa():
    return generate_disfa(seed=7, num_samples=120, num_subjects=10)


@pytest.fixture(scope="session")
def instruction_pairs(micro_disfa):
    return build_instruction_pairs(micro_disfa)


@pytest.fixture(scope="session")
def micro_split(micro_uvsd):
    return train_test_split(micro_uvsd, test_fraction=0.25, seed=3)


@pytest.fixture(scope="session")
def micro_config():
    return SelfRefineConfig(
        describe_epochs=80,
        assess_epochs=100,
        refine_sample_limit=40,
        num_trials=3,
        num_rationale_candidates=3,
        seed=7,
    )


@pytest.fixture(scope="session")
def trained(micro_split, instruction_pairs, micro_config):
    """(model, report, train, test) trained on the micro UVSD split."""
    train, test = micro_split
    model, report = train_stress_model(train, instruction_pairs,
                                       micro_config, seed=7)
    return model, report, train, test


@pytest.fixture()
def fresh_model():
    return FoundationModel(make_rng(123, "test-model"))


@pytest.fixture()
def sample_video():
    rng = np.random.default_rng(5)
    curves = np.zeros((12, 12))
    curves[:, 2] = np.linspace(0.1, 0.9, 12)   # AU4 ramps up
    curves[:, 4] = 0.7                          # AU6 constant
    spec = VideoSpec(
        video_id="test-video-0",
        subject_id="test-subj-0",
        au_intensities=curves,
        identity=rng.standard_normal(8),
        seed=42,
    )
    return Video(spec)
