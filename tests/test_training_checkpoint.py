"""Checkpoint-resume training: round-trips, rejection, bitwise resume."""

import dataclasses
import shutil

import numpy as np
import pytest

from repro.datasets import build_instruction_pairs, generate_disfa, generate_uvsd
from repro.errors import CheckpointError
from repro.model.foundation import FoundationModel
from repro.reliability.checkpoint import (
    STAGE_NAMES,
    TrainingCheckpointer,
    training_fingerprint,
)
from repro.rng import make_rng
from repro.training.self_refine import SelfRefineConfig, TrainingReport
from repro.training.trainer import train_stress_model

#: Deliberately tiny run: every stage executes, nothing takes long.
TINY_CONFIG = SelfRefineConfig(
    describe_epochs=8,
    assess_epochs=10,
    refine_sample_limit=4,
    num_trials=2,
    num_rationale_candidates=2,
    max_reflection_rounds=2,
    seed=11,
)


@pytest.fixture(scope="module")
def tiny_data():
    return generate_uvsd(seed=11, num_samples=16, num_subjects=4)


@pytest.fixture(scope="module")
def tiny_pairs():
    return build_instruction_pairs(
        generate_disfa(seed=11, num_samples=20, num_subjects=4))


@pytest.fixture(scope="module")
def baseline(tiny_data, tiny_pairs, tmp_path_factory):
    """(model, report, checkpoint_dir) of one uninterrupted run that
    wrote a checkpoint at every stage boundary."""
    directory = tmp_path_factory.mktemp("ckpt-baseline")
    model, report = train_stress_model(tiny_data, tiny_pairs, TINY_CONFIG,
                                       checkpoint_dir=str(directory))
    return model, report, directory


def _assert_same_model(a: FoundationModel, b: FoundationModel) -> None:
    state_a, state_b = a.state_dict(), b.state_dict()
    assert state_a.keys() == state_b.keys()
    for name in state_a:
        assert np.array_equal(state_a[name], state_b[name]), name


class TestFingerprint:
    def test_stable(self, tiny_data, tiny_pairs):
        assert (training_fingerprint(TINY_CONFIG, tiny_data, tiny_pairs)
                == training_fingerprint(TINY_CONFIG, tiny_data, tiny_pairs))

    def test_config_changes_it(self, tiny_data, tiny_pairs):
        other = dataclasses.replace(TINY_CONFIG, assess_epochs=11)
        assert (training_fingerprint(TINY_CONFIG, tiny_data, tiny_pairs)
                != training_fingerprint(other, tiny_data, tiny_pairs))

    def test_data_changes_it(self, tiny_data, tiny_pairs):
        other = generate_uvsd(seed=12, num_samples=16, num_subjects=4)
        assert (training_fingerprint(TINY_CONFIG, tiny_data, tiny_pairs)
                != training_fingerprint(TINY_CONFIG, other, tiny_pairs))


class TestCheckpointer:
    def test_round_trip(self, baseline, tiny_data, tiny_pairs, tmp_path):
        model, report, __ = baseline
        fingerprint = training_fingerprint(TINY_CONFIG, tiny_data, tiny_pairs)
        saver = TrainingCheckpointer(tmp_path, fingerprint, seed=11)
        saver.save_stage(4, model, report, None)

        restored_model = FoundationModel(make_rng(99, "other-init"))
        restored_report = TrainingReport()
        saver.load_stage(4, restored_model, restored_report)
        _assert_same_model(model, restored_model)
        assert restored_report == report

    def test_descriptions_round_trip(self, baseline, tiny_data, tiny_pairs,
                                     tmp_path):
        from repro.model.generation import GREEDY

        model, report, __ = baseline
        descriptions = [model.describe(s.video, GREEDY)
                        for s in list(tiny_data)[:3]] + [None]
        fingerprint = training_fingerprint(TINY_CONFIG, tiny_data, tiny_pairs)
        saver = TrainingCheckpointer(tmp_path, fingerprint)
        saver.save_stage(1, model, report, descriptions)
        restored = saver.load_stage(1, FoundationModel(make_rng(0, "m")),
                                    TrainingReport())
        assert restored == descriptions

    def test_fingerprint_mismatch_rejected(self, baseline, tmp_path):
        model, report, __ = baseline
        TrainingCheckpointer(tmp_path, "aaaa").save_stage(
            0, model, report, None)
        other = TrainingCheckpointer(tmp_path, "bbbb")
        assert other.latest_stage() is None  # invalid files are skipped
        with pytest.raises(CheckpointError):
            other.load_stage(0, model, report)

    def test_missing_stage_rejected(self, tmp_path):
        saver = TrainingCheckpointer(tmp_path, "aaaa")
        with pytest.raises(CheckpointError):
            saver.load_stage(2, FoundationModel(make_rng(0, "m")),
                             TrainingReport())

    def test_latest_ignores_tmp_and_garbage(self, baseline, tmp_path):
        model, report, __ = baseline
        saver = TrainingCheckpointer(tmp_path, "aaaa")
        saver.save_stage(1, model, report, None)
        # A crash mid-write leaves a .tmp; a stray file matches the
        # stage pattern but holds garbage.  Neither may win.
        (tmp_path / "stage_03_assess_final.npz.tmp").write_bytes(b"partial")
        (tmp_path / "stage_04_rationale_dpo.npz").write_bytes(b"garbage")
        assert saver.latest_stage() == 1

    def test_empty_directory_has_no_stage(self, tmp_path):
        assert TrainingCheckpointer(tmp_path, "aaaa").latest_stage() is None


class TestBitwiseResume:
    def test_checkpointing_does_not_perturb_training(self, baseline,
                                                     tiny_data, tiny_pairs):
        model, report, __ = baseline
        plain_model, plain_report = train_stress_model(
            tiny_data, tiny_pairs, TINY_CONFIG)
        _assert_same_model(model, plain_model)
        assert report == plain_report

    def test_every_stage_checkpointed(self, baseline):
        __, __, directory = baseline
        names = sorted(p.name for p in directory.glob("stage_*.npz"))
        assert names == [
            f"stage_{i:02d}_{name}.npz" for i, name in enumerate(STAGE_NAMES)
        ]

    @pytest.mark.parametrize("stage", range(len(STAGE_NAMES)))
    def test_resume_after_any_stage_is_bitwise_identical(
            self, stage, baseline, tiny_data, tiny_pairs, tmp_path):
        """A kill right after stage ``stage``'s checkpoint landed:
        only checkpoints <= stage exist, and rerunning finishes the
        remaining stages to the exact uninterrupted result."""
        model, report, directory = baseline
        for index in range(stage + 1):
            name = f"stage_{index:02d}_{STAGE_NAMES[index]}.npz"
            shutil.copy(directory / name, tmp_path / name)
        resumed_model, resumed_report = train_stress_model(
            tiny_data, tiny_pairs, TINY_CONFIG, checkpoint_dir=str(tmp_path))
        _assert_same_model(model, resumed_model)
        assert resumed_report == report

    def test_resume_of_finished_run_is_a_noop(self, baseline, tiny_data,
                                              tiny_pairs):
        model, report, directory = baseline
        resumed_model, resumed_report = train_stress_model(
            tiny_data, tiny_pairs, TINY_CONFIG, checkpoint_dir=str(directory))
        _assert_same_model(model, resumed_model)
        assert resumed_report == report
