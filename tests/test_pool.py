"""The sharded replica pool: equivalence, routing, hot-swap, canary.

The load-bearing guarantees (DESIGN.md section 13):

- a one-replica pool returns results bitwise-identical to a plain
  :class:`StressService` (which is itself pinned bitwise to serial
  ``pipeline.predict`` by the golden and equivalence suites);
- routing is sticky on content -- repeats of a clip land on the same
  replica, so that replica's caches stay hot;
- a hot-swap deploy fails zero in-flight requests;
- a canary whose circuit breaker trips is rolled back and the deploy
  raises :class:`DeploymentError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import Counter
from pathlib import Path

import numpy as np
import pytest

from repro.cot.chain import ChainResult, StressChainPipeline
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    DeploymentError,
    PoolError,
    ServiceClosedError,
)
from repro.model.foundation import FoundationModel
from repro.model.registry import ModelRegistry
from repro.rng import make_rng
from repro.serving import ServiceConfig, StressService
from repro.serving.pool import (
    DEFAULT_VNODES,
    ReplicaPool,
    _HashRing,
    clone_pipeline,
    resolve_pool_backend,
    resolve_pool_replicas,
)
from repro.video.frame import Video, VideoSpec

GOLDEN_PATH = Path(__file__).parent / "golden" / "chain_golden.json"


def _golden_videos() -> list[Video]:
    """The four pinned clips of ``tests/golden/chain_golden.json``
    (same construction as ``test_golden_chain._golden_videos``)."""
    videos = []
    for index, (name, scale) in enumerate([
        ("calm", 0.15), ("ramp", 0.6), ("intense", 0.95), ("noisy", 0.5),
    ]):
        rng = np.random.default_rng(900 + index)
        curves = np.zeros((12, 12))
        curves[:, index % 12] = np.linspace(0.05, scale, 12)
        curves[:, (index + 3) % 12] = scale * 0.7
        if name == "noisy":
            curves = np.clip(curves + rng.random((12, 12)) * 0.3, 0, 1)
        videos.append(Video(VideoSpec(
            video_id=f"golden-{name}", subject_id=f"golden-subj-{index}",
            au_intensities=curves, identity=rng.standard_normal(8),
            noise_scale=0.02, seed=7_000 + index,
        )))
    return videos


def _pipeline(seed: int = 123, scope: str = "golden-model"):
    return StressChainPipeline(FoundationModel(make_rng(seed, scope)))


def _videos(count: int, offset: int = 0) -> list[Video]:
    videos = []
    for index in range(count):
        rng = np.random.default_rng(1_500 + offset + index)
        videos.append(Video(VideoSpec(
            video_id=f"pool-{offset + index}",
            subject_id=f"pool-subj-{offset + index}",
            au_intensities=np.clip(rng.random((12, 12)), 0, 1),
            identity=rng.standard_normal(8),
            seed=11_000 + offset + index,
        )))
    return videos


def _assert_same_result(got: ChainResult, want: ChainResult) -> None:
    assert got.label == want.label
    assert got.prob_stressed == want.prob_stressed
    assert tuple(got.rationale) == tuple(want.rationale)
    assert got.session.transcript() == want.session.transcript()


# ----------------------------------------------------------------------
# Equivalence
# ----------------------------------------------------------------------


class TestEquivalence:
    def test_single_replica_matches_golden_fixtures(self):
        """``ReplicaPool(num_replicas=1)`` reproduces the pinned golden
        chain outputs bitwise -- the same fixtures the serial and
        served paths are pinned to."""
        recorded = {case["case"]: case
                    for case in json.loads(GOLDEN_PATH.read_text())}
        with ReplicaPool(_pipeline(), num_replicas=1) as pool:
            for video in _golden_videos():
                result = pool.predict(video, timeout=30)
                want = recorded[f"chain/{video.video_id}"]
                assert result.label == want["label"]
                assert result.prob_stressed == want["prob_stressed"]
                assert list(result.rationale) == want["rationale_aus"]
                transcript = result.session.transcript()
                assert hashlib.sha1(transcript.encode()).hexdigest() == \
                    want["transcript_sha1"]

    def test_single_replica_matches_stress_service(self):
        videos = _videos(6)
        with StressService(_pipeline()) as service:
            reference = [service.predict(v, timeout=30) for v in videos]
        with ReplicaPool(_pipeline(), num_replicas=1) as pool:
            for video, want in zip(videos, reference):
                _assert_same_result(pool.predict(video, timeout=30), want)

    def test_multi_replica_thread_matches_serial(self):
        videos = _videos(8)
        reference = [_pipeline().predict(v) for v in videos]
        with ReplicaPool(_pipeline(), num_replicas=4,
                         backend="thread") as pool:
            for video, want in zip(videos, reference):
                _assert_same_result(pool.predict(video, timeout=30), want)
            assert sum(pool.stats().routed) == len(videos)

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
    def test_multi_replica_process_matches_serial(self):
        videos = _videos(6)
        reference = [_pipeline().predict(v) for v in videos]
        with ReplicaPool(_pipeline(), num_replicas=2,
                         backend="process") as pool:
            for video, want in zip(videos, reference):
                _assert_same_result(pool.predict(video, timeout=60), want)

    def test_clone_pipeline_is_independent_and_identical(self):
        pipeline = _pipeline()
        clone = clone_pipeline(pipeline)
        assert clone is not pipeline
        assert clone.model is not pipeline.model
        assert clone.model.fingerprint() == pipeline.model.fingerprint()
        video = _videos(1)[0]
        _assert_same_result(clone.predict(video), pipeline.predict(video))


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


class TestRouting:
    def test_repeats_land_on_the_same_replica(self):
        videos = _videos(10)
        with ReplicaPool(_pipeline(), num_replicas=4) as pool:
            first = [pool.route(v) for v in videos]
            again = [pool.route(v) for v in videos]
        assert first == again

    def test_ring_is_stable_under_scale_out(self):
        """Growing the pool only *moves* keys to the new replica --
        no key changes hands between surviving replicas."""
        small, large = _HashRing(3), _HashRing(4)
        keys = [f"content-{i}" for i in range(500)]
        moved = sum(1 for k in keys if small.route(k) != large.route(k))
        stolen = [k for k in keys
                  if small.route(k) != large.route(k) and large.route(k) != 3]
        assert stolen == []
        assert 0 < moved < len(keys)

    def test_ring_spreads_keys(self):
        ring = _HashRing(4, vnodes=DEFAULT_VNODES)
        counts = Counter(ring.route(f"key-{i}") for i in range(4_000))
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 4_000 // 4 // 3

    def test_routed_counters_track_submissions(self):
        videos = _videos(9)
        with ReplicaPool(_pipeline(), num_replicas=3) as pool:
            for video in videos:
                pool.predict(video, timeout=30)
            snapshot = pool.stats()
        assert sum(snapshot.routed) == len(videos)
        assert snapshot.requests == len(videos)
        assert snapshot.num_replicas == 3
        assert len(snapshot.replicas) == 3

    def test_duplicate_content_keeps_one_replica_cache_hot(self):
        video = _videos(1)[0]
        with ReplicaPool(_pipeline(), num_replicas=4) as pool:
            index = pool.route(video)
            for __ in range(5):
                pool.predict(video, timeout=30)
            snapshot = pool.stats()
        assert snapshot.routed[index] == 5
        assert sum(count for i, count in enumerate(snapshot.routed)
                   if i != index) == 0


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------


class TestConcurrency:
    def test_concurrent_clients_get_correct_results(self):
        videos = _videos(8)
        reference = {v.video_id: _pipeline().predict(v) for v in videos}
        failures: list[BaseException] = []

        def client(pool: ReplicaPool, worklist: list[Video]) -> None:
            try:
                for video in worklist:
                    result = pool.predict(video, timeout=60)
                    _assert_same_result(result, reference[video.video_id])
            except BaseException as exc:  # noqa: BLE001 - collected
                failures.append(exc)

        with ReplicaPool(_pipeline(), num_replicas=4) as pool:
            threads = [
                threading.Thread(target=client,
                                 args=(pool, videos[i::4] + videos[:2]))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert failures == []


# ----------------------------------------------------------------------
# Hot-swap deploys
# ----------------------------------------------------------------------


@pytest.fixture()
def registry(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("v1", _pipeline())
    registry.publish("v2", _pipeline(seed=77, scope="pool-v2"))
    return registry


class TestDeploy:
    def test_full_deploy_swaps_every_replica(self, registry):
        want = registry.load("v2").model.fingerprint()
        with ReplicaPool.from_registry(registry, "v1",
                                       num_replicas=2) as pool:
            deployment = pool.deploy("v2")
            assert deployment.state == "complete"
            assert pool.version == "v2"
            assert set(pool.fingerprints()) == {want}

    def test_swap_serves_new_model_results(self, registry):
        video = _videos(1)[0]
        v2_result = registry.load("v2").predict(video)
        with ReplicaPool.from_registry(registry, "v1",
                                       num_replicas=1) as pool:
            pool.predict(video, timeout=30)
            pool.deploy("v2")
            _assert_same_result(pool.predict(video, timeout=30), v2_result)

    def test_hot_swap_fails_zero_in_flight_requests(self, registry):
        """Deploy mid-load: every already-submitted and every
        subsequent request resolves; none fails."""
        videos = _videos(24)
        with ReplicaPool.from_registry(registry, "v1", num_replicas=2,
                                       config=ServiceConfig(
                                           max_wait_ms=5.0)) as pool:
            first = [pool.submit(video) for video in videos]
            deployment = pool.deploy("v2")
            second = [pool.submit(video) for video in videos]
            results = [f.result(timeout=60) for f in first + second]
        assert deployment.state == "complete"
        assert all(isinstance(r, ChainResult) for r in results)

    def test_canary_then_promote(self, registry):
        v1 = registry.load("v1").model.fingerprint()
        v2 = registry.load("v2").model.fingerprint()
        with ReplicaPool.from_registry(registry, "v1",
                                       num_replicas=4) as pool:
            deployment = pool.deploy("v2", canary_fraction=0.5)
            assert deployment.state == "canary"
            assert deployment.canaries == (0, 1)
            fingerprints = pool.fingerprints()
            assert fingerprints.count(v2) == 2
            assert fingerprints.count(v1) == 2
            deployment.promote()
            assert deployment.state == "complete"
            assert set(pool.fingerprints()) == {v2}
            assert pool.version == "v2"

    def test_canary_breaker_trip_rolls_back(self, registry):
        v1 = registry.load("v1").model.fingerprint()
        with ReplicaPool.from_registry(registry, "v1",
                                       num_replicas=4) as pool:
            deployment = pool.deploy("v2", canary_fraction=0.25)
            breaker = pool._replicas[0].breaker
            assert breaker is not None
            for __ in range(breaker.config.window):
                breaker.record(False)
            with pytest.raises(DeploymentError, match="rolled back"):
                deployment.promote()
            assert deployment.state == "rolled_back"
            assert set(pool.fingerprints()) == {v1}
            assert pool.version == "v1"

    def test_promote_on_complete_deployment_is_a_noop(self, registry):
        """A full deploy auto-completes; an unconditional promote()
        after it must not raise (nothing failed)."""
        with ReplicaPool.from_registry(registry, "v1",
                                       num_replicas=2) as pool:
            deployment = pool.deploy("v2")
            assert deployment.state == "complete"
            deployment.promote()
            assert deployment.state == "complete"
            assert pool.version == "v2"

    def test_canary_covering_whole_pool_auto_completes(self, registry):
        """Any canary fraction on a one-replica pool covers the pool:
        the deployment completes immediately and promote() is a
        harmless no-op."""
        with ReplicaPool.from_registry(registry, "v1",
                                       num_replicas=1) as pool:
            deployment = pool.deploy("v2", canary_fraction=0.5)
            assert deployment.state == "complete"
            deployment.promote()
            assert pool.version == "v2"

    def test_promote_after_rollback_raises(self, registry):
        with ReplicaPool.from_registry(registry, "v1",
                                       num_replicas=4) as pool:
            deployment = pool.deploy("v2", canary_fraction=0.5)
            deployment.rollback()
            with pytest.raises(DeploymentError, match="rolled_back"):
                deployment.promote()

    def test_explicit_rollback_restores_previous(self, registry):
        v1 = registry.load("v1").model.fingerprint()
        with ReplicaPool.from_registry(registry, "v1",
                                       num_replicas=2) as pool:
            deployment = pool.deploy("v2")
            deployment.rollback()
            assert set(pool.fingerprints()) == {v1}
            assert pool.version == "v1"

    def test_rollback_keeps_thread_replica_pipelines_distinct(self, registry):
        """A thread pool seeded from a bare pipeline rolls each replica
        back to its OWN clone.  A shared payload would install one
        mutable pipeline into every replica, and the concurrent workers
        would then race on its forward/feature cache."""
        with ReplicaPool(_pipeline(), num_replicas=3, backend="thread",
                         registry=registry) as pool:
            before = [id(r.service.pipeline) for r in pool._replicas]
            assert len(set(before)) == 3
            deployment = pool.deploy("v2")
            deployment.rollback()
            after = [id(r.service.pipeline) for r in pool._replicas]
            assert after == before
            # And the restored pool still computes correct results.
            video = _videos(1)[0]
            _assert_same_result(pool.predict(video, timeout=30),
                                _pipeline().predict(video))

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
    def test_process_pool_deploy_and_rollback(self, registry):
        v1 = registry.load("v1").model.fingerprint()
        v2 = registry.load("v2").model.fingerprint()
        video = _videos(1)[0]
        with ReplicaPool.from_registry(registry, "v1", num_replicas=2,
                                       backend="process") as pool:
            deployment = pool.deploy("v2")
            assert set(pool.fingerprints()) == {v2}
            assert isinstance(pool.predict(video, timeout=60), ChainResult)
            deployment.rollback()
            assert set(pool.fingerprints()) == {v1}

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
    def test_process_replica_counts_breaker_shed_batches(self):
        """Batches failed fast on an open breaker still show up in the
        replica's stats snapshot, matching the thread path."""
        from repro.reliability.breaker import BreakerConfig
        from repro.serving.pool import _ProcessReplica

        replica = _ProcessReplica(0, _pipeline(),
                                  ServiceConfig(breaker=BreakerConfig()))
        try:
            for __ in range(replica.breaker.config.window):
                replica.breaker.record(False)
            outcomes = replica._process_batch(_videos(3))
            assert all(isinstance(o, CircuitOpenError) for o in outcomes)
            snapshot = replica.stats()
            assert snapshot.batches == 1
            assert snapshot.mean_batch_occupancy == 3.0
        finally:
            replica.close()

    def test_deploy_needs_a_registry(self):
        with ReplicaPool(_pipeline(), num_replicas=1) as pool:
            with pytest.raises(DeploymentError, match="needs a ModelRegistry"):
                pool.deploy("v2")

    def test_bad_canary_fraction(self, registry):
        with ReplicaPool.from_registry(registry, "v1",
                                       num_replicas=1) as pool:
            with pytest.raises(ConfigError, match="canary_fraction"):
                pool.deploy("v2", canary_fraction=0.0)


# ----------------------------------------------------------------------
# Configuration and lifecycle
# ----------------------------------------------------------------------


class TestConfig:
    def test_replica_count_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_REPLICAS", "3")
        assert resolve_pool_replicas() == 3
        assert resolve_pool_replicas(2) == 2

    def test_backend_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_BACKEND", "process")
        assert resolve_pool_backend() in ("process", "thread")
        monkeypatch.delenv("REPRO_POOL_BACKEND")
        assert resolve_pool_backend() == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown pool backend"):
            resolve_pool_backend("gpu")

    def test_bad_replica_count_rejected(self):
        with pytest.raises(PoolError, match="num_replicas"):
            resolve_pool_replicas(0)

    def test_submit_after_close_raises(self):
        pool = ReplicaPool(_pipeline(), num_replicas=1)
        pool.close()
        with pytest.raises(ServiceClosedError):
            pool.submit(_videos(1)[0])

    def test_from_registry_empty_registry(self, tmp_path):
        with pytest.raises(PoolError, match="no versions"):
            ReplicaPool.from_registry(ModelRegistry(tmp_path / "empty"))


class TestServiceSwap:
    def test_swap_pipeline_clears_caches_and_serves_new_weights(self):
        video = _videos(1)[0]
        new_pipeline = _pipeline(seed=77, scope="pool-v2")
        want = new_pipeline.predict(video)
        with StressService(_pipeline()) as service:
            service.predict(video, timeout=30)
            assert len(service.caches.describe) > 0
            service.swap_pipeline(new_pipeline)
            assert len(service.caches.describe) == 0
            _assert_same_result(service.predict(video, timeout=30), want)

    def test_swap_rejects_non_pipeline(self):
        with StressService(_pipeline()) as service:
            with pytest.raises(TypeError, match="StressChainPipeline"):
                service.swap_pipeline(object())
