"""The versioned model registry: publish, integrity, natural order."""

from __future__ import annotations

import json

import pytest

from repro.cot.chain import StressChainPipeline
from repro.errors import ModelError, RegistryError, ReproError
from repro.model.foundation import FoundationModel
from repro.model.registry import (
    ARTIFACT_NAME,
    MANIFEST_NAME,
    ModelRegistry,
    _natural_key,
)
from repro.rng import make_rng


@pytest.fixture()
def pipeline():
    return StressChainPipeline(FoundationModel(make_rng(11, "registry")))


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestPublish:
    def test_roundtrip_preserves_weights_and_options(self, registry):
        pipeline = StressChainPipeline(
            FoundationModel(make_rng(3, "rt")), use_chain=False, seed=9)
        registry.publish("v1", pipeline)
        loaded = registry.load("v1")
        assert loaded.model.fingerprint() == pipeline.model.fingerprint()
        assert loaded.use_chain is False
        assert loaded.seed == 9

    def test_versions_are_immutable(self, registry, pipeline):
        registry.publish("v1", pipeline)
        with pytest.raises(RegistryError, match="immutable"):
            registry.publish("v1", pipeline)

    def test_no_staging_files_left_behind(self, registry, pipeline):
        registry.publish("v1", pipeline)
        names = {p.name for p in (registry.root / "v1").iterdir()}
        assert names == {ARTIFACT_NAME, MANIFEST_NAME}

    def test_manifest_records_digest_and_fingerprint(self, registry,
                                                     pipeline):
        registry.publish("v1", pipeline)
        manifest = registry.manifest("v1")
        assert manifest["version"] == "v1"
        assert len(manifest["sha256"]) == 64
        assert manifest["model_fingerprint"] == pipeline.model.fingerprint()

    @pytest.mark.parametrize("bad", ["", ".hidden", "has space", "a/b"])
    def test_bad_version_names_rejected(self, registry, pipeline, bad):
        with pytest.raises(RegistryError, match="bad version name"):
            registry.publish(bad, pipeline)


class TestIntegrity:
    def test_corrupt_artifact_refused(self, registry, pipeline):
        artifact = registry.publish("v1", pipeline)
        blob = bytearray(artifact.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        artifact.write_bytes(bytes(blob))
        with pytest.raises(RegistryError, match="integrity"):
            registry.load("v1")

    def test_missing_artifact_refused(self, registry, pipeline):
        artifact = registry.publish("v1", pipeline)
        artifact.unlink()
        with pytest.raises(RegistryError, match="missing artifact"):
            registry.verified_artifact("v1")

    def test_unknown_version(self, registry):
        with pytest.raises(RegistryError, match="unknown version"):
            registry.load("nope")

    def test_unreadable_manifest(self, registry, pipeline):
        registry.publish("v1", pipeline)
        (registry.root / "v1" / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(RegistryError, match="unreadable"):
            registry.manifest("v1")

    def test_unsupported_manifest_layout(self, registry, pipeline):
        registry.publish("v1", pipeline)
        (registry.root / "v1" / MANIFEST_NAME).write_text(
            json.dumps({"manifest_version": 999}))
        with pytest.raises(RegistryError, match="unsupported"):
            registry.manifest("v1")

    def test_registry_error_is_a_model_and_repro_error(self):
        assert issubclass(RegistryError, ModelError)
        assert issubclass(RegistryError, ReproError)


class TestEnumeration:
    def test_natural_version_order(self, registry, pipeline):
        for version in ["v10", "v2", "v1"]:
            registry.publish(version, pipeline)
        assert registry.versions() == ["v1", "v2", "v10"]
        assert registry.latest() == "v10"

    def test_natural_key_splits_digit_runs(self):
        assert sorted(["v10", "v9", "v1.2", "beta"], key=_natural_key) == [
            "beta", "v1.2", "v9", "v10"]

    def test_empty_registry(self, registry):
        assert registry.versions() == []
        assert registry.latest() is None
        assert not registry.has("v1")

    def test_has(self, registry, pipeline):
        registry.publish("v1", pipeline)
        assert registry.has("v1")
        assert not registry.has("v2")
