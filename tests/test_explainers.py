"""Tests for LIME, KernelSHAP, SOBOL, occlusion and the deletion metric.

The explainers are validated against a *known* black box: a linear
function of chosen segments, whose ground-truth attribution order is
unambiguous.
"""

import numpy as np
import pytest

from repro.errors import ExplainerError
from repro.explainers import (
    KernelShapExplainer,
    LimeExplainer,
    OcclusionExplainer,
    SobolExplainer,
)
from repro.video.segmentation import slic_segments


@pytest.fixture(scope="module")
def synthetic_problem():
    """A frame, its segmentation, and a black box that depends on
    exactly three segments with known relative importance."""
    rng = np.random.default_rng(0)
    frame = rng.random((48, 48)) * 0.2 + 0.4
    labels = slic_segments(frame, num_segments=16)
    num_segments = int(labels.max()) + 1
    important = [0, num_segments // 2, num_segments - 1]
    weights = {important[0]: 0.6, important[1]: 0.3, important[2]: 0.15}

    def predict(perturbed: np.ndarray) -> float:
        # Response: how intact each important segment's mean is.
        value = 0.5
        for segment, weight in weights.items():
            mask = labels == segment
            intact = 1.0 - np.abs(perturbed[mask] - frame[mask]).mean() / 0.5
            value += weight * (intact - 0.5)
        return float(np.clip(value, 0.0, 1.0))

    return frame, labels, predict, important


class TestAgainstKnownBlackBox:
    @pytest.mark.parametrize("explainer", [
        LimeExplainer(num_samples=400),
        KernelShapExplainer(num_samples=400),
        SobolExplainer(num_designs=8),
        OcclusionExplainer(),
    ], ids=["lime", "shap", "sobol", "occlusion"])
    def test_recovers_important_segments(self, explainer, synthetic_problem):
        frame, labels, predict, important = synthetic_problem
        attribution = explainer.attribute(frame, labels, predict, seed=1)
        top3 = set(attribution.top_k(3))
        assert len(top3 & set(important)) >= 2, (
            f"{explainer.name} top-3 {top3} misses ground truth {important}"
        )

    def test_lime_ranks_by_weight(self, synthetic_problem):
        frame, labels, predict, important = synthetic_problem
        attribution = LimeExplainer(num_samples=600).attribute(
            frame, labels, predict, seed=2
        )
        assert attribution.ranking()[0] == important[0]

    def test_shap_efficiency_property(self, synthetic_problem):
        """KernelSHAP attributions sum to f(full) - f(empty)."""
        frame, labels, predict, __ = synthetic_problem
        from repro.video.perturb import apply_mask

        num_segments = int(labels.max()) + 1
        attribution = KernelShapExplainer(num_samples=400).attribute(
            frame, labels, predict, seed=3
        )
        full = predict(apply_mask(frame, labels, np.ones(num_segments)))
        empty = predict(apply_mask(frame, labels, np.zeros(num_segments)))
        assert attribution.scores.sum() == pytest.approx(full - empty,
                                                         abs=1e-6)

    def test_sobol_scores_nonnegative(self, synthetic_problem):
        frame, labels, predict, __ = synthetic_problem
        attribution = SobolExplainer(num_designs=8).attribute(
            frame, labels, predict, seed=4
        )
        assert np.all(attribution.scores >= -1e-9)

    def test_evaluation_budgets_reported(self, synthetic_problem):
        frame, labels, predict, __ = synthetic_problem
        lime = LimeExplainer(num_samples=100).attribute(frame, labels,
                                                        predict, seed=0)
        assert lime.num_evaluations == 100
        sobol = SobolExplainer(num_designs=4).attribute(frame, labels,
                                                        predict, seed=0)
        num_segments = int(labels.max()) + 1
        assert sobol.num_evaluations == 4 * (num_segments + 2)

    def test_deterministic_per_seed(self, synthetic_problem):
        frame, labels, predict, __ = synthetic_problem
        a = LimeExplainer(num_samples=200).attribute(frame, labels, predict,
                                                     seed=7)
        b = LimeExplainer(num_samples=200).attribute(frame, labels, predict,
                                                     seed=7)
        assert np.array_equal(a.scores, b.scores)


class TestValidation:
    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError):
            LimeExplainer(num_samples=2)
        with pytest.raises(ValueError):
            KernelShapExplainer(num_samples=2)
        with pytest.raises(ValueError):
            SobolExplainer(num_designs=1)

    def test_single_segment_rejected(self):
        frame = np.zeros((16, 16))
        labels = np.zeros((16, 16), dtype=np.int64)
        with pytest.raises(ExplainerError):
            OcclusionExplainer().attribute(frame, labels, lambda f: 0.5)
