"""Tests for facial-region geometry."""

import numpy as np
import pytest

from repro.facs.action_units import AU_IDS
from repro.facs.regions import (
    FRAME_SIZE,
    FacialRegion,
    REGIONS,
    region_by_key,
    region_for_au,
)


class TestFacialRegion:
    def test_mask_shape_and_area(self):
        region = REGIONS["lips"]
        mask = region.mask()
        assert mask.shape == (FRAME_SIZE, FRAME_SIZE)
        assert mask.sum() == region.area

    def test_mask_rescales(self):
        region = REGIONS["lips"]
        small = region.mask(48)
        assert small.shape == (48, 48)
        assert small.any()

    def test_center_inside_region(self):
        for region in REGIONS.values():
            row, col = region.center
            assert region.contains(row, col)

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            FacialRegion("bad", 50, 40, 0, 10)
        with pytest.raises(ValueError):
            FacialRegion("bad", 0, 10, 90, 200)

    def test_regions_are_disjoint(self):
        total = np.zeros((FRAME_SIZE, FRAME_SIZE), dtype=int)
        for region in REGIONS.values():
            total += region.mask().astype(int)
        assert total.max() == 1, "facial regions must not overlap"


class TestLookups:
    def test_region_for_every_au(self):
        for au_id in AU_IDS:
            assert isinstance(region_for_au(au_id), FacialRegion)

    def test_region_by_key(self):
        assert region_by_key("cheek").key == "cheek"

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            region_by_key("forehead")
