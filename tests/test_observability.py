"""Observability: tracing spans, the metrics registry, profiling
hooks, and the zero-perturbation guarantee (tracing on == tracing off,
bitwise)."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.cot.chain import StressChainPipeline
from repro.model.foundation import FoundationModel
from repro.observability import profiling, tracing
from repro.observability.metrics import MetricsRegistry, global_metrics
from repro.observability.tracing import (
    JsonlExporter,
    ListExporter,
    install_exporter,
    span,
    uninstall_exporter,
)
from repro.rng import make_rng
from repro.training.self_refine import SelfRefineConfig
from repro.training.trainer import train_stress_model


@pytest.fixture(autouse=True)
def _isolated_tracing():
    """Detach any ambient exporter (e.g. the CI job's REPRO_TRACE
    JSONL sink) so every test starts from tracing-disabled, and
    restore it afterwards."""
    previous = uninstall_exporter()
    try:
        yield
    finally:
        uninstall_exporter()
        if previous is not None:
            install_exporter(previous)


@pytest.fixture()
def exporter():
    """A fresh ListExporter installed for the test, removed after."""
    exp = ListExporter()
    install_exporter(exp)
    try:
        yield exp
    finally:
        uninstall_exporter()


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing.enabled()
        sp = span("anything", key="value")
        assert sp is span("other")
        with sp as inner:
            inner.add("work", 3)
            inner.set("late", 1)  # must not raise, must not record

    def test_span_record_fields(self, exporter):
        with span("stage.one", mode="test") as sp:
            sp.add("gemm", 2)
            sp.add("gemm")
            sp.set("late", 5)
        (record,) = exporter.records
        assert record["name"] == "stage.one"
        assert record["duration_s"] >= 0.0
        assert record["attrs"] == {"mode": "test", "late": 5}
        assert record["counters"] == {"gemm": 3}
        assert "parent" not in record

    def test_nesting_sets_parent_and_depth(self, exporter):
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = exporter.records
        assert inner["parent"] == "outer"
        assert inner["depth"] == 1
        assert outer["depth"] == 0

    def test_exception_marks_span_and_propagates(self, exporter):
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        (record,) = exporter.records
        assert record["error"] == "ValueError"

    def test_thread_local_stacks_do_not_interleave(self, exporter):
        barrier = threading.Barrier(2)

        def work(name: str) -> None:
            with span(name):
                barrier.wait()
                with span(f"{name}.child"):
                    pass

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        parents = {r["name"]: r.get("parent") for r in exporter.records}
        assert parents["t0.child"] == "t0"
        assert parents["t1.child"] == "t1"

    def test_jsonl_exporter_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        install_exporter(JsonlExporter(str(path)))
        try:
            with span("a", n=1):
                with span("b"):
                    pass
        finally:
            uninstall_exporter().close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["b", "a"]

    def test_configure_from_env(self, tmp_path, monkeypatch):
        path = tmp_path / "env-trace.jsonl"
        monkeypatch.setenv(tracing.TRACE_ENV, str(path))
        assert tracing.configure_from_env()
        try:
            with span("env.span"):
                pass
        finally:
            uninstall_exporter().close()
        assert json.loads(path.read_text())["name"] == "env.span"


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("h").observe(value)
        snap = registry.snapshot()
        assert snap.counters["c"] == 5
        assert snap.gauges["g"] == 2.5
        hist = snap.histograms["h"]
        assert hist.count == 4
        assert hist.mean == pytest.approx(2.5)
        assert hist.p50 == 3.0  # ceil rule: even window resolves up
        assert hist.max == 4.0

    def test_histogram_window_is_bounded(self):
        registry = MetricsRegistry()
        hist = registry.histogram("bounded", window=10)
        for value in range(100):
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap.count == 100          # lifetime count survives
        assert snap.p50 >= 90.0           # window holds the last 10

    def test_snapshot_isolation(self):
        """A snapshot is a full copy: later mutation never shows."""
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        registry.counter("c").inc(100)
        registry.histogram("h").observe(99.0)
        registry.gauge("new").set(1.0)
        assert snap.counters["c"] == 1
        assert snap.histograms["h"].count == 1
        assert "new" not in snap.gauges

    def test_snapshot_under_concurrent_recorders(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def hammer() -> None:
            while not stop.is_set():
                registry.counter("hits").inc()
                registry.histogram("lat").observe(0.5)
                registry.gauge("depth").set(3)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(100):
                snap = registry.snapshot()
                assert snap.counters.get("hits", 0) >= 0
                hist = snap.histograms.get("lat")
                if hist is not None and hist.count:
                    assert hist.p50 == 0.5
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_global_registry_is_shared(self):
        assert global_metrics() is global_metrics()


def _chain_outputs(seed_tag: str, videos):
    model = FoundationModel(make_rng(11, seed_tag))
    pipeline = StressChainPipeline(model)
    return [pipeline.predict(video) for video in videos]


class TestZeroPerturbation:
    def test_tracing_does_not_change_chain_outputs(self, micro_split):
        """The bitwise guarantee: spans read only monotonic clocks, so
        enabling tracing must not move any seeded RNG stream."""
        __, test = micro_split
        videos = [sample.video for sample in test[:6]]
        baseline = _chain_outputs("zero-perturb", videos)
        install_exporter(ListExporter())
        try:
            traced = _chain_outputs("zero-perturb", videos)
        finally:
            uninstall_exporter()
        for a, b in zip(baseline, traced):
            assert a.label == b.label
            assert a.prob_stressed == b.prob_stressed
            assert a.description == b.description
            assert a.rationale.au_ids == b.rationale.au_ids
            assert a.session.turns == b.session.turns


class TestTrainingAndChainSpans:
    def test_full_train_and_predict_trace_covers_all_stages(
            self, micro_split, instruction_pairs, exporter):
        """The acceptance sweep: one traced train_stress_model run plus
        one traced predict contains spans for all four training stages
        and all three chain stages, with model-work counters."""
        train, test = micro_split
        config = SelfRefineConfig(
            describe_epochs=3, assess_epochs=4, refine_sample_limit=3,
            num_trials=2, num_rationale_candidates=2,
            dpo_desc_epochs=1, dpo_rationale_epochs=1, seed=5,
        )
        model, __ = train_stress_model(train, instruction_pairs[:20],
                                       config)
        pipeline = StressChainPipeline(model)
        pipeline.predict(test[0].video)

        names = [record["name"] for record in exporter.records]
        for stage in ("train.describe_tuning", "train.description_refinement",
                      "train.assess_tuning", "train.rationale_refinement",
                      "train.fit", "chain.describe", "chain.assess",
                      "chain.highlight"):
            assert stage in names, f"missing span {stage!r} in {set(names)}"
        # Stage spans nest under the root training span.
        by_name = {r["name"]: r for r in exporter.records}
        assert by_name["train.describe_tuning"]["parent"] == "train.fit"
        # Profiling hooks attributed model work to the chain spans.
        assess = by_name["chain.assess"]
        assert assess["counters"][profiling.GEMM] >= 1
        assert assess["counters"][profiling.EMBED] >= 1


class TestProfilingHooks:
    def test_counts_require_tracing(self):
        assert not profiling.enabled()
        profiling.count(profiling.GEMM)  # must be a silent no-op

    def test_counts_attach_to_current_span(self, exporter):
        with span("work"):
            profiling.count(profiling.GEMM, 2)
            profiling.count(profiling.GEMM)
        assert exporter.records[0]["counters"] == {profiling.GEMM: 3}

    def test_count_outside_any_span_is_dropped(self, exporter):
        profiling.count(profiling.GEMM)
        assert exporter.records == []
