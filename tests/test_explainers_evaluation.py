"""Tests for the deletion metric and timing harness."""

import numpy as np
import pytest

from repro.cot.chain import StressChainPipeline
from repro.errors import ExplainerError
from repro.explainers import (
    LimeExplainer,
    OcclusionExplainer,
    chain_predict_fn,
    deletion_metric,
    explainer_ranker,
    rationale_ranker,
    time_explainers,
)


@pytest.fixture(scope="module")
def pipeline_and_samples(trained):
    model, __, __, test = trained
    pipeline = StressChainPipeline(model)
    return pipeline, list(test)[:10]


class TestDeletionMetric:
    def test_empty_samples_raise(self, pipeline_and_samples):
        pipeline, __ = pipeline_and_samples
        with pytest.raises(ExplainerError):
            deletion_metric([], rationale_ranker(pipeline),
                            lambda s: (lambda f: 0.5))

    def test_result_structure(self, pipeline_and_samples):
        pipeline, samples = pipeline_and_samples
        result = deletion_metric(
            samples, rationale_ranker(pipeline),
            lambda s: chain_predict_fn(pipeline, s),
            ks=(1, 2), num_segments=32,
        )
        assert set(result.accuracy_after) == {1, 2}
        assert result.num_samples == len(samples)
        assert 0.0 <= result.base_accuracy <= 1.0
        for drop in result.drops.values():
            assert -1.0 <= drop <= 1.0

    def test_perturbing_more_segments_never_helps_much(
        self, pipeline_and_samples
    ):
        """Top-3 accuracy should not exceed top-1 accuracy by a wide
        margin (noise can fix an occasional wrong prediction, but the
        trend must be downward)."""
        pipeline, samples = pipeline_and_samples
        result = deletion_metric(
            samples, explainer_ranker(OcclusionExplainer()),
            lambda s: chain_predict_fn(pipeline, s),
            num_segments=32,
        )
        assert result.accuracy_after[3] <= result.accuracy_after[1] + 0.21

    def test_deterministic(self, pipeline_and_samples):
        pipeline, samples = pipeline_and_samples
        kwargs = dict(ks=(1,), num_segments=32, seed=5)
        a = deletion_metric(samples, rationale_ranker(pipeline),
                            lambda s: chain_predict_fn(pipeline, s), **kwargs)
        b = deletion_metric(samples, rationale_ranker(pipeline),
                            lambda s: chain_predict_fn(pipeline, s), **kwargs)
        assert a.accuracy_after == b.accuracy_after


class TestTiming:
    def test_ours_is_fastest(self, pipeline_and_samples):
        pipeline, samples = pipeline_and_samples
        timing = time_explainers(
            pipeline, [LimeExplainer(num_samples=100)], samples[:4],
            num_segments=32,
        )
        assert timing.seconds_per_sample["Ours"] < \
            timing.seconds_per_sample["LIME"]
        assert timing.evaluations_per_sample["Ours"] == 1.0
        assert timing.evaluations_per_sample["LIME"] == 100.0
        assert timing.speedup_over("Ours", "LIME") > 1.0
