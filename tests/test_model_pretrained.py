"""Tests for the off-the-shelf vendor proxies."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.pretrained import available_vendors, load_offtheshelf


@pytest.fixture(scope="module")
def gpt4o():
    return load_offtheshelf("gpt-4o")


class TestVendors:
    def test_three_vendors(self):
        assert set(available_vendors()) == {
            "gpt-4o", "claude-3.5", "gemini-1.5"
        }

    def test_unknown_vendor_raises(self):
        with pytest.raises(ModelError):
            load_offtheshelf("llama-9")

    def test_cached_instance(self, gpt4o):
        assert load_offtheshelf("gpt-4o") is gpt4o


class TestFrozenBehaviour:
    def test_frozen_flag(self, gpt4o):
        assert gpt4o.frozen

    def test_training_blocked(self, gpt4o):
        with pytest.raises(ModelError):
            gpt4o.backward_description(np.zeros(12))

    def test_predictions_deterministic(self, gpt4o, sample_video):
        a = gpt4o.assess(sample_video, None)
        b = gpt4o.assess(sample_video, None)
        assert a == b

    def test_query_noise_differs_per_video(self, gpt4o, micro_uvsd):
        """API-style noise is per-query but not constant."""
        samples = list(micro_uvsd)[:6]
        clean_logits, noisy_logits = [], []
        for sample in samples:
            noisy = gpt4o.assess_logit(sample.video, None)
            noise_free = super(type(gpt4o), gpt4o).assess_logit(
                sample.video, None
            )
            clean_logits.append(noise_free)
            noisy_logits.append(noisy)
        deltas = np.array(noisy_logits) - np.array(clean_logits)
        assert deltas.std() > 0.1

    def test_better_than_chance(self, gpt4o, micro_uvsd):
        """Generic pre-training must transfer above chance zero-shot."""
        samples = list(micro_uvsd)
        predictions = np.array([
            gpt4o.assess(s.video, None)[0] for s in samples
        ])
        labels = np.array([s.label for s in samples])
        majority = max((labels == 0).mean(), (labels == 1).mean())
        assert (predictions == labels).mean() > 0.55
