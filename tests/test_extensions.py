"""Tests for the extension modules: ANN indexes, persistence, RISE,
visualization."""

import numpy as np
import pytest

from repro.errors import ExplainerError, ModelError
from repro.explainers.rise import RiseExplainer
from repro.explainers.visualize import (
    ascii_heatmap,
    attribution_overlay,
    load_pgm,
    save_pgm,
    segment_score_map,
)
from repro.model.persistence import (
    load_model,
    load_pipeline,
    save_model,
    save_pipeline,
)
from repro.retrieval.index import (
    ExactIndex,
    IVFFlatIndex,
    LSHIndex,
    recall_at_k,
)
from repro.rng import make_rng


@pytest.fixture(scope="module")
def vector_pool():
    rng = make_rng(0, "index-test")
    # Clustered vectors so ANN structure is meaningful.
    centers = rng.standard_normal((8, 32)) * 3
    vectors = np.concatenate([
        center + rng.standard_normal((25, 32)) for center in centers
    ])
    queries = centers + rng.standard_normal((8, 32)) * 0.1
    return vectors, queries


class TestIndexes:
    def test_exact_index_finds_self(self, vector_pool):
        vectors, __ = vector_pool
        index = ExactIndex(vectors)
        assert index.search(vectors[17], k=1)[0] == 17

    def test_lsh_recall(self, vector_pool):
        vectors, queries = vector_pool
        exact = ExactIndex(vectors)
        lsh = LSHIndex(vectors, num_tables=10, num_bits=8, seed=1)
        assert recall_at_k(lsh, exact, queries, k=5) >= 0.7

    def test_ivf_recall(self, vector_pool):
        vectors, queries = vector_pool
        exact = ExactIndex(vectors)
        ivf = IVFFlatIndex(vectors, num_cells=8, nprobe=2, seed=1)
        assert recall_at_k(ivf, exact, queries, k=5) >= 0.7

    def test_ivf_probes_fewer_than_all(self, vector_pool):
        vectors, __ = vector_pool
        ivf = IVFFlatIndex(vectors, num_cells=8, nprobe=1, seed=1)
        sizes = [len(lst) for lst in ivf._lists]
        assert max(sizes) < len(vectors)

    def test_empty_pool_rejected(self):
        from repro.retrieval.index import IndexError_

        with pytest.raises(IndexError_):
            ExactIndex(np.zeros((0, 4)))

    def test_bad_params_rejected(self, vector_pool):
        from repro.retrieval.index import IndexError_

        vectors, __ = vector_pool
        with pytest.raises(IndexError_):
            LSHIndex(vectors, num_tables=0)
        with pytest.raises(IndexError_):
            IVFFlatIndex(vectors, num_cells=0)

    def test_indexed_retriever_matches_exact_mostly(self, trained):
        from repro.retrieval import DescriptionRetriever
        from repro.retrieval.retriever import IndexedDescriptionRetriever

        model, __, train, test = trained
        pool = list(train)[:60]
        exact = DescriptionRetriever(model, pool, seed=0)
        indexed = IndexedDescriptionRetriever(model, pool, seed=0,
                                              index_kind="ivf")
        agree = 0
        queries = list(test)[:10]
        for sample in queries:
            description = model.describe(sample.video)
            a = exact.retrieve(sample.video, description)
            b = indexed.retrieve(sample.video, description)
            agree += int(a[0].label == b[0].label)
        assert agree >= 6

    def test_unknown_index_kind(self, trained):
        from repro.retrieval.retriever import IndexedDescriptionRetriever

        model, __, train, __ = trained
        with pytest.raises(ModelError):
            IndexedDescriptionRetriever(model, list(train)[:10],
                                        index_kind="btree")


class TestPersistence:
    def test_model_roundtrip(self, trained, tmp_path, sample_video):
        model, __, __, __ = trained
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.assess_logit(sample_video, None) == pytest.approx(
            model.assess_logit(sample_video, None)
        )
        assert np.allclose(loaded.au_logits(sample_video),
                           model.au_logits(sample_video))

    def test_pipeline_roundtrip(self, trained, tmp_path, sample_video):
        from repro.cot.chain import StressChainPipeline

        model, __, __, __ = trained
        pipeline = StressChainPipeline(model, use_chain=True, seed=9)
        path = tmp_path / "pipeline.npz"
        save_pipeline(pipeline, path)
        loaded = load_pipeline(path)
        assert loaded.use_chain and loaded.seed == 9
        assert loaded.predict(sample_video).label == \
            pipeline.predict(sample_video).label

    def test_load_rejects_random_npz(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ModelError):
            load_model(path)

    def test_load_pipeline_rejects_bare_model(self, trained, tmp_path):
        model, __, __, __ = trained
        path = tmp_path / "bare.npz"
        save_model(model, path)
        with pytest.raises(ModelError):
            load_pipeline(path)


class TestRise:
    def test_finds_important_segment(self):
        rng = make_rng(3, "rise-test")
        frame = rng.random((48, 48)) * 0.2 + 0.4
        from repro.video.segmentation import slic_segments

        labels = slic_segments(frame, num_segments=9)
        target = int(labels.max())

        def predict(perturbed):
            mask = labels == target
            intact = 1.0 - np.abs(perturbed[mask] - frame[mask]).mean() / 0.5
            return float(np.clip(0.5 + 0.5 * (intact - 0.5), 0, 1))

        attribution = RiseExplainer(num_samples=400).attribute(
            frame, labels, predict, seed=0
        )
        assert attribution.ranking()[0] == target

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RiseExplainer(num_samples=2)
        with pytest.raises(ValueError):
            RiseExplainer(keep_prob=1.0)


class TestVisualize:
    def test_segment_score_map(self):
        labels = np.array([[0, 1], [1, 0]])
        out = segment_score_map(labels, np.array([0.2, 0.8]))
        assert out[0, 0] == 0.2 and out[0, 1] == 0.8

    def test_score_shape_checked(self):
        with pytest.raises(ExplainerError):
            segment_score_map(np.zeros((2, 2), dtype=int), np.zeros(5))

    def test_ascii_heatmap_renders(self):
        values = np.linspace(0, 1, 96 * 96).reshape(96, 96)
        art = ascii_heatmap(values, width=32)
        lines = art.splitlines()
        assert all(len(line) == 32 for line in lines)
        assert art[0] == _first_char(art)

    def test_ascii_constant_input(self):
        art = ascii_heatmap(np.full((10, 10), 0.5), width=8)
        assert set(art.replace("\n", "")) == {" "}

    def test_overlay_bounds(self):
        frame = np.random.default_rng(0).random((8, 8))
        labels = np.zeros((8, 8), dtype=int)
        labels[4:, :] = 1
        overlay = attribution_overlay(frame, labels, np.array([0.0, 1.0]))
        assert overlay.min() >= 0.0 and overlay.max() <= 1.0

    def test_pgm_roundtrip(self, tmp_path):
        image = np.random.default_rng(1).random((12, 20))
        path = tmp_path / "out.pgm"
        save_pgm(image, path)
        loaded = load_pgm(path)
        assert loaded.shape == image.shape
        assert np.allclose(loaded, image, atol=1 / 255)

    def test_pgm_rejects_bad_file(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6\n1 1\n255\n\x00")
        with pytest.raises(ExplainerError):
            load_pgm(path)


def _first_char(art: str) -> str:
    return art[0]
