"""Tests for the experiment CLI."""

import json
from types import SimpleNamespace

import pytest

import repro.experiments.runner as runner
from repro.experiments.runner import main


class TestCli:
    def test_unknown_experiment_raises(self, capsys):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["tableX", "--scale", "quick"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--scale", "gigantic"])

    def test_help_lists_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "table1" in out and "fig8" in out


@pytest.fixture()
def fake_experiment(monkeypatch):
    """Replace the (expensive) experiment body with a counted stub."""
    calls = []

    def stub(experiment_id, options):
        calls.append(experiment_id)
        return SimpleNamespace(title=f"Fake {experiment_id}",
                               text=f"fake output of {experiment_id}")

    monkeypatch.setattr(runner, "run_experiment", stub)
    return calls


class TestResume:
    def test_resume_requires_results_dir(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--resume"])

    def test_results_persisted(self, fake_experiment, tmp_path, capsys):
        assert main(["fig6", "--results-dir", str(tmp_path)]) == 0
        path = tmp_path / "fig6_quick_seed0.json"
        document = json.loads(path.read_text())
        assert document["version"] == runner.RESULT_VERSION
        assert document["experiment_id"] == "fig6"
        assert document["text"] == "fake output of fig6"
        assert fake_experiment == ["fig6"]

    def test_resume_replays_completed_and_runs_missing(
            self, fake_experiment, tmp_path, capsys):
        main(["fig6", "--results-dir", str(tmp_path)])
        capsys.readouterr()
        # fig6 is replayed from disk; fig7 actually runs.
        main(["fig6", "fig7", "--results-dir", str(tmp_path), "--resume"])
        out = capsys.readouterr().out
        assert "fake output of fig6" in out and "resumed from" in out
        assert "fake output of fig7" in out
        assert fake_experiment == ["fig6", "fig7"]

    def test_resume_distrusts_corrupt_file(self, fake_experiment, tmp_path):
        path = tmp_path / "fig6_quick_seed0.json"
        path.write_text("{ truncated by a cra")
        main(["fig6", "--results-dir", str(tmp_path), "--resume"])
        assert fake_experiment == ["fig6"]  # the stub ran despite the file
        # And the corrupt file was replaced by a valid one.
        assert json.loads(path.read_text())["version"] == runner.RESULT_VERSION

    def test_resume_is_scale_and_seed_specific(self, fake_experiment,
                                               tmp_path):
        main(["fig6", "--results-dir", str(tmp_path)])
        main(["fig6", "--results-dir", str(tmp_path), "--resume",
              "--seed", "1"])
        assert fake_experiment == ["fig6", "fig6"]  # different seed reran
