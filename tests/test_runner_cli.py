"""Tests for the experiment CLI."""

import pytest

from repro.experiments.runner import main


class TestCli:
    def test_unknown_experiment_raises(self, capsys):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["tableX", "--scale", "quick"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--scale", "gigantic"])

    def test_help_lists_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "table1" in out and "fig8" in out
