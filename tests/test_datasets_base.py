"""Tests for dataset abstractions and subject-aware splits."""

import numpy as np
import pytest

from repro.datasets.base import (
    Sample,
    StressDataset,
    kfold_splits,
    train_test_split,
)
from repro.errors import DatasetError
from repro.video.frame import Video, VideoSpec


def _sample(video_id="v0", subject_id="s0", label=0):
    spec = VideoSpec(
        video_id=video_id, subject_id=subject_id,
        au_intensities=np.zeros((4, 12)),
        identity=np.zeros(8), seed=0,
    )
    return Sample(video=Video(spec), label=label, true_aus=np.zeros(12))


class TestSample:
    def test_bad_label_raises(self):
        with pytest.raises(DatasetError):
            _sample(label=3)

    def test_true_description(self):
        sample = _sample()
        assert sample.true_description().au_ids == ()


class TestStressDataset:
    def test_duplicate_ids_raise(self):
        with pytest.raises(DatasetError):
            StressDataset("d", (_sample("a"), _sample("a")))

    def test_class_counts(self, micro_uvsd):
        unstressed, stressed = micro_uvsd.class_counts()
        assert unstressed + stressed == len(micro_uvsd)
        assert stressed > 0 and unstressed > 0

    def test_subjects_order_stable(self, micro_uvsd):
        assert micro_uvsd.subjects() == micro_uvsd.subjects()

    def test_subset_preserves_order(self, micro_uvsd):
        subset = micro_uvsd.subset([3, 1, 5])
        assert [s.sample_id for s in subset] == [
            micro_uvsd[3].sample_id, micro_uvsd[1].sample_id,
            micro_uvsd[5].sample_id,
        ]


class TestKFold:
    def test_folds_partition_samples(self, micro_uvsd):
        splits = kfold_splits(micro_uvsd, num_folds=4, seed=0)
        all_test = np.concatenate([test for __, test in splits])
        assert sorted(all_test.tolist()) == list(range(len(micro_uvsd)))

    def test_subject_aware(self, micro_uvsd):
        for train_idx, test_idx in kfold_splits(micro_uvsd, 4, seed=0):
            train_subjects = {micro_uvsd[i].subject_id for i in train_idx}
            test_subjects = {micro_uvsd[i].subject_id for i in test_idx}
            assert not train_subjects & test_subjects

    def test_deterministic(self, micro_uvsd):
        a = kfold_splits(micro_uvsd, 4, seed=1)
        b = kfold_splits(micro_uvsd, 4, seed=1)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb) and np.array_equal(sa, sb)

    def test_too_few_subjects_raises(self):
        dataset = StressDataset("d", (_sample("a", "s0"), _sample("b", "s1")))
        with pytest.raises(DatasetError):
            kfold_splits(dataset, num_folds=5)

    def test_bad_fold_count_raises(self, micro_uvsd):
        with pytest.raises(DatasetError):
            kfold_splits(micro_uvsd, num_folds=1)


class TestTrainTestSplit:
    def test_subject_aware(self, micro_uvsd):
        train, test = train_test_split(micro_uvsd, 0.25, seed=0)
        assert not set(train.subjects()) & set(test.subjects())

    def test_sizes_reasonable(self, micro_uvsd):
        train, test = train_test_split(micro_uvsd, 0.25, seed=0)
        assert len(train) + len(test) == len(micro_uvsd)
        assert 0.1 < len(test) / len(micro_uvsd) < 0.45

    def test_bad_fraction_raises(self, micro_uvsd):
        with pytest.raises(DatasetError):
            train_test_split(micro_uvsd, 0.0)
