"""End-to-end integration tests across the whole stack."""

import numpy as np

from repro import (
    StressChainPipeline,
    evaluate_predictions,
    load_offtheshelf,
)
from repro.explainers import (
    LimeExplainer,
    chain_predict_fn,
    deletion_metric,
    explainer_ranker,
    rationale_ranker,
)


class TestDetectionPipeline:
    def test_chain_beats_direct_query(self, trained):
        """The reasoning chain must outperform the direct query on the
        held-out split (the paper's central claim)."""
        model, __, __, test = trained
        chain = StressChainPipeline(model, use_chain=True)
        direct = StressChainPipeline(model, use_chain=False)
        labels = test.labels
        chain_preds = np.array([chain.predict(s.video).label for s in test])
        direct_preds = np.array([direct.predict(s.video).label for s in test])
        chain_acc = (chain_preds == labels).mean()
        direct_acc = (direct_preds == labels).mean()
        assert chain_acc >= direct_acc - 0.02, (
            f"chain {chain_acc:.3f} vs direct {direct_acc:.3f}"
        )

    def test_trained_model_beats_offtheshelf(self, trained):
        """Task training must beat the zero-shot generalist."""
        model, __, __, test = trained
        pipeline = StressChainPipeline(model)
        gpt = load_offtheshelf("gpt-4o")
        labels = test.labels
        ours = np.array([pipeline.predict(s.video).label for s in test])
        theirs = np.array([gpt.assess(s.video, None)[0] for s in test])
        ours_metrics = evaluate_predictions(labels, ours)
        theirs_metrics = evaluate_predictions(labels, theirs)
        assert ours_metrics.accuracy > theirs_metrics.accuracy

    def test_session_transcript_is_complete(self, trained):
        model, __, __, test = trained
        pipeline = StressChainPipeline(model)
        result = pipeline.predict(test[0].video)
        transcript = result.session.transcript()
        assert "describe the subject's facial expressions" in transcript
        assert "is the subject under stress" in transcript
        assert "most influenced your stress assessment" in transcript


class TestInterpretabilityPipeline:
    def test_rationale_is_comparable_to_lime(self, trained):
        """On the micro split the rationale's top-1 deletion drop must
        be within reach of LIME's (the full-scale comparison is
        benchmarks/test_table2_faithfulness.py)."""
        model, __, __, test = trained
        pipeline = StressChainPipeline(model)
        samples = list(test)[:16]
        factory = lambda s: chain_predict_fn(pipeline, s)  # noqa: E731
        ours = deletion_metric(samples, rationale_ranker(pipeline), factory)
        lime = deletion_metric(
            samples,
            explainer_ranker(LimeExplainer(num_samples=150)),
            factory,
        )
        assert ours.drops[1] >= lime.drops[1] - 0.35

    def test_rationale_segments_are_valid(self, trained):
        model, __, __, test = trained
        pipeline = StressChainPipeline(model)
        for sample in list(test)[:5]:
            result = pipeline.predict(sample.video)
            labels = sample.video.segmentation(64)
            ranking = result.rationale.model_segment_ranking(model, labels)
            num_labels = int(labels.max()) + 1
            assert all(0 <= seg < num_labels for seg in ranking)
