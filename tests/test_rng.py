"""Tests for deterministic RNG management."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rng import derive_seed, make_rng, spawn


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_scope_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_63_bit_range(self):
        seed = derive_seed(123456, "scope")
        assert 0 <= seed < 2**63

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=40))
    def test_always_in_range(self, root, scope):
        assert 0 <= derive_seed(root, scope) < 2**63


class TestMakeRng:
    def test_reproducible_stream(self):
        a = make_rng(9, "x").random(5)
        b = make_rng(9, "x").random(5)
        assert np.array_equal(a, b)

    def test_scoped_streams_differ(self):
        a = make_rng(9, "x").random(5)
        b = make_rng(9, "y").random(5)
        assert not np.array_equal(a, b)


class TestSpawn:
    def test_children_are_independent(self):
        parent = make_rng(0, "parent")
        children = spawn(parent, 3)
        draws = [child.random(4) for child in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_count_zero(self):
        assert spawn(make_rng(0, "p"), 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0, "p"), -1)
