"""Tests for dialogue sessions and instruction objects."""

import pytest

from repro.errors import ModelError
from repro.model.instructions import (
    ALL_INSTRUCTIONS,
    ASSESS_INSTRUCTION,
    DESCRIBE_INSTRUCTION,
    HIGHLIGHT_INSTRUCTION,
    VERIFY_INSTRUCTION,
)
from repro.model.session import DialogueSession


class TestInstructions:
    def test_chain_instructions_exist(self):
        for key in ("describe", "assess", "highlight", "verify",
                    "reflect_description", "reflect_rationale",
                    "direct_assess"):
            assert key in ALL_INSTRUCTIONS

    def test_prompts_are_nonempty(self):
        for instruction in ALL_INSTRUCTIONS.values():
            assert instruction.prompt.strip()

    def test_str_is_prompt(self):
        assert str(ASSESS_INSTRUCTION) == ASSESS_INSTRUCTION.prompt

    def test_verify_prompt_is_template(self):
        rendered = VERIFY_INSTRUCTION.prompt.format(
            num_candidates=4, description="desc"
        )
        assert "4" in rendered and "desc" in rendered


class TestDialogueSession:
    def test_starts_fresh(self):
        session = DialogueSession()
        assert session.is_fresh
        session.require_fresh("anything")  # no raise

    def test_record_appends(self):
        session = DialogueSession()
        session.record(DESCRIBE_INSTRUCTION, "hello")
        session.record(HIGHLIGHT_INSTRUCTION, "world")
        assert len(session) == 2
        assert not session.is_fresh

    def test_require_fresh_raises_with_history(self):
        session = DialogueSession()
        session.record(DESCRIBE_INSTRUCTION, "x")
        with pytest.raises(ModelError):
            session.require_fresh("self-verification")

    def test_transcript_interleaves(self):
        session = DialogueSession()
        session.record(DESCRIBE_INSTRUCTION, "answer-1")
        transcript = session.transcript()
        assert "[user]" in transcript and "[model] answer-1" in transcript
