"""Tests for facial-action descriptions (render/parse round-trip)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GenerationError
from repro.facs.action_units import AU_IDS, NUM_AUS
from repro.facs.descriptions import HEADER, NEUTRAL_LINE, FacialDescription

au_subsets = st.frozensets(st.sampled_from(AU_IDS), max_size=NUM_AUS)


class TestConstruction:
    def test_canonical_ordering(self):
        assert FacialDescription((26, 1, 6)).au_ids == (1, 6, 26)

    def test_duplicates_collapse(self):
        assert FacialDescription((4, 4, 4)).au_ids == (4,)

    def test_from_vector(self):
        vector = np.zeros(NUM_AUS)
        vector[0] = 1.0
        vector[-1] = 1.0
        assert FacialDescription.from_vector(vector).au_ids == (1, 26)

    def test_from_vector_bad_shape(self):
        with pytest.raises(ValueError):
            FacialDescription.from_vector(np.zeros(5))

    def test_to_vector_roundtrip(self):
        description = FacialDescription((2, 9, 25))
        assert FacialDescription.from_vector(description.to_vector()) == description


class TestRenderParse:
    def test_render_header(self):
        assert FacialDescription((1,)).render().startswith(HEADER)

    def test_neutral_render(self):
        assert NEUTRAL_LINE in FacialDescription(()).render()

    def test_neutral_roundtrip(self):
        empty = FacialDescription(())
        assert FacialDescription.parse(empty.render()) == empty

    def test_paper_example(self):
        """The Section IV-A example: AU1 + AU5 + AU6."""
        text = FacialDescription((1, 5, 6)).render()
        assert "-eyebrow: inner portions of the eyebrows raising" in text
        assert "-lid: upper lid raising" in text
        assert "-cheek: raised" in text

    @given(au_subsets)
    def test_roundtrip_property(self, au_ids):
        description = FacialDescription(tuple(au_ids))
        assert FacialDescription.parse(description.render()) == description

    def test_parse_rejects_missing_header(self):
        with pytest.raises(GenerationError):
            FacialDescription.parse("-cheek: raised")

    def test_parse_rejects_unknown_phrase(self):
        with pytest.raises(GenerationError):
            FacialDescription.parse(f"{HEADER}\n-cheek: doing a backflip")

    def test_parse_rejects_garbage_line(self):
        with pytest.raises(GenerationError):
            FacialDescription.parse(f"{HEADER}\nnot a description line")


class TestBehaviour:
    def test_contains_and_len(self):
        description = FacialDescription((4, 12))
        assert 4 in description
        assert 5 not in description
        assert len(description) == 2

    def test_regions_deduplicated(self):
        # AU12, AU15 both live on the lips.
        assert FacialDescription((12, 15)).regions() == ("lips",)

    def test_hamming_distance(self):
        a = FacialDescription((1, 2))
        b = FacialDescription((2, 4))
        assert a.hamming_distance(b) == 2
        assert a.hamming_distance(a) == 0

    @given(au_subsets, au_subsets)
    def test_hamming_symmetry(self, xs, ys):
        a, b = FacialDescription(tuple(xs)), FacialDescription(tuple(ys))
        assert a.hamming_distance(b) == b.hamming_distance(a)
