"""Tests for Eq. 2-5 losses and the DPO trainer."""

import numpy as np
import pytest

from repro.facs.descriptions import FacialDescription
from repro.model.foundation import STRESSED, FoundationModel
from repro.rng import make_rng
from repro.training.dpo import (
    DescriptionPreference,
    DPOTrainer,
    RationalePreference,
)
from repro.training.losses import assess_nll, description_nll, dpo_loss


class TestDPOLoss:
    def test_zero_margin_loss(self):
        loss, gw, gl = dpo_loss(0.0, 0.0, 0.0, 0.0, beta=0.1)
        assert loss == pytest.approx(np.log(2))
        assert gw == pytest.approx(-0.05)
        assert gl == pytest.approx(0.05)

    def test_preferring_winner_lowers_loss(self):
        worse, __, __ = dpo_loss(-1.0, 0.0, 0.0, 0.0, beta=0.5)
        better, __, __ = dpo_loss(1.0, 0.0, 0.0, 0.0, beta=0.5)
        assert better < worse

    def test_reference_anchors(self):
        """Matching the reference exactly gives the zero-margin loss."""
        loss, __, __ = dpo_loss(-3.0, -5.0, -3.0, -5.0, beta=0.1)
        assert loss == pytest.approx(np.log(2))

    def test_gradients_antisymmetric(self):
        __, gw, gl = dpo_loss(0.3, -0.2, 0.1, 0.0, beta=0.2)
        assert gw == pytest.approx(-gl)
        assert gw < 0  # pushing the winner up reduces the loss

    def test_bad_beta_raises(self):
        with pytest.raises(ValueError):
            dpo_loss(0, 0, 0, 0, beta=0.0)

    def test_grad_matches_finite_difference(self):
        beta = 0.1
        ref_w, ref_l = -2.0, -3.0
        pw, pl = -1.5, -2.5
        loss, gw, gl = dpo_loss(pw, pl, ref_w, ref_l, beta)
        eps = 1e-6
        up, __, __ = dpo_loss(pw + eps, pl, ref_w, ref_l, beta)
        down, __, __ = dpo_loss(pw - eps, pl, ref_w, ref_l, beta)
        assert gw == pytest.approx((up - down) / (2 * eps), abs=1e-6)


class TestNLLs:
    def test_description_nll_perfect_prediction(self):
        logits = np.array([[50.0, -50.0]])
        targets = np.array([[1.0, 0.0]])
        loss, __ = description_nll(logits, targets)
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_assess_nll_gradient_direction(self):
        logits = np.array([0.0])
        labels = np.array([1.0])
        __, grad = assess_nll(logits, labels)
        assert grad[0] < 0  # must push the logit up


@pytest.fixture()
def dpo_setup(micro_uvsd):
    model = FoundationModel(make_rng(55, "dpo-test"))
    video = micro_uvsd[0].video
    return model, video


class TestDPOTrainer:
    def test_description_preference_learned(self, dpo_setup):
        model, video = dpo_setup
        winner = FacialDescription((1, 4))
        loser = FacialDescription((6, 12))
        trainer = DPOTrainer(model, beta=0.5, lr=5e-2)
        before = (model.description_logprob(video, winner)
                  - model.description_logprob(video, loser))
        curve = trainer.train_descriptions(
            [DescriptionPreference(video, winner, loser)], epochs=20
        )
        after = (model.description_logprob(video, winner)
                 - model.description_logprob(video, loser))
        assert after > before
        assert curve[-1] < curve[0]

    def test_rationale_preference_learned(self, dpo_setup):
        model, video = dpo_setup
        description = FacialDescription((1, 4, 6))
        winner, loser = (4, 1, 6), (6, 1, 4)
        trainer = DPOTrainer(model, beta=0.5, lr=5e-2)
        before = (
            model.rationale_logprob(video, description, winner, STRESSED)
            - model.rationale_logprob(video, description, loser, STRESSED)
        )
        curve = trainer.train_rationales(
            [RationalePreference(video, description, STRESSED,
                                 winner, loser)],
            epochs=20,
        )
        after = (
            model.rationale_logprob(video, description, winner, STRESSED)
            - model.rationale_logprob(video, description, loser, STRESSED)
        )
        assert after > before
        assert curve[-1] < curve[0]

    def test_reference_model_unchanged(self, dpo_setup):
        model, video = dpo_setup
        trainer = DPOTrainer(model, beta=0.5, lr=5e-2)
        ref_state = trainer.reference.state_dict()
        trainer.train_descriptions(
            [DescriptionPreference(video, FacialDescription((1,)),
                                   FacialDescription((2,)))],
            epochs=5,
        )
        for name, value in trainer.reference.state_dict().items():
            assert np.array_equal(value, ref_state[name])

    def test_empty_preferences_noop(self, dpo_setup):
        model, __ = dpo_setup
        trainer = DPOTrainer(model)
        assert trainer.train_descriptions([]) == []
        assert trainer.train_rationales([]) == []

    def test_identical_pair_skipped(self, dpo_setup):
        model, video = dpo_setup
        description = FacialDescription((1, 4))
        trainer = DPOTrainer(model, lr=1e-2)
        curve = trainer.train_rationales(
            [RationalePreference(video, description, STRESSED,
                                 (1, 4), (1, 4))],
            epochs=3,
        )
        assert all(loss == 0.0 for loss in curve)

    def test_bad_beta_raises(self, dpo_setup):
        model, __ = dpo_setup
        from repro.errors import TrainingError

        with pytest.raises(TrainingError):
            DPOTrainer(model, beta=0.0)
