"""Tests for the FoundationModel simulator."""

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.facs.descriptions import FacialDescription
from repro.model.foundation import STRESSED, UNSTRESSED, FoundationModel
from repro.model.generation import GenerationConfig
from repro.model.session import DialogueSession
from repro.rng import make_rng


class TestDescribe:
    def test_greedy_is_deterministic(self, fresh_model, sample_video):
        a = fresh_model.describe(sample_video, GenerationConfig(temperature=0))
        b = fresh_model.describe(sample_video, GenerationConfig(temperature=0))
        assert a == b

    def test_sampled_varies_with_seed(self, fresh_model, sample_video):
        outs = {
            fresh_model.describe(sample_video,
                                 GenerationConfig(seed=s)).au_ids
            for s in range(8)
        }
        assert len(outs) > 1

    def test_session_records_turn(self, fresh_model, sample_video):
        session = DialogueSession()
        fresh_model.describe(sample_video, GenerationConfig(temperature=0),
                             session=session)
        assert len(session) == 1
        assert "facial expressions" in session.turns[0].response

    def test_logprob_is_negative(self, fresh_model, sample_video):
        description = fresh_model.describe(
            sample_video, GenerationConfig(temperature=0)
        )
        logprob = fresh_model.description_logprob(sample_video, description)
        assert logprob < 0

    def test_greedy_description_is_mode(self, fresh_model, sample_video):
        """The greedy description must have the highest probability."""
        greedy = fresh_model.describe(sample_video,
                                      GenerationConfig(temperature=0))
        greedy_lp = fresh_model.description_logprob(sample_video, greedy)
        for seed in range(5):
            other = fresh_model.describe(sample_video,
                                         GenerationConfig(seed=seed))
            assert fresh_model.description_logprob(sample_video, other) <= \
                greedy_lp + 1e-9


class TestAssess:
    def test_greedy_threshold(self, fresh_model, sample_video):
        label, prob = fresh_model.assess(sample_video, None)
        logit = fresh_model.assess_logit(sample_video, None)
        assert label == (STRESSED if logit > 0 else UNSTRESSED)
        assert prob == pytest.approx(1 / (1 + math.exp(-logit)))

    def test_description_changes_logit(self, fresh_model, sample_video):
        without = fresh_model.assess_logit(sample_video, None)
        with_desc = fresh_model.assess_logit(
            sample_video, FacialDescription((1, 4, 15))
        )
        assert without != with_desc

    def test_tempered_sampling_seeded(self, fresh_model, sample_video):
        config = GenerationConfig(temperature=0.7, seed=11)
        a = fresh_model.assess(sample_video, None, config)
        b = fresh_model.assess(sample_video, None, config)
        assert a == b

    def test_frames_pathway_matches_video_pathway(self, fresh_model,
                                                  sample_video):
        fe, fl = sample_video.keyframes
        description = FacialDescription((4,))
        assert fresh_model.assess_logit_from_frames(fe, fl, description) == \
            pytest.approx(fresh_model.assess_logit(sample_video, description))


class TestHighlight:
    def test_rationale_subset_of_description(self, fresh_model, sample_video):
        description = FacialDescription((1, 4, 6, 25))
        rationale = fresh_model.highlight(sample_video, description, STRESSED)
        assert set(rationale) <= set(description.au_ids)
        assert len(rationale) == len(description)

    def test_empty_description_gives_empty_rationale(self, fresh_model,
                                                     sample_video):
        assert fresh_model.highlight(sample_video, FacialDescription(()),
                                     STRESSED) == ()

    def test_invalid_assessment_raises(self, fresh_model, sample_video):
        with pytest.raises(ModelError):
            fresh_model.highlight(sample_video, FacialDescription((1,)), 7)

    def test_assessment_sign_changes_scores(self, fresh_model, sample_video):
        description = FacialDescription((1, 4, 6, 25))
        stressed = fresh_model.highlight_scores(sample_video, description,
                                                STRESSED)
        unstressed = fresh_model.highlight_scores(sample_video, description,
                                                  UNSTRESSED)
        active = np.isfinite(stressed)
        assert not np.allclose(stressed[active], unstressed[active])

    def test_rationale_logprob_negative(self, fresh_model, sample_video):
        description = FacialDescription((1, 4, 6))
        rationale = fresh_model.highlight(sample_video, description, STRESSED)
        logprob = fresh_model.rationale_logprob(sample_video, description,
                                                rationale, STRESSED)
        assert logprob < 0

    def test_top_k(self, fresh_model, sample_video):
        description = FacialDescription((1, 4, 6, 25))
        rationale = fresh_model.highlight(sample_video, description, STRESSED,
                                          top_k=2)
        assert len(rationale) == 2


class TestVerify:
    def _videos(self, micro_uvsd, count):
        return [s.video for s in list(micro_uvsd)[:count]]

    def test_requires_fresh_session(self, fresh_model, micro_uvsd):
        videos = self._videos(micro_uvsd, 3)
        session = DialogueSession()
        session.record.__self__.turns.append  # no-op, keep lint quiet
        fresh_model.describe(videos[0], GenerationConfig(temperature=0),
                             session=session)
        with pytest.raises(ModelError):
            fresh_model.verify(FacialDescription((1,)), videos,
                               GenerationConfig(), session)

    def test_needs_two_candidates(self, fresh_model, micro_uvsd):
        videos = self._videos(micro_uvsd, 1)
        with pytest.raises(ModelError):
            fresh_model.verify(FacialDescription((1,)), videos,
                               GenerationConfig(), DialogueSession())

    def test_choice_in_range_and_recorded(self, fresh_model, micro_uvsd):
        videos = self._videos(micro_uvsd, 4)
        session = DialogueSession()
        choice = fresh_model.verify(
            FacialDescription((4,)), videos,
            GenerationConfig(temperature=0.0), session,
        )
        assert 0 <= choice < 4
        assert len(session) == 1


class TestHousekeeping:
    def test_clone_is_independent(self, fresh_model, sample_video):
        clone = fresh_model.clone()
        clone.assess_head.weight.value += 1.0
        assert fresh_model.assess_logit(sample_video, None) != \
            clone.assess_logit(sample_video, None)

    def test_frozen_blocks_training(self, fresh_model):
        fresh_model.frozen = True
        with pytest.raises(ModelError):
            fresh_model.backward_description(np.zeros(12))

    def test_feature_cache(self, fresh_model, sample_video):
        a = fresh_model.features(sample_video)
        b = fresh_model.features(sample_video)
        assert a is b
        fresh_model.clear_feature_cache()
        assert fresh_model.features(sample_video) is not a

    def test_au_patch_sensitivity_shape(self, fresh_model):
        sens = fresh_model.au_patch_sensitivity(4)
        assert sens.shape == (12, 12)
        assert np.all(sens >= 0)

    def test_feature_cache_distinguishes_same_id_different_seed(
        self, fresh_model
    ):
        """Regression: two datasets generated with different root seeds
        reuse the same human-readable video ids; the feature cache must
        not serve one dataset's features for the other's videos."""
        from repro.datasets import generate_disfa

        a = generate_disfa(seed=0, num_samples=2, num_subjects=2)
        b = generate_disfa(seed=99, num_samples=2, num_subjects=2)
        assert a[0].video.video_id == b[0].video.video_id
        features_a = fresh_model.features(a[0].video)
        features_b = fresh_model.features(b[0].video)
        assert not np.array_equal(features_a, features_b)
