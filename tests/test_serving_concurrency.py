"""Concurrency stress for the serving layer.

N client threads fire M requests each with randomized (seeded) delays
against one :class:`StressService`.  The suite asserts the full
contract under contention: no deadlocks (everything joins within a
timeout), no dropped or duplicated responses, every response bitwise
identical to a serial run, and backpressure errors raised *only* when
the queue genuinely exceeded ``max_queue_depth``.

Also the regression for the latent mutable-state hazard: the
foundation model's layers cache forward activations
(``Linear.forward`` stores its input), so unserialized concurrent
model calls would race.  The service serializes all model access on
the batcher worker and hands out per-request sessions; the tests pin
both properties.
"""

from __future__ import annotations

import random
import threading
import time

import numpy as np
import pytest

from repro.cot.chain import StressChainPipeline
from repro.errors import ServiceOverloadedError
from repro.model.foundation import FoundationModel
from repro.model.session import DialogueSession
from repro.rng import make_rng
from repro.serving import SerialDispatcher, ServiceConfig, StressService
from repro.video.frame import Video, VideoSpec

JOIN_TIMEOUT_S = 120.0  # deadlock guard: generous, never hit when healthy


def _videos(count: int, base_seed: int) -> list[Video]:
    videos = []
    for index in range(count):
        rng = np.random.default_rng(base_seed + index)
        curves = np.clip(rng.random((12, 12)) * rng.uniform(0.3, 1.0), 0, 1)
        videos.append(Video(VideoSpec(
            video_id=f"conc-{base_seed}-{index}",
            subject_id=f"conc-subj-{index % 4}",
            au_intensities=curves, identity=rng.standard_normal(8),
            noise_scale=0.02, seed=base_seed * 10 + index,
        )))
    return videos


@pytest.fixture(scope="module")
def pipeline():
    return StressChainPipeline(
        FoundationModel(make_rng(47, "serving-concurrency")))


def test_stress_no_drops_no_duplicates_serial_identical(pipeline):
    num_threads, requests_per_thread = 6, 8
    videos = _videos(5, base_seed=200)
    serial = {v.video_id: pipeline.predict(v) for v in videos}

    results: dict[tuple[int, int], object] = {}
    errors: list[BaseException] = []
    results_lock = threading.Lock()
    start_barrier = threading.Barrier(num_threads)

    def client(thread_id: int) -> None:
        rng = random.Random(1000 + thread_id)
        start_barrier.wait()
        for request_id in range(requests_per_thread):
            time.sleep(rng.uniform(0, 0.003))
            video = videos[rng.randrange(len(videos))]
            try:
                result = service.predict(video, timeout=JOIN_TIMEOUT_S)
            except BaseException as exc:  # noqa: BLE001 - collected below
                with results_lock:
                    errors.append(exc)
                continue
            with results_lock:
                key = (thread_id, request_id)
                assert key not in results, "duplicated response delivery"
                results[key] = (video.video_id, result)

    config = ServiceConfig(max_batch_size=8, max_wait_ms=1.0,
                           max_queue_depth=256)
    with StressService(pipeline, config) as service:
        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(JOIN_TIMEOUT_S)
            assert not thread.is_alive(), "client thread deadlocked"
        stats = service.stats()

    # queue_depth=256 > total requests, so nothing may have been rejected
    assert not errors, f"unexpected request failures: {errors[:3]}"
    # no drops: every (thread, request) pair produced exactly one result
    assert len(results) == num_threads * requests_per_thread
    assert stats.completed == num_threads * requests_per_thread
    assert stats.failed == 0
    assert stats.rejected == 0
    # bitwise serial equivalence under contention
    for video_id, result in results.values():
        want = serial[video_id]
        assert result.label == want.label
        assert result.prob_stressed == want.prob_stressed
        assert tuple(result.rationale) == tuple(want.rationale)
        assert result.session.transcript() == want.session.transcript()
    # distinct session objects per response, even for identical content
    sessions = [id(result.session) for __, result in results.values()]
    assert len(set(sessions)) == len(sessions)


def test_backpressure_only_past_queue_depth(pipeline):
    """Rejections happen iff the queue is genuinely full: a gated
    executor holds the worker so the queue depth is deterministic."""
    video = _videos(1, base_seed=300)[0]
    release = threading.Event()
    worker_busy = threading.Event()

    config = ServiceConfig(max_batch_size=1, max_wait_ms=0, max_queue_depth=3)
    service = StressService(pipeline, config)
    real_run_batch = service.executor.run_batch

    def gated_run_batch(videos):
        worker_busy.set()
        release.wait(JOIN_TIMEOUT_S)
        return real_run_batch(videos)

    service.executor.run_batch = gated_run_batch
    try:
        in_flight = service.submit(video)      # occupies the worker
        assert worker_busy.wait(JOIN_TIMEOUT_S)
        queued = [service.submit(video) for __ in range(3)]  # fills queue
        # depth == max_queue_depth: the next submit must be rejected
        with pytest.raises(ServiceOverloadedError):
            service.submit(video)
        release.set()
        # every accepted request still completes (none were dropped)
        accepted = [in_flight, *queued]
        probs = {f.result(JOIN_TIMEOUT_S).prob_stressed for f in accepted}
        assert len(probs) == 1
        stats = service.stats()
        assert stats.rejected == 1
        assert stats.completed == len(accepted)
    finally:
        release.set()
        service.close()


def test_concurrent_requests_do_not_interleave_sessions(pipeline):
    """Mutable-state regression: with concurrent clients, every
    response's session contains exactly its own chain's turns -- no
    cross-request turn leakage and no shared session objects."""
    videos = _videos(4, base_seed=400)
    expected_turns = {v.video_id: len(pipeline.predict(v).session)
                      for v in videos}

    collected = []
    lock = threading.Lock()

    def client(thread_id: int) -> None:
        rng = random.Random(thread_id)
        for __ in range(6):
            video = videos[rng.randrange(len(videos))]
            result = service.predict(video, timeout=JOIN_TIMEOUT_S)
            with lock:
                collected.append((video.video_id, result.session))

    with StressService(pipeline, ServiceConfig(max_wait_ms=1.0)) as service:
        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(JOIN_TIMEOUT_S)
            assert not thread.is_alive(), "client thread deadlocked"

    assert len(collected) == 30
    for video_id, session in collected:
        assert isinstance(session, DialogueSession)
        assert len(session) == expected_turns[video_id], (
            f"{video_id}: session gained or lost turns under concurrency")
    assert len({id(session) for __, session in collected}) == len(collected)


def test_serial_dispatcher_is_thread_safe_baseline(pipeline):
    """The benchmark baseline holds under the same client load: the
    global lock serializes model access, so concurrent results equal
    unshared serial ones."""
    videos = _videos(3, base_seed=500)
    serial = {v.video_id: pipeline.predict(v) for v in videos}
    dispatcher = SerialDispatcher(pipeline)

    mismatches = []
    lock = threading.Lock()

    def client(thread_id: int) -> None:
        rng = random.Random(thread_id * 7)
        for __ in range(5):
            video = videos[rng.randrange(len(videos))]
            result = dispatcher.predict(video)
            want = serial[video.video_id]
            if (result.prob_stressed != want.prob_stressed
                    or result.session.transcript()
                    != want.session.transcript()):
                with lock:
                    mismatches.append(video.video_id)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(JOIN_TIMEOUT_S)
        assert not thread.is_alive()
    dispatcher.close()
    assert not mismatches
