"""Tests for in-context retrieval encoders and retrievers."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.retrieval import (
    DescriptionEncoder,
    DescriptionRetriever,
    RandomRetriever,
    VisionEncoder,
    VisionRetriever,
)
from repro.retrieval.encoders import cosine_similarity


class TestEncoders:
    def test_vision_embedding_shape(self, micro_uvsd):
        encoder = VisionEncoder(embed_dim=16)
        out = encoder.encode(micro_uvsd[0].video)
        assert out.shape == (16,)

    def test_vision_deterministic(self, micro_uvsd):
        video = micro_uvsd[0].video
        encoder = VisionEncoder(seed=1)
        assert np.array_equal(encoder.encode(video), encoder.encode(video))

    def test_description_same_text_same_vector(self):
        encoder = DescriptionEncoder()
        a = encoder.encode("eyebrow raising and cheek raised")
        b = encoder.encode("eyebrow raising and cheek raised")
        assert np.array_equal(a, b)

    def test_description_similarity_reflects_overlap(self):
        encoder = DescriptionEncoder()
        base = encoder.encode("inner eyebrows raising, upper lid raising")
        close = encoder.encode("inner eyebrows raising, cheek raised")
        far = encoder.encode("jaw dropping open, lips parting slightly")
        assert cosine_similarity(base, close) > cosine_similarity(base, far)

    def test_empty_text_is_zero_vector(self):
        assert np.allclose(DescriptionEncoder().encode(""), 0.0)

    def test_cosine_zero_vectors(self):
        assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0


@pytest.fixture(scope="module")
def retriever_setup(trained):
    model, __, train, test = trained
    pool = list(train)[:40]
    return model, pool, test


class TestRetrievers:
    def test_empty_pool_raises(self, retriever_setup):
        model, __, __ = retriever_setup
        with pytest.raises(ModelError):
            RandomRetriever(model, [])

    def test_random_is_deterministic_per_video(self, retriever_setup):
        model, pool, test = retriever_setup
        retriever = RandomRetriever(model, pool, seed=4)
        video = test[0].video
        query = model.describe(video)
        a = retriever.retrieve(video, query)
        b = retriever.retrieve(video, query)
        assert [x.description for x in a] == [x.description for x in b]

    def test_vision_retrieves_most_similar(self, retriever_setup):
        model, pool, test = retriever_setup
        retriever = VisionRetriever(model, pool, seed=0)
        video = test[0].video
        examples = retriever.retrieve(video, model.describe(video))
        assert len(examples) == 1
        assert examples[0].label in (0, 1)

    def test_description_retrieval_prefers_matching_descriptions(
        self, retriever_setup
    ):
        model, pool, test = retriever_setup
        retriever = DescriptionRetriever(model, pool, seed=0)
        video = test[0].video
        query = model.describe(video)
        examples = retriever.retrieve(video, query)
        from repro.retrieval.encoders import DescriptionEncoder

        encoder = DescriptionEncoder()
        query_vec = encoder.encode(query.render())
        best_sim = cosine_similarity(
            query_vec, encoder.encode(examples[0].description.render())
        )
        # No pool entry may be strictly more similar than the retrieved one.
        for pooled_desc in retriever._descriptions:
            sim = cosine_similarity(query_vec,
                                    encoder.encode(pooled_desc.render()))
            assert sim <= best_sim + 1e-9

    def test_num_examples_respected(self, retriever_setup):
        model, pool, test = retriever_setup
        retriever = RandomRetriever(model, pool, num_examples=3, seed=0)
        video = test[0].video
        assert len(retriever.retrieve(video, model.describe(video))) == 3
