"""Tests for the UVSD / RSL / DISFA+ generators."""

import numpy as np
import pytest

from repro.datasets import generate_disfa, generate_rsl, generate_uvsd
from repro.datasets.instruction import build_instruction_pairs
from repro.datasets.rsl import rsl_config
from repro.datasets.synth import SynthesisConfig, synthesize_dataset
from repro.datasets.uvsd import uvsd_config
from repro.errors import DatasetError
from repro.facs.stress_priors import default_stress_prior


class TestPaperStatistics:
    """Full-size generation matches the paper's corpus statistics."""

    def test_uvsd_counts(self):
        dataset = generate_uvsd()
        assert len(dataset) == 2092
        assert len(dataset.subjects()) == 112
        assert dataset.class_counts() == (1172, 920)

    def test_rsl_counts(self):
        dataset = generate_rsl()
        assert len(dataset) == 706
        assert len(dataset.subjects()) == 60
        assert dataset.class_counts() == (497, 209)

    def test_disfa_counts(self):
        dataset = generate_disfa()
        assert len(dataset) == 645


class TestScaledGeneration:
    def test_balance_preserved_when_scaled(self):
        dataset = generate_uvsd(num_samples=400, num_subjects=40)
        unstressed, stressed = dataset.class_counts()
        paper_ratio = 920 / 2092
        assert abs(stressed / 400 - paper_ratio) < 0.03

    def test_deterministic_per_seed(self):
        a = generate_rsl(seed=5, num_samples=60, num_subjects=10)
        b = generate_rsl(seed=5, num_samples=60, num_subjects=10)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a[0].video.frame(0), b[0].video.frame(0))

    def test_seed_changes_data(self):
        a = generate_rsl(seed=1, num_samples=60, num_subjects=10)
        b = generate_rsl(seed=2, num_samples=60, num_subjects=10)
        assert not np.array_equal(a[0].true_aus, b[0].true_aus) or \
            not np.array_equal(a[0].video.frame(0), b[0].video.frame(0))


class TestSignalStructure:
    def test_stress_signal_present(self):
        """AU occurrence statistics must separate the classes."""
        dataset = generate_uvsd(num_samples=600, num_subjects=50)
        weights = default_stress_prior(
            coupling=uvsd_config().prior.coupling
        ).evidence_weights()
        scores = np.array([s.true_aus @ weights for s in dataset])
        labels = dataset.labels
        assert scores[labels == 1].mean() > scores[labels == 0].mean() + 1.0

    def test_rsl_is_harder_than_uvsd(self):
        assert rsl_config().prior.coupling < uvsd_config().prior.coupling
        assert rsl_config().label_noise > uvsd_config().label_noise
        assert rsl_config().occlusion_rate > uvsd_config().occlusion_rate

    def test_disfa_covers_all_aus(self):
        dataset = generate_disfa(num_samples=300, num_subjects=10)
        occurrences = np.stack([s.true_aus for s in dataset]).sum(axis=0)
        assert np.all(occurrences > 0), "every AU must appear in DISFA+"


class TestSynthesisConfigValidation:
    def test_invalid_counts_raise(self):
        with pytest.raises(DatasetError):
            SynthesisConfig("x", 0, 1, 0, default_stress_prior())
        with pytest.raises(DatasetError):
            SynthesisConfig("x", 10, 1, 20, default_stress_prior())
        with pytest.raises(DatasetError):
            SynthesisConfig("x", 10, 1, 5, default_stress_prior(),
                            label_noise=0.7)

    def test_stressed_count_exact(self):
        config = SynthesisConfig("x", 101, 7, 37, default_stress_prior())
        records = synthesize_dataset(config, seed=0)
        assert sum(label for __, label, __ in records) == 37


class TestInstructionPairs:
    def test_pairs_match_labels(self):
        dataset = generate_disfa(num_samples=40, num_subjects=5)
        pairs = build_instruction_pairs(dataset)
        assert len(pairs) == 40
        for sample, pair in zip(dataset, pairs):
            assert np.array_equal(pair.description.to_vector(),
                                  sample.true_aus)

    def test_pair_text_renders(self):
        dataset = generate_disfa(num_samples=5, num_subjects=2)
        pairs = build_instruction_pairs(dataset)
        assert pairs[0].text.startswith("The facial expressions")
