"""Failure-injection tests: corrupted inputs and degenerate regimes.

The library must fail loudly on malformed inputs and degrade sanely --
not crash -- on degenerate but legal ones (all-one-class data, empty
descriptions, fully-occluded frames).
"""

import numpy as np
import pytest

from repro.cot.chain import StressChainPipeline
from repro.datasets.base import Sample, StressDataset
from repro.errors import DatasetError, TrainingError
from repro.facs.descriptions import FacialDescription
from repro.model.foundation import FoundationModel
from repro.model.generation import GenerationConfig
from repro.rng import make_rng
from repro.training.instruction_tuning import train_assess
from repro.video.frame import Video, VideoSpec


def _video(video_id="fx-0", subject_id="fx-s0", seed=0):
    return Video(VideoSpec(
        video_id=video_id, subject_id=subject_id,
        au_intensities=np.full((6, 12), 0.3),
        identity=np.zeros(8), seed=seed,
    ))


class TestDegenerateData:
    def test_single_class_training_does_not_crash(self, instruction_pairs):
        samples = tuple(
            Sample(video=_video(f"fx-{i}", f"fx-s{i % 3}", seed=i),
                   label=0, true_aus=np.zeros(12))
            for i in range(12)
        )
        dataset = StressDataset("all-unstressed", samples)
        model = FoundationModel(make_rng(1, "fx"))
        curve = train_assess(
            model, [s.video for s in dataset],
            [s.true_description() for s in dataset],
            dataset.labels.astype(float), epochs=20,
        )
        assert np.isfinite(curve).all()
        # The model should then predict the only class it has seen.
        label, __ = model.assess(dataset[0].video, None)
        assert label == 0

    def test_empty_description_assess(self, trained):
        model, __, __, test = trained
        label, prob = model.assess(test[0].video, FacialDescription(()))
        assert label in (0, 1) and 0 <= prob <= 1

    def test_neutral_face_pipeline(self, trained):
        """A clip with no facial action at all must still produce a
        complete (possibly empty-rationale) chain result."""
        model, __, __, __ = trained
        neutral = Video(VideoSpec(
            video_id="fx-neutral", subject_id="fx-sn",
            au_intensities=np.zeros((6, 12)),
            identity=np.zeros(8), seed=3,
        ))
        result = StressChainPipeline(model).predict(neutral)
        assert result.label in (0, 1)

    def test_fully_occluded_frames(self, trained):
        """Occlusion on every frame degrades but never crashes."""
        model, __, __, __ = trained
        occluded = Video(VideoSpec(
            video_id="fx-occ", subject_id="fx-so",
            au_intensities=np.full((6, 12), 0.4),
            identity=np.zeros(8), occlusion_rate=1.0, seed=4,
        ))
        result = StressChainPipeline(model).predict(occluded)
        assert 0.0 <= result.prob_stressed <= 1.0


class TestMalformedInputs:
    def test_nan_intensities_rejected(self):
        curves = np.full((6, 12), np.nan)
        with pytest.raises(ValueError):
            VideoSpec(video_id="x", subject_id="s",
                      au_intensities=curves, identity=np.zeros(8))

    def test_assess_rejects_wrong_frame_shape(self, trained):
        model, __, __, test = trained
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            model.assess_logit_from_frames(
                np.zeros((50, 50)), np.zeros((96, 96)), None
            )

    def test_mismatched_training_inputs(self, trained):
        model = FoundationModel(make_rng(2, "fx2"))
        with pytest.raises(TrainingError):
            train_assess(model, [_video()], [None, None],
                         np.array([0.0]))

    def test_dataset_rejects_duplicate_render_identity(self):
        sample = Sample(video=_video("dup"), label=0,
                        true_aus=np.zeros(12))
        with pytest.raises(DatasetError):
            StressDataset("dup", (sample, sample))


class TestSamplingRobustness:
    def test_extreme_temperature_describe(self, trained):
        model, __, __, test = trained
        hot = model.describe(test[0].video,
                             GenerationConfig(temperature=50.0, seed=1))
        assert isinstance(hot, FacialDescription)

    def test_all_seeds_produce_parseable_descriptions(self, trained):
        model, __, __, test = trained
        for seed in range(10):
            description = model.describe(test[0].video,
                                         GenerationConfig(seed=seed))
            rendered = description.render()
            assert FacialDescription.parse(rendered) == description
