"""Tests for structured generation (Bernoulli sets, Plackett-Luce)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GenerationError
from repro.model.generation import (
    GenerationConfig,
    bernoulli_set_logprob,
    plackett_luce_logprob,
    plackett_luce_logprob_grad,
    sample_bernoulli_set,
    sample_plackett_luce,
)


class TestGenerationConfig:
    def test_negative_temperature_raises(self):
        with pytest.raises(GenerationError):
            GenerationConfig(temperature=-1.0)


class TestBernoulliSet:
    def test_greedy_thresholds(self):
        logits = np.array([2.0, -2.0, 0.5])
        out = sample_bernoulli_set(logits, GenerationConfig(temperature=0.0))
        assert np.array_equal(out, [1.0, 0.0, 1.0])

    def test_sampling_deterministic_per_seed(self):
        logits = np.zeros(12)
        a = sample_bernoulli_set(logits, GenerationConfig(seed=1))
        b = sample_bernoulli_set(logits, GenerationConfig(seed=1))
        assert np.array_equal(a, b)

    def test_temperature_sharpens(self):
        logits = np.full(200, 1.0)
        cold = sample_bernoulli_set(logits,
                                    GenerationConfig(temperature=0.1, seed=0))
        hot = sample_bernoulli_set(logits,
                                   GenerationConfig(temperature=5.0, seed=0))
        assert cold.mean() > hot.mean()

    def test_logprob_matches_manual(self):
        logits = np.array([0.0, 0.0])
        # Each outcome has probability 0.25 at logit 0.
        assert bernoulli_set_logprob(logits, np.array([1.0, 0.0])) == \
            pytest.approx(math.log(0.25))

    def test_logprob_shape_mismatch(self):
        with pytest.raises(GenerationError):
            bernoulli_set_logprob(np.zeros(3), np.zeros(4))

    @given(st.integers(min_value=1, max_value=8))
    def test_outcomes_logprobs_sum_to_one(self, n):
        """Total probability over all 2^n outcomes is 1."""
        rng = np.random.default_rng(n)
        logits = rng.normal(0, 1.5, n)
        total = 0.0
        for bits in range(2**n):
            outcome = np.array([(bits >> i) & 1 for i in range(n)],
                               dtype=float)
            total += math.exp(bernoulli_set_logprob(logits, outcome))
        assert total == pytest.approx(1.0, abs=1e-9)


class TestPlackettLuce:
    def test_greedy_sorts(self):
        scores = np.array([0.1, 3.0, -1.0])
        order = sample_plackett_luce(scores, GenerationConfig(temperature=0.0))
        assert order == (1, 0, 2)

    def test_top_k(self):
        scores = np.array([0.1, 3.0, -1.0])
        order = sample_plackett_luce(scores,
                                     GenerationConfig(temperature=0.0),
                                     top_k=2)
        assert order == (1, 0)

    def test_empty_scores(self):
        assert sample_plackett_luce(np.array([]), GenerationConfig()) == ()

    def test_sampling_is_permutation(self):
        scores = np.zeros(5)
        order = sample_plackett_luce(scores, GenerationConfig(seed=3))
        assert sorted(order) == [0, 1, 2, 3, 4]

    def test_full_orderings_sum_to_one(self):
        from itertools import permutations

        scores = np.random.default_rng(1).normal(0, 1, 4)
        total = sum(
            math.exp(plackett_luce_logprob(scores, perm))
            for perm in permutations(range(4))
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_prefix_marginalises(self):
        """P(prefix) equals the sum of P(full ordering) over
        completions."""
        from itertools import permutations

        scores = np.random.default_rng(2).normal(0, 1, 4)
        prefix = (2, 0)
        completions = [
            prefix + rest
            for rest in permutations([1, 3])
        ]
        assert math.exp(plackett_luce_logprob(scores, prefix)) == \
            pytest.approx(sum(
                math.exp(plackett_luce_logprob(scores, full))
                for full in completions
            ), abs=1e-9)

    def test_repeated_index_raises(self):
        with pytest.raises(GenerationError):
            plackett_luce_logprob(np.zeros(3), (0, 0))

    def test_grad_matches_finite_difference(self):
        scores = np.random.default_rng(4).normal(0, 1, 5)
        ordering = (3, 1, 0)
        grad = plackett_luce_logprob_grad(scores, ordering)
        eps = 1e-6
        for i in range(5):
            bumped = scores.copy()
            bumped[i] += eps
            up = plackett_luce_logprob(bumped, ordering)
            bumped[i] -= 2 * eps
            down = plackett_luce_logprob(bumped, ordering)
            assert grad[i] == pytest.approx((up - down) / (2 * eps),
                                            abs=1e-5)
