"""Tests for Video / VideoSpec."""

import numpy as np
import pytest

from repro.video.frame import DEFAULT_NUM_FRAMES, IDENTITY_DIM, Video, VideoSpec


def _spec(**overrides):
    defaults = dict(
        video_id="v0",
        subject_id="s0",
        au_intensities=np.full((DEFAULT_NUM_FRAMES, 12), 0.3),
        identity=np.zeros(IDENTITY_DIM),
        seed=1,
    )
    defaults.update(overrides)
    return VideoSpec(**defaults)


class TestVideoSpec:
    def test_valid_construction(self):
        spec = _spec()
        assert spec.num_frames == DEFAULT_NUM_FRAMES

    def test_rejects_bad_au_shape(self):
        with pytest.raises(ValueError):
            _spec(au_intensities=np.zeros((12, 5)))

    def test_rejects_out_of_range_intensities(self):
        with pytest.raises(ValueError):
            _spec(au_intensities=np.full((12, 12), 1.5))

    def test_rejects_bad_identity(self):
        with pytest.raises(ValueError):
            _spec(identity=np.zeros(3))

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            _spec(noise_scale=-0.1)

    def test_rejects_bad_occlusion_rate(self):
        with pytest.raises(ValueError):
            _spec(occlusion_rate=1.5)

    def test_mean_and_peak(self):
        curves = np.zeros((12, 12))
        curves[:, 0] = 0.8
        spec = _spec(au_intensities=curves)
        assert spec.mean_au_intensities()[0] == pytest.approx(0.8)
        peak = spec.peak_au_vector()
        assert peak[0] == 1.0 and peak[1:].sum() == 0


class TestVideo:
    def test_frames_deterministic(self):
        a = Video(_spec()).frame(0)
        b = Video(_spec()).frame(0)
        assert np.array_equal(a, b)

    def test_frame_range_checked(self):
        video = Video(_spec())
        with pytest.raises(IndexError):
            video.frame(99)

    def test_frames_stack(self):
        video = Video(_spec())
        frames = video.frames()
        assert frames.shape == (DEFAULT_NUM_FRAMES, 96, 96)
        assert frames.min() >= 0.0 and frames.max() <= 1.0

    def test_keyframes_cached_and_consistent(self):
        video = Video(_spec())
        fe1, fl1 = video.keyframes
        fe2, fl2 = video.keyframes
        assert fe1 is fe2 and fl1 is fl2

    def test_drop_cache_rerenders_identically(self):
        video = Video(_spec())
        before = video.frame(3).copy()
        video.drop_frame_cache()
        assert np.array_equal(before, video.frame(3))

    def test_segmentation_cached(self):
        video = Video(_spec())
        labels1 = video.segmentation(32)
        labels2 = video.segmentation(32)
        assert labels1 is labels2
        assert labels1.shape == (96, 96)
