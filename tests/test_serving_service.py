"""Unit tests for the serving layer's building blocks.

Covers the LRU caches (bounds, eviction, counters, disable mode), the
content hash, the micro-batcher's flush/backpressure/shutdown
behaviour, config validation, and the service stats surface.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.cot.chain import StressChainPipeline
from repro.errors import (
    ConfigError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.model.foundation import FoundationModel
from repro.rng import make_rng
from repro.serving import (
    LRUCache,
    MicroBatcher,
    ServiceConfig,
    StageCaches,
    StressService,
    video_content_hash,
)
from repro.video.frame import Video, VideoSpec


def _video(tag: str, seed: int, noise: float = 0.02) -> Video:
    rng = np.random.default_rng(seed)
    curves = np.clip(rng.random((12, 12)), 0, 1)
    return Video(VideoSpec(
        video_id=f"svc-{tag}", subject_id=f"svc-subj-{tag}",
        au_intensities=curves, identity=rng.standard_normal(8),
        noise_scale=noise, seed=seed,
    ))


@pytest.fixture(scope="module")
def pipeline():
    return StressChainPipeline(FoundationModel(make_rng(9, "serving-unit")))


class TestLRUCache:
    def test_basic_round_trip_and_counters(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 2)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            LRUCache(capacity=-1)


class TestContentHash:
    def test_same_content_same_key(self):
        assert video_content_hash(_video("x", 1)) == \
            video_content_hash(_video("x", 1))

    def test_content_changes_change_key(self):
        base = video_content_hash(_video("x", 1))
        assert video_content_hash(_video("x", 2)) != base          # seed
        assert video_content_hash(_video("x", 1, noise=0.1)) != base

    def test_memoized_key_matches_direct_hash(self):
        caches = StageCaches()
        video = _video("memo", 3)
        assert caches.content_key(video) == video_content_hash(video)
        assert caches.content_key(video) == video_content_hash(video)


class TestMicroBatcher:
    def test_flush_on_batch_size(self):
        seen = []
        gate = threading.Event()

        def on_batch(items):
            seen.append(list(items))
            gate.wait(5)
            return items

        batcher = MicroBatcher(on_batch, max_batch_size=3,
                               max_wait_ms=10_000, max_queue_depth=16)
        futures = [batcher.submit(i) for i in range(3)]
        # the batch is full, so it must flush long before max_wait_ms
        deadline = time.monotonic() + 5
        while not seen and time.monotonic() < deadline:
            time.sleep(0.001)
        gate.set()
        assert [f.result(5) for f in futures] == [0, 1, 2]
        assert seen and len(seen[0]) == 3
        batcher.close()

    def test_flush_on_max_wait(self):
        batcher = MicroBatcher(lambda items: items, max_batch_size=64,
                               max_wait_ms=5, max_queue_depth=16)
        start = time.monotonic()
        assert batcher.submit("solo").result(5) == "solo"
        assert time.monotonic() - start < 2.0
        batcher.close()

    def test_backpressure_rejects_past_queue_depth(self):
        release = threading.Event()
        started = threading.Event()

        def on_batch(items):
            started.set()
            release.wait(5)
            return items

        batcher = MicroBatcher(on_batch, max_batch_size=1, max_wait_ms=0,
                               max_queue_depth=2)
        first = batcher.submit("busy")     # worker picks this up...
        assert started.wait(5)
        queued = [batcher.submit(i) for i in range(2)]  # ...queue fills
        with pytest.raises(ServiceOverloadedError):
            batcher.submit("overflow")
        release.set()
        assert first.result(5) == "busy"
        assert [f.result(5) for f in queued] == [0, 1]
        batcher.close()

    def test_graceful_close_drains(self):
        processed = []

        def on_batch(items):
            time.sleep(0.002)
            processed.extend(items)
            return items

        batcher = MicroBatcher(on_batch, max_batch_size=2, max_wait_ms=1,
                               max_queue_depth=64)
        futures = [batcher.submit(i) for i in range(10)]
        batcher.close(drain=True)
        assert sorted(f.result(0) for f in futures) == list(range(10))
        assert sorted(processed) == list(range(10))
        with pytest.raises(ServiceClosedError):
            batcher.submit("late")

    def test_abrupt_close_fails_pending(self):
        release = threading.Event()
        started = threading.Event()

        def on_batch(items):
            started.set()
            release.wait(5)
            return items

        batcher = MicroBatcher(on_batch, max_batch_size=1, max_wait_ms=0,
                               max_queue_depth=8)
        running = batcher.submit("running")
        assert started.wait(5)
        pending = batcher.submit("pending")
        release.set()
        batcher.close(drain=False)
        assert running.result(5) == "running"
        with pytest.raises(ServiceClosedError):
            pending.result(5)

    def test_callback_exception_fails_the_batch(self):
        def on_batch(items):
            raise RuntimeError("executor blew up")

        batcher = MicroBatcher(on_batch, max_batch_size=4, max_wait_ms=1,
                               max_queue_depth=8)
        future = batcher.submit("doomed")
        with pytest.raises(RuntimeError, match="blew up"):
            future.result(5)
        # the worker survived the exception and still serves requests
        def ok_batch(items):
            return items
        batcher._on_batch = ok_batch
        assert batcher.submit("alive").result(5) == "alive"
        batcher.close()

    def test_config_validation(self):
        for kwargs in ({"max_batch_size": 0}, {"max_wait_ms": -1},
                       {"max_queue_depth": 0}):
            with pytest.raises(ConfigError):
                MicroBatcher(lambda items: items, **kwargs)


class TestServiceConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            ServiceConfig(max_batch_size=0)
        with pytest.raises(ConfigError):
            ServiceConfig(max_wait_ms=-0.5)
        with pytest.raises(ConfigError):
            ServiceConfig(max_queue_depth=0)
        with pytest.raises(ConfigError):
            ServiceConfig(assess_cache_capacity=-1)


class TestStressService:
    def test_predict_and_stats_counters(self, pipeline):
        videos = [_video("stats-a", 21), _video("stats-b", 22)]
        with StressService(pipeline, ServiceConfig(max_wait_ms=0.5)) as svc:
            for __ in range(3):
                for video in videos:
                    result = svc.predict(video, timeout=30)
                    assert result.label in (0, 1)
            stats = svc.stats()
        assert stats.requests == 6
        assert stats.completed == 6
        assert stats.failed == 0
        assert stats.rejected == 0
        assert stats.batches >= 1
        assert stats.mean_batch_occupancy >= 1.0
        assert stats.latency_p95_s >= stats.latency_p50_s >= 0.0
        # repeats of the same two contents must hit every stage cache
        assert stats.cache["describe"].hits >= 4
        assert stats.cache["assess"].hits >= 4
        assert stats.cache["highlight"].hits >= 4
        assert 0.0 < stats.cache_hit_rate <= 1.0

    def test_in_flight_duplicates_deduplicated(self, pipeline):
        video = _video("dup", 31)
        config = ServiceConfig(max_batch_size=8, max_wait_ms=50,
                               describe_cache_capacity=0,
                               assess_cache_capacity=0,
                               highlight_cache_capacity=0)
        with StressService(pipeline, config) as svc:
            futures = [svc.submit(video) for __ in range(8)]
            results = [f.result(30) for f in futures]
            stats = svc.stats()
        reference = pipeline.predict(video)
        for result in results:
            assert result.prob_stressed == reference.prob_stressed
            assert result.session is not results[0].session or \
                result is results[0]
        # at least one batch carried >1 request for the same content
        assert stats.deduplicated >= 1

    def test_submit_after_close_raises(self, pipeline):
        svc = StressService(pipeline)
        svc.close()
        assert svc.closed
        with pytest.raises(ServiceClosedError):
            svc.submit(_video("late", 41))

    def test_close_is_idempotent(self, pipeline):
        svc = StressService(pipeline)
        svc.close()
        svc.close()

    def test_caches_disabled_still_correct(self, pipeline):
        video = _video("nocache", 51)
        config = ServiceConfig(describe_cache_capacity=0,
                               assess_cache_capacity=0,
                               highlight_cache_capacity=0)
        reference = pipeline.predict(video)
        with StressService(pipeline, config) as svc:
            for __ in range(3):
                result = svc.predict(video, timeout=30)
                assert result.prob_stressed == reference.prob_stressed
            stats = svc.stats()
        assert stats.cache["describe"].hits == 0

    def test_predict_many_reuses_service_caches(self, pipeline):
        videos = [_video("rm-a", 61), _video("rm-b", 62)]
        serial = [pipeline.predict(v) for v in videos]
        with StressService(pipeline) as svc:
            for video in videos:
                svc.predict(video, timeout=30)
            results = pipeline.predict_many(videos * 2, caches=svc.caches)
        for want, got in zip(serial * 2, results):
            assert got.prob_stressed == want.prob_stressed
            assert got.session.transcript() == want.session.transcript()
