"""The public API surface, pinned.

``tests/golden/public_api.json`` records every public module's
``__all__``.  Any addition, rename, or removal fails here with a
field-level diff, so the public surface only changes deliberately::

    PYTHONPATH=src python -m pytest tests/test_public_api.py --update-golden

then review the fixture diff like any other code change.

The suite also pins the deprecation contract: ``run``/``run_many`` are
thin aliases of ``predict``/``predict_many`` that warn exactly once per
process and return identical results, and the error hierarchy roots at
:class:`ReproError`.
"""

from __future__ import annotations

import importlib
import json
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import deprecation
from repro.cot.chain import StressChainPipeline, StressPipeline
from repro.errors import ReproError
from repro.model.foundation import FoundationModel
from repro.rng import make_rng
from repro.video.frame import Video, VideoSpec

GOLDEN_PATH = Path(__file__).parent / "golden" / "public_api.json"

#: Every module whose ``__all__`` is part of the public contract.
PUBLIC_MODULES = [
    "repro",
    "repro.baselines",
    "repro.config",
    "repro.cot",
    "repro.datasets",
    "repro.errors",
    "repro.evaluation",
    "repro.experiments",
    "repro.explainers",
    "repro.facs",
    "repro.metrics",
    "repro.model",
    "repro.nn",
    "repro.observability",
    "repro.reliability",
    "repro.retrieval",
    "repro.serving",
    "repro.training",
    "repro.video",
]


def surface() -> dict[str, list[str]]:
    return {
        name: sorted(importlib.import_module(name).__all__)
        for name in PUBLIC_MODULES
    }


def _video(tag: str = "api") -> Video:
    rng = np.random.default_rng(31)
    return Video(VideoSpec(
        video_id=f"{tag}-video", subject_id=f"{tag}-subj",
        au_intensities=np.clip(rng.random((12, 12)), 0, 1),
        identity=rng.standard_normal(8), seed=13_000,
    ))


# ----------------------------------------------------------------------
# Surface snapshot
# ----------------------------------------------------------------------


class TestSurfaceSnapshot:
    def test_public_surface_matches_golden(self, update_golden):
        current = surface()
        if update_golden:
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(json.dumps(current, indent=2) + "\n")
            pytest.skip(f"public API snapshot regenerated at {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            "API snapshot missing; regenerate with "
            "`python -m pytest tests/test_public_api.py --update-golden`")
        recorded = json.loads(GOLDEN_PATH.read_text())
        assert sorted(recorded) == sorted(current), (
            "public module set changed; regenerate with --update-golden "
            "and review the diff")
        for module in recorded:
            added = sorted(set(current[module]) - set(recorded[module]))
            removed = sorted(set(recorded[module]) - set(current[module]))
            assert not added and not removed, (
                f"{module}.__all__ drifted (added {added}, removed "
                f"{removed}); regenerate with --update-golden and review")

    def test_every_all_entry_resolves(self):
        for name in PUBLIC_MODULES:
            module = importlib.import_module(name)
            missing = [entry for entry in module.__all__
                       if not hasattr(module, entry)]
            assert not missing, f"{name}.__all__ names missing: {missing}"

    def test_every_all_is_sorted_and_unique(self):
        for name in PUBLIC_MODULES:
            entries = importlib.import_module(name).__all__
            assert list(entries) == sorted(set(entries)), (
                f"{name}.__all__ is not sorted/deduplicated")


# ----------------------------------------------------------------------
# Error hierarchy
# ----------------------------------------------------------------------


class TestErrorHierarchy:
    def test_every_exported_error_derives_from_repro_error(self):
        from repro import errors

        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, ReproError), name

    def test_every_error_is_exported_from_repro(self):
        from repro import errors

        for name in errors.__all__:
            assert name in repro.__all__, (
                f"repro.errors.{name} missing from repro.__all__")
            assert getattr(repro, name) is getattr(errors, name)


# ----------------------------------------------------------------------
# Facade and deprecated aliases
# ----------------------------------------------------------------------


class TestFacade:
    def test_stress_pipeline_is_the_chain_pipeline(self):
        assert StressPipeline is StressChainPipeline
        assert repro.StressPipeline is StressChainPipeline

    def test_predict_keywords_are_keyword_only(self, fresh_model):
        pipeline = StressPipeline(fresh_model)
        with pytest.raises(TypeError):
            pipeline.predict(_video(), False)  # explain must be keyword

    def test_explain_false_skips_rationale_not_assessment(self, fresh_model):
        pipeline = StressPipeline(fresh_model)
        video = _video()
        full = pipeline.predict(video)
        bare = pipeline.predict(video, explain=False)
        assert bare.label == full.label
        assert bare.prob_stressed == full.prob_stressed
        assert tuple(bare.rationale) == ()
        assert len(bare.session) < len(full.session)


class TestDeprecatedAliases:
    @pytest.fixture(autouse=True)
    def _reset(self):
        deprecation.reset_warned()
        yield
        deprecation.reset_warned()

    def test_run_warns_and_matches_predict(self, fresh_model):
        pipeline = StressPipeline(fresh_model)
        video = _video()
        want = pipeline.predict(video)
        with pytest.warns(DeprecationWarning, match="use .*predict"):
            got = pipeline.run(video)
        assert got.label == want.label
        assert got.prob_stressed == want.prob_stressed
        assert tuple(got.rationale) == tuple(want.rationale)
        assert got.session.transcript() == want.session.transcript()

    def test_run_many_warns_and_matches_predict_many(self, fresh_model):
        pipeline = StressPipeline(fresh_model)
        videos = [_video("a"), _video("b")]
        want = pipeline.predict_many(videos)
        with pytest.warns(DeprecationWarning, match="run_many"):
            got = pipeline.run_many(videos)
        for one, two in zip(got, want):
            assert one.prob_stressed == two.prob_stressed
            assert one.session.transcript() == two.session.transcript()

    def test_each_alias_warns_exactly_once_per_process(self, fresh_model):
        pipeline = StressPipeline(fresh_model)
        video = _video()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pipeline.run(video)
            pipeline.run(video)
            pipeline.run_many([video])
            pipeline.run_many([video])
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 2  # one per alias, not per call
        messages = sorted(str(w.message) for w in deprecations)
        assert "run is deprecated" in messages[0]
        assert "run_many is deprecated" in messages[1]

    def test_predict_never_warns(self, fresh_model):
        pipeline = StressPipeline(fresh_model)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pipeline.predict(_video())
            pipeline.predict_many([_video()])
