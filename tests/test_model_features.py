"""Tests for the model's visual feature extraction."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.features import (
    feature_dim,
    keyframe_features,
    patch_means,
    video_features,
)


class TestPatchMeans:
    def test_constant_frame(self):
        out = patch_means(np.full((96, 96), 0.5))
        assert out.shape == (144,)
        assert np.allclose(out, 0.5)

    def test_indivisible_frame_raises(self):
        with pytest.raises(ModelError):
            patch_means(np.zeros((97, 97)))

    def test_non_2d_raises(self):
        with pytest.raises(ModelError):
            patch_means(np.zeros((4, 4, 3)))

    def test_localised_change_hits_one_patch(self):
        frame = np.zeros((96, 96))
        frame[0:8, 0:8] = 1.0
        out = patch_means(frame)
        assert out[0] == pytest.approx(1.0)
        assert np.count_nonzero(out) == 1


class TestKeyframeFeatures:
    def test_dimension(self):
        fe = np.full((96, 96), 0.6)
        fl = np.full((96, 96), 0.4)
        out = keyframe_features(fe, fl)
        assert out.shape == (feature_dim(),)

    def test_difference_channel_cancels_identity(self):
        """A constant offset shared by both keyframes (identity or
        lighting) must vanish from the difference channel."""
        base = np.random.default_rng(0).random((96, 96)) * 0.2 + 0.4
        fe = np.clip(base + 0.1, 0, 1)
        fl = np.clip(base - 0.1, 0, 1)
        offset_fe = np.clip(fe + 0.05, 0, 1)
        offset_fl = np.clip(fl + 0.05, 0, 1)
        diff1 = keyframe_features(fe, fl)[144:]
        diff2 = keyframe_features(offset_fe, offset_fl)[144:]
        assert np.allclose(diff1, diff2, atol=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ModelError):
            keyframe_features(np.zeros((96, 96)), np.zeros((48, 48)))

    def test_video_features(self, sample_video):
        out = video_features(sample_video)
        assert out.shape == (feature_dim(),)
        assert np.isfinite(out).all()
