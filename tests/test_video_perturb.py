"""Tests for frame perturbation primitives."""

import numpy as np
import pytest

from repro.errors import ExplainerError
from repro.facs.regions import REGIONS
from repro.rng import make_rng
from repro.video.perturb import (
    apply_mask,
    gaussian_perturb_segments,
    mosaic_region,
    zero_segments,
)


@pytest.fixture()
def frame_and_labels():
    frame = np.linspace(0, 1, 96 * 96).reshape(96, 96)
    labels = np.zeros((96, 96), dtype=np.int64)
    labels[:48, :] = 0
    labels[48:, :48] = 1
    labels[48:, 48:] = 2
    return frame, labels


class TestGaussianPerturb:
    def test_only_selected_segments_change(self, frame_and_labels):
        frame, labels = frame_and_labels
        out = gaussian_perturb_segments(frame, labels, [1],
                                        make_rng(0, "t"))
        changed = out != frame
        assert changed[labels == 1].any()
        assert not changed[labels == 0].any()
        assert not changed[labels == 2].any()

    def test_replace_mode_destroys_signal(self, frame_and_labels):
        frame, labels = frame_and_labels
        out = gaussian_perturb_segments(frame, labels, [2],
                                        make_rng(0, "t"),
                                        noise_scale=0.1, mode="replace")
        # Replaced region centres near 0.5 regardless of original values.
        assert abs(out[labels == 2].mean() - 0.5) < 0.05

    def test_additive_mode_preserves_mean_signal(self, frame_and_labels):
        frame, labels = frame_and_labels
        out = gaussian_perturb_segments(frame, labels, [2],
                                        make_rng(0, "t"),
                                        noise_scale=0.05, mode="additive")
        assert abs(out[labels == 2].mean() - frame[labels == 2].mean()) < 0.05

    def test_input_not_modified(self, frame_and_labels):
        frame, labels = frame_and_labels
        original = frame.copy()
        gaussian_perturb_segments(frame, labels, [0], make_rng(0, "t"))
        assert np.array_equal(frame, original)

    def test_unknown_mode_raises(self, frame_and_labels):
        frame, labels = frame_and_labels
        with pytest.raises(ExplainerError):
            gaussian_perturb_segments(frame, labels, [0], make_rng(0, "t"),
                                      mode="sparkle")

    def test_shape_mismatch_raises(self, frame_and_labels):
        frame, __ = frame_and_labels
        with pytest.raises(ExplainerError):
            gaussian_perturb_segments(frame, np.zeros((4, 4), dtype=int),
                                      [0], make_rng(0, "t"))


class TestZeroAndMask:
    def test_zero_segments_fill(self, frame_and_labels):
        frame, labels = frame_and_labels
        out = zero_segments(frame, labels, [0], fill=0.25)
        assert np.all(out[labels == 0] == 0.25)

    def test_apply_mask_keeps_all(self, frame_and_labels):
        frame, labels = frame_and_labels
        out = apply_mask(frame, labels, np.ones(3))
        assert np.array_equal(out, frame)

    def test_apply_mask_drops_some(self, frame_and_labels):
        frame, labels = frame_and_labels
        out = apply_mask(frame, labels, np.array([1.0, 0.0, 1.0]))
        assert np.all(out[labels == 1] == 0.5)
        assert np.array_equal(out[labels == 0], frame[labels == 0])

    def test_apply_mask_wrong_length_raises(self, frame_and_labels):
        frame, labels = frame_and_labels
        with pytest.raises(ExplainerError):
            apply_mask(frame, labels, np.ones(5))


class TestMosaic:
    def test_mosaic_pixelates_region(self):
        rng = make_rng(3, "mosaic")
        frame = rng.random((96, 96))
        region = REGIONS["lips"]
        out = mosaic_region(frame, region, block_size=6)
        mask = region.mask(96)
        # Inside: variance collapses within blocks.
        assert out[mask].std() < frame[mask].std()
        # Outside: untouched.
        assert np.array_equal(out[~mask], frame[~mask])

    def test_bad_block_size_raises(self):
        with pytest.raises(ExplainerError):
            mosaic_region(np.zeros((96, 96)), REGIONS["lips"], block_size=0)
