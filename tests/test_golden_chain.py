"""Golden regression fixtures for seeded chain outputs.

A small fixed video set runs through every inference protocol of
:class:`StressChainPipeline` with an untrained (seed-deterministic)
foundation model; the resulting labels, probabilities, description and
rationale cue ids, and dialogue transcripts are pinned in
``tests/golden/chain_golden.json``.  Any numerical or behavioural
drift in the chain -- a refactor that changes an op order, a sampling
change, a session-recording change -- fails here with a field-level
diff.

Regenerating after an *intentional* change::

    PYTHONPATH=src python -m pytest tests/test_golden_chain.py --update-golden

then review the fixture diff like any other code change.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.cot.chain import StressChainPipeline
from repro.datasets.base import Sample
from repro.model.foundation import FoundationModel
from repro.retrieval.retriever import RandomRetriever
from repro.rng import make_rng
from repro.video.frame import Video, VideoSpec

GOLDEN_PATH = Path(__file__).parent / "golden" / "chain_golden.json"


def _golden_videos() -> list[Video]:
    """Four fixed clips spanning calm, ramping, saturated, and noisy
    expressive regimes.  Everything is derived from hard-coded seeds."""
    videos = []
    for index, (name, scale) in enumerate([
        ("calm", 0.15), ("ramp", 0.6), ("intense", 0.95), ("noisy", 0.5),
    ]):
        rng = np.random.default_rng(900 + index)
        curves = np.zeros((12, 12))
        curves[:, index % 12] = np.linspace(0.05, scale, 12)
        curves[:, (index + 3) % 12] = scale * 0.7
        if name == "noisy":
            curves = np.clip(curves + rng.random((12, 12)) * 0.3, 0, 1)
        videos.append(Video(VideoSpec(
            video_id=f"golden-{name}", subject_id=f"golden-subj-{index}",
            au_intensities=curves, identity=rng.standard_normal(8),
            noise_scale=0.02, seed=7_000 + index,
        )))
    return videos


def _pool() -> list[Sample]:
    rng = np.random.default_rng(77)
    samples = []
    for index in range(4):
        curves = np.clip(rng.random((12, 12)) * (0.3 + 0.2 * index), 0, 1)
        video = Video(VideoSpec(
            video_id=f"golden-pool-{index}",
            subject_id=f"golden-pool-subj-{index}",
            au_intensities=curves, identity=rng.standard_normal(8),
            seed=7_100 + index,
        ))
        samples.append(Sample(video=video, label=index % 2,
                              true_aus=np.zeros(12)))
    return samples


def _pipelines(model: FoundationModel, pool: list[Sample]):
    pool_videos = [sample.video for sample in pool]
    return {
        "chain": StressChainPipeline(model),
        "no_chain": StressChainPipeline(model, use_chain=False),
        "retriever": StressChainPipeline(
            model,
            retriever=RandomRetriever(model, pool, num_examples=2, seed=5),
        ),
        "refine": StressChainPipeline(
            model, test_time_refine=True, verification_pool=pool_videos,
            refine_rounds=2, num_verify_trials=2, seed=11,
        ),
    }


def compute_golden_cases() -> list[dict]:
    """Deterministically regenerate every golden case."""
    model = FoundationModel(make_rng(123, "golden-model"))
    cases = []
    for variant, pipeline in _pipelines(model, _pool()).items():
        for video in _golden_videos():
            result = pipeline.predict(video)
            transcript = result.session.transcript()
            cases.append({
                "case": f"{variant}/{video.video_id}",
                "variant": variant,
                "video_id": video.video_id,
                "label": result.label,
                "prob_stressed": result.prob_stressed,
                "description_aus": (list(result.description.au_ids)
                                    if result.description is not None
                                    else None),
                "rationale_aus": list(result.rationale),
                "num_turns": len(result.session),
                "transcript_sha1": hashlib.sha1(
                    transcript.encode()).hexdigest(),
            })
    return cases


def test_chain_outputs_match_golden(update_golden):
    cases = compute_golden_cases()
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(cases, indent=2) + "\n")
        pytest.skip(f"golden fixtures regenerated at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        "golden fixture missing; regenerate with "
        "`python -m pytest tests/test_golden_chain.py --update-golden`"
    )
    recorded = json.loads(GOLDEN_PATH.read_text())
    assert [c["case"] for c in recorded] == [c["case"] for c in cases], (
        "golden case set changed; regenerate with --update-golden and "
        "review the diff"
    )
    for want, got in zip(recorded, cases):
        for field in ("label", "description_aus", "rationale_aus",
                      "num_turns", "transcript_sha1"):
            assert got[field] == want[field], (
                f"{want['case']}: {field} drifted "
                f"({want[field]!r} -> {got[field]!r})"
            )
        # JSON round-trips float64 exactly, so equality is exact.
        assert got["prob_stressed"] == want["prob_stressed"], (
            f"{want['case']}: prob_stressed drifted "
            f"({want['prob_stressed']!r} -> {got['prob_stressed']!r})"
        )


def test_golden_covers_every_variant():
    recorded = json.loads(GOLDEN_PATH.read_text())
    assert {case["variant"] for case in recorded} == {
        "chain", "no_chain", "retriever", "refine",
    }
    assert len(recorded) == 16


def test_served_results_match_golden():
    """The serving layer reproduces the pinned fixtures exactly --
    golden drift detection covers the batched path too."""
    from repro.serving import ServiceConfig, StressService

    recorded = {case["case"]: case for case in
                json.loads(GOLDEN_PATH.read_text())}
    model = FoundationModel(make_rng(123, "golden-model"))
    videos = _golden_videos()
    for variant, pipeline in _pipelines(model, _pool()).items():
        with StressService(pipeline, ServiceConfig(max_wait_ms=0.5)) as service:
            for video in videos:
                result = service.predict(video, timeout=30)
                want = recorded[f"{variant}/{video.video_id}"]
                assert result.label == want["label"]
                assert result.prob_stressed == want["prob_stressed"]
                assert list(result.rationale) == want["rationale_aus"]
                transcript = result.session.transcript()
                assert hashlib.sha1(
                    transcript.encode()).hexdigest() == want["transcript_sha1"]
