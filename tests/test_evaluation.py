"""Tests for cross-validation and per-method protocols."""

import numpy as np
import pytest

from repro.datasets.base import kfold_splits
from repro.evaluation import cross_validate, evaluate_baseline
from repro.metrics.classification import ClassificationMetrics


class TestCrossValidate:
    def test_majority_fit(self, micro_uvsd):
        """A majority-class predictor scores exactly the majority rate."""

        def fit(train, fold_index):
            majority = int(train.labels.mean() > 0.5)
            return lambda sample: majority

        mean, per_fold = cross_validate(fit, micro_uvsd, num_folds=4)
        assert isinstance(mean, ClassificationMetrics)
        assert len(per_fold) == 4
        assert 0.4 <= mean.accuracy <= 0.75

    def test_oracle_fit_is_perfect(self, micro_uvsd):
        def fit(train, fold_index):
            return lambda sample: sample.label

        mean, __ = cross_validate(fit, micro_uvsd, num_folds=4)
        assert mean.accuracy == 1.0

    def test_fold_support_covers_dataset(self, micro_uvsd):
        def fit(train, fold_index):
            return lambda sample: 0

        __, per_fold = cross_validate(fit, micro_uvsd, num_folds=4)
        assert sum(m.support for m in per_fold) == len(micro_uvsd)

    def test_fit_receives_training_split_only(self, micro_uvsd):
        seen_sizes = []

        def fit(train, fold_index):
            seen_sizes.append(len(train))
            return lambda sample: 0

        cross_validate(fit, micro_uvsd, num_folds=4)
        for size, (train_idx, __) in zip(
            seen_sizes, kfold_splits(micro_uvsd, 4, 0)
        ):
            assert size == len(train_idx)


class TestProtocols:
    def test_evaluate_baseline_runs(self, micro_uvsd):
        metrics = evaluate_baseline("fdassnn", micro_uvsd, num_folds=3)
        assert metrics.accuracy > 0.5

    def test_evaluate_baseline_deterministic(self, micro_uvsd):
        a = evaluate_baseline("tsdnet", micro_uvsd, num_folds=3, seed=2)
        b = evaluate_baseline("tsdnet", micro_uvsd, num_folds=3, seed=2)
        assert a.accuracy == pytest.approx(b.accuracy)
