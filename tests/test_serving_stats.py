"""ServiceStats: the quantile rule, failed-latency separation, the
queue-wait/execute split, concurrency, and metrics-registry folding."""

from __future__ import annotations

import threading

import pytest

from repro.observability.metrics import MetricsRegistry, nearest_rank_quantile
from repro.serving.stats import ServiceStats, _quantile


class TestNearestRankQuantile:
    def test_empty_sample_is_zero(self):
        assert _quantile([], 0.5) == 0.0

    def test_single_sample_any_quantile(self):
        for q in (0.0, 0.5, 0.95, 1.0):
            assert _quantile([3.5], q) == 3.5

    def test_even_window_median_picks_upper(self):
        # The banker's-rounding bug: round(0.5) == 0 picked the lower
        # sample; the ceil rule resolves the .5 boundary upward.
        assert _quantile([1.0, 2.0], 0.5) == 2.0
        assert _quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 3.0

    def test_odd_window_median_is_exact(self):
        assert _quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_extremes(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert _quantile(sample, 0.0) == 1.0
        assert _quantile(sample, 1.0) == 5.0

    def test_p95_never_understates(self):
        # 20 samples: rank ceil(0.95 * 19) = 19 -> the maximum.
        sample = [float(i) for i in range(20)]
        assert _quantile(sample, 0.95) == 19.0

    def test_module_quantiles_agree(self):
        sample = [0.5, 1.5, 2.5, 3.5]
        for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
            assert _quantile(sample, q) == nearest_rank_quantile(sample, q)


class TestFailedLatencySeparation:
    def test_failures_do_not_skew_success_quantiles(self):
        stats = ServiceStats(registry=MetricsRegistry())
        for _ in range(100):
            stats.record_completion(0.001, failed=False)
        for _ in range(50):
            stats.record_completion(10.0, failed=True)  # slow timeouts
        snap = stats.snapshot()
        assert snap.completed == 100
        assert snap.failed == 50
        assert snap.latency_p95_s == pytest.approx(0.001)
        assert snap.failed_latency_p50_s == pytest.approx(10.0)
        assert snap.failed_latency_p95_s == pytest.approx(10.0)

    def test_fast_rejects_do_not_drag_quantiles_down(self):
        stats = ServiceStats(registry=MetricsRegistry())
        for _ in range(100):
            stats.record_completion(1.0, failed=False)
        for _ in range(100):
            stats.record_completion(0.00001, failed=True)  # fast rejects
        snap = stats.snapshot()
        assert snap.latency_p50_s == pytest.approx(1.0)
        assert snap.failed_latency_p95_s == pytest.approx(0.00001)

    def test_no_failures_reports_zero(self):
        stats = ServiceStats(registry=MetricsRegistry())
        stats.record_completion(0.5, failed=False)
        snap = stats.snapshot()
        assert snap.failed_latency_p50_s == 0.0
        assert snap.failed_latency_p95_s == 0.0


class TestBatchSplit:
    def test_queue_wait_and_execute_quantiles(self):
        stats = ServiceStats(registry=MetricsRegistry())
        stats.record_batch_split([0.010, 0.020, 0.030], execute_s=0.200)
        stats.record_batch_split([0.040], execute_s=0.100)
        snap = stats.snapshot()
        assert snap.queue_wait_p50_s == pytest.approx(0.030)
        assert snap.queue_wait_p95_s == pytest.approx(0.040)
        assert snap.execute_p50_s == pytest.approx(0.200)
        assert snap.execute_p95_s == pytest.approx(0.200)


class TestRegistryFolding:
    def test_counters_fold_into_registry(self):
        registry = MetricsRegistry()
        stats = ServiceStats(registry=registry)
        for _ in range(3):
            stats.record_submitted()
        stats.record_rejected()
        stats.record_batch(size=4, unique=3)
        stats.record_completion(0.5, failed=False)
        stats.record_completion(0.7, failed=True)
        snap = registry.snapshot()
        assert snap.counters["serving.requests"] == 3
        assert snap.counters["serving.rejected"] == 1
        assert snap.counters["serving.batches"] == 1
        assert snap.counters["serving.deduplicated"] == 1
        assert snap.counters["serving.completed"] == 1
        assert snap.counters["serving.failed"] == 1
        assert snap.histograms["serving.latency_s"].count == 1
        assert snap.histograms["serving.failed_latency_s"].count == 1
        assert snap.histograms["serving.batch_size"].p50 == 4.0

    def test_two_services_share_one_registry_surface(self):
        registry = MetricsRegistry()
        a = ServiceStats(registry=registry)
        b = ServiceStats(registry=registry)
        a.record_submitted()
        b.record_submitted()
        assert registry.snapshot().counters["serving.requests"] == 2


class TestConcurrentRecorders:
    def test_hammered_stats_stay_consistent(self):
        """Threads hammer every record_* path while snapshots run; the
        final snapshot must account for every recorded event."""
        registry = MetricsRegistry()
        stats = ServiceStats(registry=registry)
        per_thread, num_threads = 200, 8
        start = threading.Barrier(num_threads + 1)
        snapshots: list = []

        def hammer(thread_index: int) -> None:
            start.wait()
            for i in range(per_thread):
                stats.record_submitted()
                stats.record_batch(size=2, unique=1)
                stats.record_batch_split([0.001, 0.002], execute_s=0.003)
                stats.record_completion(0.001 * (i % 7),
                                        failed=(i % 5 == 0))

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(num_threads)]
        for thread in threads:
            thread.start()
        start.wait()
        for _ in range(50):
            snapshots.append(stats.snapshot())  # must never raise
        for thread in threads:
            thread.join()

        total = per_thread * num_threads
        snap = stats.snapshot()
        assert snap.requests == total
        assert snap.completed + snap.failed == total
        assert snap.batches == total
        assert snap.deduplicated == total
        # Mid-flight snapshots are internally consistent views.
        for mid in snapshots:
            assert mid.completed + mid.failed <= mid.requests
            assert mid.latency_p95_s >= mid.latency_p50_s >= 0.0
        folded = registry.snapshot()
        assert folded.counters["serving.requests"] == total
        assert folded.counters["serving.completed"] == snap.completed
        assert folded.counters["serving.failed"] == snap.failed
