"""Batched-vs-loop equivalence of the prediction engine.

The batched engine must be a pure performance change: every explainer,
the deletion metric, and the model's frame-level hooks have to produce
the same numbers whether perturbations go through the vectorized
``batch`` path or the seed's one-frame-at-a-time loop.
"""

import numpy as np
import pytest

from repro.cot.chain import StressChainPipeline
from repro.explainers import (
    BatchPredictFn,
    KernelShapExplainer,
    LimeExplainer,
    OcclusionExplainer,
    RiseExplainer,
    SobolExplainer,
    chain_predict_fn,
    deletion_metric,
    explainer_ranker,
    predict_batch,
)
from repro.errors import ExplainerError


@pytest.fixture(scope="module")
def frame_stack(sample_video):
    """The clean expressive keyframe plus a few noisy variants."""
    expressive, neutral = sample_video.keyframes
    rng = np.random.default_rng(11)
    frames = np.stack([
        expressive,
        np.clip(expressive + rng.normal(0, 0.1, expressive.shape), 0, 1),
        np.clip(expressive + rng.normal(0, 0.3, expressive.shape), 0, 1),
        neutral,
    ])
    return frames, neutral


# `sample_video` is function-scoped in conftest; re-scope a copy for
# the module so the rendered keyframes are shared across these tests.
@pytest.fixture(scope="module")
def sample_video():
    from repro.video.frame import Video, VideoSpec

    rng = np.random.default_rng(5)
    curves = np.zeros((12, 12))
    curves[:, 2] = np.linspace(0.1, 0.9, 12)
    curves[:, 4] = 0.7
    return Video(VideoSpec(
        video_id="batched-video-0", subject_id="batched-subj-0",
        au_intensities=curves, identity=rng.standard_normal(8), seed=42,
    ))


@pytest.fixture(scope="module")
def model():
    from repro.model.foundation import FoundationModel
    from repro.rng import make_rng

    return FoundationModel(make_rng(123, "batched-test-model"))


class TestFoundationBatchPaths:
    def test_au_logits_match_loop(self, model, frame_stack):
        frames, neutral = frame_stack
        batched = model.au_logits_from_frames_batch(frames, neutral)
        looped = np.stack([
            model.au_logits_from_frames(frame, neutral) for frame in frames
        ])
        np.testing.assert_allclose(batched, looped, rtol=0, atol=1e-12)

    def test_chain_prob_matches_loop(self, model, frame_stack):
        frames, neutral = frame_stack
        batched = model.chain_prob_from_frames_batch(frames, neutral)
        looped = np.array([
            model.chain_prob_from_frames(frame, neutral) for frame in frames
        ])
        np.testing.assert_allclose(batched, looped, rtol=0, atol=1e-12)

    def test_assess_logit_matches_loop(self, model, frame_stack):
        from repro.facs.descriptions import FacialDescription

        frames, neutral = frame_stack
        descriptions = [
            FacialDescription.from_vector(
                (model.au_logits_from_frames(frame, neutral) > 0).astype(float)
            )
            for frame in frames
        ]
        descriptions[-1] = None  # direct query rides in the same batch
        batched = model.assess_logit_from_frames_batch(
            frames, neutral, descriptions
        )
        looped = np.array([
            model.assess_logit_from_frames(frame, neutral, desc)
            for frame, desc in zip(frames, descriptions)
        ])
        np.testing.assert_allclose(batched, looped, rtol=0, atol=1e-12)


class TestPredictBatchAdapter:
    def test_plain_callable_falls_back_to_loop(self, frame_stack):
        frames, __ = frame_stack
        calls = []

        def single(frame):
            calls.append(frame.shape)
            return float(frame.mean())

        out = predict_batch(single, frames)
        assert len(calls) == len(frames)
        np.testing.assert_array_equal(out,
                                      [float(f.mean()) for f in frames])

    def test_batch_path_used_when_available(self, frame_stack):
        frames, __ = frame_stack
        single_calls = []
        fn = BatchPredictFn(
            single=lambda f: single_calls.append(1) or 0.0,
            batch=lambda fs: fs.mean(axis=(1, 2)),
        )
        out = predict_batch(fn, frames)
        assert not single_calls
        np.testing.assert_allclose(out, frames.mean(axis=(1, 2)))

    def test_bad_batch_shape_rejected(self, frame_stack):
        frames, __ = frame_stack
        fn = BatchPredictFn(single=lambda f: 0.0,
                            batch=lambda fs: np.zeros(len(fs) + 1))
        with pytest.raises(ExplainerError):
            predict_batch(fn, frames)

    def test_non_stack_input_rejected(self):
        with pytest.raises(ExplainerError):
            predict_batch(lambda f: 0.0, np.zeros((4, 4)))


class TestPerturbBatchHelpers:
    def test_apply_masks_batch_matches_loop(self):
        from repro.video.perturb import apply_mask, apply_masks_batch

        rng = np.random.default_rng(0)
        frame = rng.random((24, 24))
        labels = (np.arange(24 * 24).reshape(24, 24) // 36) % 9
        keeps = (rng.random((20, 9)) < 0.5).astype(np.float64)
        batched = apply_masks_batch(frame, labels, keeps)
        looped = np.stack([
            apply_mask(frame, labels, keep) for keep in keeps
        ])
        np.testing.assert_array_equal(batched, looped)

    def test_zero_segments_batch_matches_loop(self):
        from repro.video.perturb import zero_segments, zero_segments_batch

        rng = np.random.default_rng(1)
        frame = rng.random((24, 24))
        labels = (np.arange(24 * 24).reshape(24, 24) // 48) % 7
        batched = zero_segments_batch(frame, labels)
        looped = np.stack([
            zero_segments(frame, labels, [segment]) for segment in range(7)
        ])
        np.testing.assert_array_equal(batched, looped)


ALL_EXPLAINERS = [
    LimeExplainer(num_samples=60),
    KernelShapExplainer(num_samples=60),
    RiseExplainer(num_samples=60),
    SobolExplainer(num_designs=4),
    OcclusionExplainer(),
]


class TestExplainerBatchedEquivalence:
    """Every explainer must attribute identically through the batched
    chain black box and through the seed's per-frame loop, at a fixed
    perturbation seed."""

    @pytest.mark.parametrize(
        "explainer", ALL_EXPLAINERS,
        ids=[e.name for e in ALL_EXPLAINERS],
    )
    def test_batched_equals_per_frame_loop(self, explainer, model,
                                           sample_video):
        expressive, neutral = sample_video.keyframes
        labels = sample_video.segmentation(16)
        batched_fn = BatchPredictFn(
            single=lambda f: model.chain_prob_from_frames(f, neutral),
            batch=lambda fs: model.chain_prob_from_frames_batch(fs, neutral),
        )
        loop_fn = lambda f: model.chain_prob_from_frames(f, neutral)  # noqa: E731
        batched = explainer.attribute(expressive, labels, batched_fn, seed=9)
        looped = explainer.attribute(expressive, labels, loop_fn, seed=9)
        assert batched.num_evaluations == looped.num_evaluations
        np.testing.assert_allclose(batched.scores, looped.scores,
                                   rtol=0, atol=1e-9)


class TestDeletionMetricBatched:
    def test_batched_matches_loop(self, model, sample_video):
        from repro.datasets.base import Sample

        pipeline = StressChainPipeline(model)
        sample = Sample(video=sample_video, label=1,
                        true_aus=np.zeros(12))
        __, neutral = sample_video.keyframes
        kwargs = dict(
            ranker=explainer_ranker(OcclusionExplainer()),
            ks=(1, 2, 3), num_segments=16, seed=3,
        )
        batched = deletion_metric(
            [sample], predict_fn_factory=lambda s: chain_predict_fn(pipeline, s),
            **kwargs,
        )
        looped = deletion_metric(
            [sample],
            predict_fn_factory=lambda s: (
                lambda f: model.chain_prob_from_frames(f, neutral)
            ),
            **kwargs,
        )
        assert batched.base_accuracy == looped.base_accuracy
        assert batched.accuracy_after == looped.accuracy_after

    def test_ranker_reuses_base_prediction(self, model, sample_video):
        """The sign-normalisation query on the clean frame is gone:
        total single-frame calls stay at the attribution budget plus
        one base query plus one perturbed query per k."""
        from repro.datasets.base import Sample

        sample = Sample(video=sample_video, label=1, true_aus=np.zeros(12))
        __, neutral = sample_video.keyframes
        num_segments = int(sample_video.segmentation(16).max()) + 1
        calls = []

        def factory(s):
            def predict(frame):
                calls.append(1)
                return model.chain_prob_from_frames(frame, neutral)
            return predict

        deletion_metric(
            [sample], explainer_ranker(OcclusionExplainer()), factory,
            ks=(1, 2, 3), num_segments=16, seed=3,
        )
        # base + (occlusion: clean frame + one per segment) + 3 top-k.
        assert len(calls) == 1 + (num_segments + 1) + 3
