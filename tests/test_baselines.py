"""Tests for the eight supervised baselines."""

import numpy as np
import pytest

from repro.baselines import baseline_zoo, make_baseline
from repro.baselines.base import SupervisedBaseline
from repro.errors import ModelError


@pytest.fixture(scope="module")
def small_split(micro_uvsd):
    from repro.datasets import train_test_split

    return train_test_split(micro_uvsd, test_fraction=0.3, seed=1)


class TestZoo:
    def test_eight_baselines(self):
        assert len(baseline_zoo()) == 8

    def test_unknown_key_raises(self):
        with pytest.raises(ModelError):
            make_baseline("alexnet")

    def test_fresh_instances(self):
        assert make_baseline("tsdnet") is not make_baseline("tsdnet")


@pytest.mark.parametrize("key", list(baseline_zoo()))
class TestEachBaseline:
    def test_fit_predict_beats_chance(self, key, small_split):
        train, test = small_split
        baseline = make_baseline(key)
        baseline.fit(train, seed=0)
        predictions = np.array([baseline.predict(s.video) for s in test])
        labels = test.labels
        accuracy = (predictions == labels).mean()
        assert accuracy > 0.55, f"{key} at {accuracy:.2f} is chance-level"

    def test_predict_proba_in_range(self, key, small_split):
        train, test = small_split
        baseline = make_baseline(key)
        baseline.fit(train, seed=0)
        prob = baseline.predict_proba(test[0].video)
        assert 0.0 <= prob <= 1.0

    def test_predict_before_fit_raises(self, key, small_split):
        __, test = small_split
        baseline = make_baseline(key)
        with pytest.raises(ModelError):
            baseline.predict(test[0].video)

    def test_fit_is_deterministic(self, key, small_split):
        train, test = small_split
        a, b = make_baseline(key), make_baseline(key)
        a.fit(train, seed=3)
        b.fit(train, seed=3)
        video = test[0].video
        assert a.predict_proba(video) == pytest.approx(b.predict_proba(video))


class TestInterface:
    def test_all_are_supervised_baselines(self):
        for key in baseline_zoo():
            assert isinstance(make_baseline(key), SupervisedBaseline)

    def test_names_are_distinct(self):
        names = [make_baseline(key).name for key in baseline_zoo()]
        assert len(set(names)) == len(names)
