"""Tests for the experiment registry and shared infrastructure.

Full experiment runs live in ``benchmarks/``; here we verify the
registry wiring, the scale presets, caching, and one end-to-end
micro-scale experiment.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentOptions, experiment_ids, run_experiment
from repro.experiments.common import (
    SCALES,
    Scale,
    clear_caches,
    eval_subset,
    load_dataset,
    load_instruction_pairs,
    trained_model,
)
from repro.experiments.result import ExperimentResult


@pytest.fixture()
def tiny_options():
    scale = Scale(
        name="tiny", uvsd_samples=120, uvsd_subjects=12,
        rsl_samples=100, rsl_subjects=10, disfa_samples=80,
        num_folds=3, refine_sample_limit=20, eval_samples=8,
        explainer_budget=60, sobol_designs=2,
    )
    clear_caches()
    yield ExperimentOptions(scale=scale, seed=1)
    clear_caches()


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "table8", "fig6", "fig7", "fig8",
        }
        assert set(experiment_ids()) == expected

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("table99")

    def test_scales_defined(self):
        assert set(SCALES) == {"quick", "standard", "full"}
        full = SCALES["full"]
        assert full.uvsd_samples == 2092
        assert full.rsl_samples == 706
        assert full.num_folds == 10
        assert full.explainer_budget == 1000

    def test_options_at_unknown_scale_raises(self):
        with pytest.raises(ExperimentError):
            ExperimentOptions.at("gigantic")


class TestCommon:
    def test_dataset_cached(self, tiny_options):
        assert load_dataset("uvsd", tiny_options) is \
            load_dataset("uvsd", tiny_options)

    def test_unknown_dataset_raises(self, tiny_options):
        with pytest.raises(ExperimentError):
            load_dataset("wesad", tiny_options)

    def test_instruction_pairs_scaled(self, tiny_options):
        pairs = load_instruction_pairs(tiny_options)
        assert len(pairs) == 80

    def test_trained_model_cached(self, tiny_options):
        a = trained_model("uvsd", tiny_options)
        b = trained_model("uvsd", tiny_options)
        assert a[0] is b[0]

    def test_eval_subset_balanced(self, tiny_options):
        dataset = load_dataset("uvsd", tiny_options)
        subset = eval_subset(dataset, 10)
        labels = [s.label for s in subset]
        assert len(subset) == 10
        assert 0 < sum(labels) < 10

    def test_eval_subset_full_dataset(self, tiny_options):
        dataset = load_dataset("uvsd", tiny_options)
        subset = eval_subset(dataset, 10_000)
        assert len(subset) == len(dataset)


class TestMicroExperiment:
    def test_fig6_end_to_end(self, tiny_options):
        result = run_experiment("fig6", tiny_options)
        assert isinstance(result, ExperimentResult)
        assert "Ours" in result.text
        assert result.data.seconds_per_sample["Ours"] < \
            result.data.seconds_per_sample["LIME"]

    def test_fig7_end_to_end(self, tiny_options):
        result = run_experiment("fig7", tiny_options)
        assert "similarity" in result.text
        assert "vision_gap" in result.data
