"""Tests for the synthetic face renderer."""

import numpy as np
import pytest

from repro.facs.action_units import AU_IDS
from repro.facs.regions import region_for_au
from repro.video.face_synth import FaceRenderer, default_renderer
from repro.video.frame import IDENTITY_DIM, Video, VideoSpec


def _spec(au_intensities, **overrides):
    defaults = dict(
        video_id="v0", subject_id="s0",
        au_intensities=au_intensities,
        identity=np.zeros(IDENTITY_DIM),
        noise_scale=0.0, seed=1,
    )
    defaults.update(overrides)
    return VideoSpec(**defaults)


class TestRenderer:
    def test_shared_renderer_is_cached(self):
        assert default_renderer() is default_renderer()

    def test_small_frame_size_rejected(self):
        with pytest.raises(ValueError):
            FaceRenderer(frame_size=8)

    def test_output_range(self):
        frame = default_renderer().render(_spec(np.zeros((4, 12))), 0)
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_au_evidence_is_localised(self):
        """Activating one AU changes pixels only inside its region."""
        renderer = default_renderer()
        for au_index_, au_id in enumerate(AU_IDS):
            neutral = renderer.render(_spec(np.zeros((1, 12))), 0)
            active_curves = np.zeros((1, 12))
            active_curves[0, au_index_] = 1.0
            active = renderer.render(_spec(active_curves), 0)
            diff = np.abs(active - neutral)
            outside = diff * ~region_for_au(au_id).mask(96)
            assert outside.max() < 1e-9, f"AU{au_id} leaked outside region"
            assert diff.max() > 0.05, f"AU{au_id} has no visible effect"

    def test_au_pattern_is_readonly(self):
        pattern = default_renderer().au_pattern(4)
        with pytest.raises(ValueError):
            pattern[0, 0] = 1.0

    def test_identity_changes_appearance(self):
        renderer = default_renderer()
        a = renderer.render(_spec(np.zeros((1, 12))), 0)
        b = renderer.render(
            _spec(np.zeros((1, 12)), identity=np.ones(IDENTITY_DIM)), 0
        )
        assert not np.array_equal(a, b)

    def test_lighting_gradient(self):
        renderer = default_renderer()
        lit = renderer.render(_spec(np.zeros((1, 12)), lighting=0.3), 0)
        flat = renderer.render(_spec(np.zeros((1, 12))), 0)
        delta = lit - flat
        assert delta[:, -1].mean() > delta[:, 0].mean()

    def test_noise_is_seeded(self):
        spec = _spec(np.zeros((2, 12)), noise_scale=0.05)
        renderer = default_renderer()
        assert np.array_equal(renderer.render(spec, 0), renderer.render(spec, 0))
        assert not np.array_equal(renderer.render(spec, 0),
                                  renderer.render(spec, 1))

    def test_occlusion_occurs_at_high_rate(self):
        clean = _spec(np.zeros((1, 12)))
        occluded = _spec(np.zeros((1, 12)), occlusion_rate=1.0)
        renderer = default_renderer()
        diff = np.abs(renderer.render(occluded, 0) - renderer.render(clean, 0))
        assert (diff > 0.01).sum() > 20
