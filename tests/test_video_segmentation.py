"""Tests for SLIC segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExplainerError
from repro.video.segmentation import segment_masks, slic_segments


def _gradient_image(size=48):
    rows, cols = np.mgrid[0:size, 0:size]
    return (rows + cols) / (2.0 * (size - 1))


class TestSlic:
    def test_label_map_shape(self):
        labels = slic_segments(_gradient_image(), num_segments=16)
        assert labels.shape == (48, 48)

    def test_labels_contiguous_from_zero(self):
        labels = slic_segments(_gradient_image(), num_segments=16)
        unique = np.unique(labels)
        assert unique[0] == 0
        assert np.array_equal(unique, np.arange(unique.size))

    def test_segment_count_near_target(self):
        labels = slic_segments(_gradient_image(64), num_segments=64)
        count = labels.max() + 1
        assert 48 <= count <= 80

    def test_segments_are_connected(self):
        labels = slic_segments(_gradient_image(), num_segments=9)
        for mask in segment_masks(labels):
            assert _is_connected(mask)

    def test_rejects_bad_input(self):
        with pytest.raises(ExplainerError):
            slic_segments(np.zeros((4, 4, 3)))
        with pytest.raises(ExplainerError):
            slic_segments(_gradient_image(), num_segments=0)
        with pytest.raises(ExplainerError):
            slic_segments(np.zeros((4, 4)), num_segments=100)

    def test_deterministic(self):
        a = slic_segments(_gradient_image(), num_segments=16)
        b = slic_segments(_gradient_image(), num_segments=16)
        assert np.array_equal(a, b)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=4, max_value=30))
    def test_every_pixel_labelled(self, num_segments):
        labels = slic_segments(_gradient_image(), num_segments=num_segments)
        assert labels.min() >= 0


def _is_connected(mask: np.ndarray) -> bool:
    rows, cols = np.where(mask)
    if rows.size == 0:
        return True
    seen = np.zeros_like(mask, dtype=bool)
    stack = [(rows[0], cols[0])]
    seen[rows[0], cols[0]] = True
    count = 1
    while stack:
        r, c = stack.pop()
        for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
            if (0 <= nr < mask.shape[0] and 0 <= nc < mask.shape[1]
                    and mask[nr, nc] and not seen[nr, nc]):
                seen[nr, nc] = True
                count += 1
                stack.append((nr, nc))
    return count == rows.size
