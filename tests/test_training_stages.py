"""Tests for the individual Algorithm-1 stages."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.facs.descriptions import FacialDescription
from repro.model.foundation import FoundationModel
from repro.model.generation import GenerationConfig
from repro.rng import make_rng
from repro.training.faithfulness import rationale_flip_count
from repro.training.helpfulness import helpfulness_score
from repro.training.instruction_tuning import train_assess, train_describe
from repro.training.reflection import propose_description, propose_rationales
from repro.training.verification import verification_score


class TestInstructionTuning:
    def test_describe_loss_decreases(self, instruction_pairs):
        model = FoundationModel(make_rng(1, "it"))
        curve = train_describe(model, instruction_pairs[:60], epochs=60)
        assert curve[-1] < curve[0] * 0.7

    def test_describe_learns_aus(self, instruction_pairs):
        model = FoundationModel(make_rng(2, "it2"))
        train_describe(model, instruction_pairs[:100], epochs=120)
        hits, total = 0, 0
        for pair in instruction_pairs[100:110]:
            predicted = model.describe(pair.video,
                                       GenerationConfig(temperature=0))
            hits += 12 - predicted.hamming_distance(pair.description)
            total += 12
        assert hits / total > 0.8

    def test_describe_empty_raises(self):
        model = FoundationModel(make_rng(3, "it3"))
        with pytest.raises(TrainingError):
            train_describe(model, [])

    def test_assess_loss_decreases(self, micro_uvsd):
        model = FoundationModel(make_rng(4, "it4"))
        samples = list(micro_uvsd)[:60]
        videos = [s.video for s in samples]
        descriptions = [s.true_description() for s in samples]
        labels = np.array([s.label for s in samples], dtype=float)
        curve = train_assess(model, videos, descriptions, labels, epochs=80)
        assert curve[-1] < curve[0]

    def test_assess_handles_none_descriptions(self, micro_uvsd):
        model = FoundationModel(make_rng(5, "it5"))
        samples = list(micro_uvsd)[:40]
        curve = train_assess(
            model, [s.video for s in samples],
            [None] * len(samples),
            np.array([s.label for s in samples], dtype=float),
            epochs=40,
        )
        assert np.isfinite(curve).all()

    def test_assess_misaligned_raises(self, micro_uvsd):
        model = FoundationModel(make_rng(6, "it6"))
        with pytest.raises(TrainingError):
            train_assess(model, [micro_uvsd[0].video], [], np.array([1.0]))


class TestScores:
    def test_helpfulness_bounds(self, trained):
        model, __, train, __ = trained
        sample = train[0]
        description = sample.true_description()
        score = helpfulness_score(model, sample.video, description,
                                  sample.label, num_trials=5)
        assert 0.0 <= score <= 1.0

    def test_helpfulness_deterministic(self, trained):
        model, __, train, __ = trained
        sample = train[0]
        description = sample.true_description()
        a = helpfulness_score(model, sample.video, description,
                              sample.label, num_trials=4, seed=9)
        b = helpfulness_score(model, sample.video, description,
                              sample.label, num_trials=4, seed=9)
        assert a == b

    def test_helpfulness_bad_trials_raises(self, trained):
        model, __, train, __ = trained
        with pytest.raises(ValueError):
            helpfulness_score(model, train[0].video,
                              FacialDescription((1,)), 1, num_trials=0)

    def test_verification_true_description_beats_garbage(self, trained):
        """The oracle description of a video should verify better than
        a description of unrelated actions, on average."""
        model, __, train, __ = trained
        pool = [s.video for s in train]
        true_scores, garbage_scores = [], []
        for sample in list(train)[:8]:
            truth = sample.true_description()
            if not truth.au_ids:
                continue
            garbage = FacialDescription(tuple(
                au for au in (1, 2, 4, 5, 6, 9, 12)
                if au not in truth.au_ids
            ))
            true_scores.append(verification_score(
                model, sample.video, truth, pool, num_trials=4
            ))
            garbage_scores.append(verification_score(
                model, sample.video, garbage, pool, num_trials=4
            ))
        assert np.mean(true_scores) > np.mean(garbage_scores)

    def test_verification_needs_pool(self, trained):
        model, __, train, __ = trained
        sample = train[0]
        with pytest.raises(TrainingError):
            verification_score(model, sample.video,
                               sample.true_description(),
                               [sample.video], num_trials=2)


class TestFlipCount:
    def test_bounds(self, trained):
        model, __, train, __ = trained
        sample = train[0]
        description = model.describe(sample.video,
                                     GenerationConfig(temperature=0))
        if description.au_ids:
            rationale = model.highlight(sample.video, description, 1)
            count = rationale_flip_count(model, sample.video, description,
                                         rationale)
            assert 1 <= count <= len(rationale) + 1

    def test_empty_rationale_scores_one(self, trained):
        model, __, train, __ = trained
        sample = train[0]
        assert rationale_flip_count(model, sample.video,
                                    FacialDescription(()), ()) == 1


class TestReflection:
    def test_propose_description_differs_over_rounds(self, trained):
        model, __, train, __ = trained
        sample = train[0]
        previous = model.describe(sample.video,
                                  GenerationConfig(temperature=0))
        candidates = {
            propose_description(model, sample.video, previous, i, seed=0,
                                true_label=sample.label).au_ids
            for i in range(6)
        }
        assert len(candidates) >= 1  # draws are valid descriptions

    def test_propose_rationales_count(self, trained):
        model, __, train, __ = trained
        sample = train[0]
        description = FacialDescription((1, 4, 6, 25))
        rationales = propose_rationales(model, sample.video, description,
                                        1, num_candidates=4, seed=0)
        assert len(rationales) == 4
        for rationale in rationales:
            assert set(rationale) <= set(description.au_ids)

    def test_reflection_uses_label_guidance(self, trained):
        """With ground-truth guidance, reflected descriptions shift
        along the assessment head's AU weights."""
        model, __, train, __ = trained
        sample = train[0]
        previous = model.describe(sample.video,
                                  GenerationConfig(temperature=0))
        guided = [
            propose_description(model, sample.video, previous, i, seed=1,
                                true_label=1, use_reflection=True)
            for i in range(6)
        ]
        unguided = [
            propose_description(model, sample.video, previous, i, seed=1,
                                true_label=None, use_reflection=False)
            for i in range(6)
        ]
        weights = model.assess_au_weights()
        def mean_evidence(descs):
            return np.mean([d.to_vector() @ weights for d in descs])
        assert mean_evidence(guided) >= mean_evidence(unguided) - 0.2
