"""Tests for AU-stress association priors."""

import numpy as np
import pytest

from repro.facs.action_units import au_index
from repro.facs.stress_priors import StressPrior, default_stress_prior


class TestStressPrior:
    def test_probabilities_valid(self):
        prior = default_stress_prior()
        for stressed in (False, True):
            probs = prior.activation_probs(stressed)
            assert np.all(probs > 0) and np.all(probs < 1)

    def test_stress_raises_frown(self):
        prior = default_stress_prior()
        idx = au_index(4)  # brow lowerer
        assert (prior.activation_probs(True)[idx]
                > prior.activation_probs(False)[idx])

    def test_stress_suppresses_smile(self):
        prior = default_stress_prior()
        idx = au_index(12)  # lip corner puller
        assert (prior.activation_probs(True)[idx]
                < prior.activation_probs(False)[idx])

    def test_zero_coupling_removes_signal(self):
        prior = default_stress_prior(coupling=0.0)
        assert np.allclose(prior.activation_probs(True),
                           prior.activation_probs(False))

    def test_coupling_scales_evidence(self):
        weak = default_stress_prior(coupling=0.5).evidence_weights()
        strong = default_stress_prior(coupling=2.0).evidence_weights()
        assert np.abs(strong).sum() > np.abs(weak).sum()

    def test_evidence_sign_matches_direction(self):
        prior = default_stress_prior()
        weights = prior.evidence_weights()
        for au_id in (1, 4, 15, 20):
            assert weights[au_index(au_id)] > 0
            assert prior.stress_direction(au_id) == 1
        for au_id in (6, 12):
            assert weights[au_index(au_id)] < 0
            assert prior.stress_direction(au_id) == -1

    def test_invalid_base_rates_raise(self):
        with pytest.raises(ValueError):
            StressPrior(base_rates=np.zeros(12),
                        stress_log_odds=np.zeros(12))

    def test_negative_coupling_raises(self):
        with pytest.raises(ValueError):
            StressPrior(coupling=-1.0)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            StressPrior(base_rates=np.full(5, 0.5),
                        stress_log_odds=np.zeros(5))
