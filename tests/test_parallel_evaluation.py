"""Parallel evaluation: bitwise determinism and config resolution.

Parallelism must change *when* a fold runs, never *what* it computes:
``cross_validate`` has to return bitwise-identical metrics for every
backend and worker count.  ``ClassificationMetrics`` is a frozen
dataclass of floats, so plain ``==`` is exactly that assertion.
"""

import os

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.evaluation import (
    cross_validate,
    evaluate_baseline,
    parallel_map,
    resolve_backend,
    resolve_num_workers,
)
from repro.evaluation.parallel import BACKEND_ENV, NUM_WORKERS_ENV


def _cheap_fit(train, fold_index):
    """Threshold on mean AU intensity, calibrated on the train labels.

    Touches only the latent AU curves (no frame rendering), so the
    determinism matrix below stays fast while still producing
    non-trivial float metrics.
    """
    intensities = np.array([
        sample.video.spec.au_intensities.mean() for sample in train
    ])
    labels = train.labels
    threshold = 0.5 * (intensities[labels == 1].mean()
                       + intensities[labels == 0].mean())
    return lambda sample: int(
        sample.video.spec.au_intensities.mean() > threshold
    )


class TestBitwiseDeterminism:
    @pytest.fixture(scope="class")
    def serial_result(self, micro_uvsd):
        return cross_validate(_cheap_fit, micro_uvsd, num_folds=5,
                              backend="serial")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_cross_validate_matches_serial(self, micro_uvsd, serial_result,
                                           backend, num_workers):
        mean, per_fold = cross_validate(
            _cheap_fit, micro_uvsd, num_folds=5,
            backend=backend, num_workers=num_workers,
        )
        serial_mean, serial_folds = serial_result
        assert mean == serial_mean
        assert per_fold == serial_folds

    def test_evaluate_baseline_matches_serial(self, micro_uvsd):
        serial = evaluate_baseline("fdassnn", micro_uvsd, num_folds=3,
                                   backend="serial")
        parallel = evaluate_baseline("fdassnn", micro_uvsd, num_folds=3,
                                     backend="process", num_workers=2)
        assert serial == parallel


class TestParallelMap:
    def test_preserves_item_order(self):
        out = parallel_map(lambda x: x * x, range(9),
                           backend="thread", num_workers=3)
        assert out == [x * x for x in range(9)]

    def test_process_backend_forks(self):
        if not hasattr(os, "fork"):
            pytest.skip("no fork on this platform")
        pids = parallel_map(lambda _: os.getpid(), range(4),
                            backend="process", num_workers=2)
        assert all(pid != os.getpid() for pid in pids)

    def test_process_backend_runs_closures(self):
        # The whole point of the fork pool: closures (unpicklable)
        # work as worker functions.
        offset = 10
        out = parallel_map(lambda x: x + offset, range(5),
                           backend="process", num_workers=2)
        assert out == [10, 11, 12, 13, 14]

    def test_empty_items(self):
        assert parallel_map(lambda x: x, [], backend="process") == []

    def test_thread_worker_exception_propagates(self):
        def boom(x):
            raise ValueError(f"bad item {x}")

        with pytest.raises(ValueError, match="bad item"):
            parallel_map(boom, range(4), backend="thread", num_workers=2)

    def test_process_worker_exception_propagates(self):
        if not hasattr(os, "fork"):
            pytest.skip("no fork on this platform")

        def boom(x):
            raise ValueError(f"bad item {x}")

        with pytest.raises(RuntimeError, match="bad item"):
            parallel_map(boom, range(4), backend="process", num_workers=2)


class TestConfigResolution:
    def test_backend_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "serial"

    def test_backend_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert resolve_backend() == "thread"

    def test_explicit_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert resolve_backend("serial") == "serial"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ConfigError):
            resolve_backend("celery")
        monkeypatch.setenv(BACKEND_ENV, "mpi")
        with pytest.raises(ConfigError):
            resolve_backend()

    def test_num_workers_env_var(self, monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "3")
        assert resolve_num_workers() == 3

    def test_explicit_num_workers_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "3")
        assert resolve_num_workers(2) == 2

    def test_num_workers_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(NUM_WORKERS_ENV, raising=False)
        assert resolve_num_workers() == (os.cpu_count() or 1)

    def test_bad_num_workers_rejected(self, monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "lots")
        with pytest.raises(ConfigError):
            resolve_num_workers()
        monkeypatch.delenv(NUM_WORKERS_ENV)
        with pytest.raises(ConfigError):
            resolve_num_workers(0)

    def test_env_workers_reach_cross_validate(self, micro_uvsd,
                                              monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "2")
        monkeypatch.setenv(BACKEND_ENV, "thread")
        mean, per_fold = cross_validate(_cheap_fit, micro_uvsd, num_folds=4)
        monkeypatch.delenv(NUM_WORKERS_ENV)
        monkeypatch.setenv(BACKEND_ENV, "serial")
        serial_mean, serial_folds = cross_validate(_cheap_fit, micro_uvsd,
                                                   num_folds=4)
        assert mean == serial_mean
        assert per_fold == serial_folds
