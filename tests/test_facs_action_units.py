"""Tests for the action-unit registry."""

import pytest

from repro.facs.action_units import (
    AU_IDS,
    NUM_AUS,
    all_action_units,
    au_by_id,
    au_index,
)
from repro.facs.regions import REGIONS


class TestRegistry:
    def test_twelve_disfa_aus(self):
        assert NUM_AUS == 12
        assert AU_IDS == (1, 2, 4, 5, 6, 9, 12, 15, 17, 20, 25, 26)

    def test_all_action_units_order_matches_ids(self):
        units = all_action_units()
        assert tuple(u.au_id for u in units) == AU_IDS

    def test_lookup_by_id(self):
        assert au_by_id(4).name == "Brow Lowerer"
        assert au_by_id(12).name == "Lip Corner Puller"

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            au_by_id(99)

    def test_index_roundtrip(self):
        for i, au_id in enumerate(AU_IDS):
            assert au_index(au_id) == i

    def test_unknown_index_raises(self):
        with pytest.raises(KeyError):
            au_index(3)

    def test_every_au_region_exists(self):
        for unit in all_action_units():
            assert unit.region in REGIONS

    def test_phrases_are_unique_per_region(self):
        seen = set()
        for unit in all_action_units():
            key = (unit.region, unit.phrase)
            assert key not in seen, f"duplicate phrase for {key}"
            seen.add(key)
