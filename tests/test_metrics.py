"""Tests for classification metrics and table formatting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.classification import (
    ClassificationMetrics,
    confusion_matrix,
    evaluate_predictions,
    mean_metrics,
)
from repro.metrics.reporting import format_table

labels_strategy = st.lists(st.integers(0, 1), min_size=2, max_size=60)


class TestConfusionMatrix:
    def test_known_counts(self):
        matrix = confusion_matrix(np.array([0, 0, 1, 1]),
                                  np.array([0, 1, 1, 1]))
        assert np.array_equal(matrix, [[1, 1], [0, 2]])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]))

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 3]), np.array([0, 1]))


class TestMetrics:
    def test_perfect_prediction(self):
        metrics = evaluate_predictions(np.array([0, 1, 0, 1]),
                                       np.array([0, 1, 0, 1]))
        assert metrics.accuracy == 1.0
        assert metrics.f1 == 1.0

    def test_known_macro_values(self):
        y_true = np.array([0, 0, 0, 1])
        y_pred = np.array([0, 0, 1, 1])
        metrics = evaluate_predictions(y_true, y_pred)
        assert metrics.accuracy == pytest.approx(0.75)
        # class 0: P=1, R=2/3, F1=0.8; class 1: P=0.5, R=1, F1=2/3.
        assert metrics.precision == pytest.approx(0.75)
        assert metrics.recall == pytest.approx(5 / 6)
        assert metrics.f1 == pytest.approx((0.8 + 2 / 3) / 2)

    def test_degenerate_class_handled(self):
        metrics = evaluate_predictions(np.array([0, 0]), np.array([0, 0]))
        assert metrics.accuracy == 1.0
        assert 0.0 <= metrics.f1 <= 1.0

    @given(labels_strategy)
    def test_accuracy_in_bounds(self, labels):
        y = np.array(labels)
        rng = np.random.default_rng(0)
        predictions = rng.integers(0, 2, size=y.size)
        metrics = evaluate_predictions(y, predictions)
        for value in (metrics.accuracy, metrics.precision,
                      metrics.recall, metrics.f1):
            assert 0.0 <= value <= 1.0

    @given(labels_strategy)
    def test_self_prediction_is_perfect(self, labels):
        y = np.array(labels)
        metrics = evaluate_predictions(y, y)
        assert metrics.accuracy == 1.0


class TestMeanMetrics:
    def test_averages(self):
        a = ClassificationMetrics(0.8, 0.8, 0.8, 0.8, 10)
        b = ClassificationMetrics(0.6, 0.6, 0.6, 0.6, 10)
        mean = mean_metrics([a, b])
        assert mean.accuracy == pytest.approx(0.7)
        assert mean.support == 20

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_metrics([])


class TestFormatTable:
    def test_renders_rows_and_percent(self):
        text = format_table(
            "T", ["Acc."], {"Ours": {"Acc.": 0.9581}}
        )
        assert "95.81%" in text
        assert "Ours" in text

    def test_missing_cell_blank(self):
        text = format_table("T", ["Acc.", "F1."], {"M": {"Acc.": 0.5}})
        assert "50.00%" in text

    def test_non_percent_mode(self):
        text = format_table("T", ["x"], {"M": {"x": 0.5}}, percent=False)
        assert "0.5000" in text
