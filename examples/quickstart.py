"""Quickstart: train the self-refine chain model and inspect one prediction.

Runs in ~1 minute on a laptop: generates a small synthetic UVSD split,
instruction-tunes on DISFA+ descriptions, runs Algorithm 1, and prints
a full reasoning-chain transcript (description, assessment, rationale)
for a held-out clip.

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    SelfRefineConfig,
    StressChainPipeline,
    build_instruction_pairs,
    evaluate_predictions,
    generate_disfa,
    generate_uvsd,
    train_stress_model,
    train_test_split,
)


def main() -> None:
    print("Generating synthetic UVSD (video stress detection) data ...")
    dataset = generate_uvsd(seed=0, num_samples=400, num_subjects=40)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=0)
    print(f"  {len(train)} training clips, {len(test)} held-out clips")

    print("Building DISFA+ instruction pairs for the Describe step ...")
    pairs = build_instruction_pairs(
        generate_disfa(seed=0, num_samples=300, num_subjects=15)
    )

    print("Training with self-refine chain reasoning (Algorithm 1) ...")
    config = SelfRefineConfig(refine_sample_limit=120, seed=0)
    model, report = train_stress_model(train, pairs, config, seed=0)
    print(f"  instruction-tuning loss: {report.describe_curve[0]:.3f} -> "
          f"{report.describe_curve[-1]:.3f}")
    print(f"  accepted description refinements: "
          f"{report.num_description_pairs}")
    print(f"  rationale preference pairs: {report.num_rationale_pairs}")

    print("\nEvaluating on the held-out split ...")
    pipeline = StressChainPipeline(model)
    predictions = np.array([pipeline.predict(s.video).label for s in test])
    metrics = evaluate_predictions(test.labels, predictions)
    print(f"  {metrics}")

    sample = test[0]
    result = pipeline.predict(sample.video)
    truth = "Stressed" if sample.label else "Unstressed"
    print(f"\nOne reasoning chain (truth: {truth}, "
          f"p_stressed={result.prob_stressed:.2f}):")
    print("-" * 60)
    print(result.session.transcript())
    print("-" * 60)
    print("Rationale:", result.rationale.render())


if __name__ == "__main__":
    main()
