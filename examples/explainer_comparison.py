"""Rationale vs post-hoc explainers on the same decisions.

Reproduces the paper's interpretability story in miniature: LIME,
KernelSHAP and SOBOL each spend hundreds of black-box model calls per
clip; the chain's own rationale comes free with the prediction.  Both
are judged by the same deletion metric (disturb top-k segments,
measure the accuracy drop).

    python examples/explainer_comparison.py
"""

from __future__ import annotations

from repro import (
    SelfRefineConfig,
    StressChainPipeline,
    build_instruction_pairs,
    generate_disfa,
    generate_uvsd,
    train_stress_model,
    train_test_split,
)
from repro.explainers import (
    KernelShapExplainer,
    LimeExplainer,
    SobolExplainer,
    chain_predict_fn,
    deletion_metric,
    explainer_ranker,
    rationale_ranker,
    time_explainers,
)


def main() -> None:
    print("Training the stress model ...")
    dataset = generate_uvsd(seed=9, num_samples=400, num_subjects=40)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=9)
    pairs = build_instruction_pairs(
        generate_disfa(seed=9, num_samples=300, num_subjects=15)
    )
    model, __ = train_stress_model(
        train, pairs, SelfRefineConfig(refine_sample_limit=150, seed=9),
        seed=9,
    )
    pipeline = StressChainPipeline(model)
    samples = list(test)[:30]
    factory = lambda s: chain_predict_fn(pipeline, s)  # noqa: E731

    explainers = [
        LimeExplainer(num_samples=400),
        KernelShapExplainer(num_samples=400),
        SobolExplainer(num_designs=8),
    ]

    print(f"\nDeletion-metric faithfulness over {len(samples)} clips")
    print(f"{'method':8s}  {'Top-1':>7s}  {'Top-2':>7s}  {'Top-3':>7s}")
    result = deletion_metric(samples, rationale_ranker(pipeline), factory)
    print(f"{'Ours':8s}  " + "  ".join(
        f"{result.drops[k] * 100:6.2f}%" for k in (1, 2, 3)
    ))
    for explainer in explainers:
        result = deletion_metric(samples, explainer_ranker(explainer),
                                 factory)
        print(f"{explainer.name:8s}  " + "  ".join(
            f"{result.drops[k] * 100:6.2f}%" for k in (1, 2, 3)
        ))

    print("\nPer-sample explanation cost")
    timing = time_explainers(pipeline, explainers, samples[:8])
    for name, seconds in sorted(timing.seconds_per_sample.items(),
                                key=lambda kv: kv[1]):
        print(f"  {name:8s}  {seconds * 1000:9.2f} ms  "
              f"({timing.evaluations_per_sample[name]:.0f} model calls)")
    print(f"\nOurs is {timing.speedup_over('Ours', 'SOBOL'):.0f}x faster "
          f"than the fastest post-hoc explainer.")


if __name__ == "__main__":
    main()
