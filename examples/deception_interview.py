"""Deception-interview screening -- the RSL scenario.

RSL footage ("Odd Man Out" reality-TV interviews) is in-the-wild:
occlusions, lighting changes, weaker stress cues.  This example shows
two things the paper evaluates on RSL:

1. chain reasoning vs the direct query on hard footage (Table III);
2. lifting a *frozen* off-the-shelf foundation model with test-time
   self-refinement -- no weight updates (Table VIII).

    python examples/deception_interview.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    SelfRefineConfig,
    StressChainPipeline,
    build_instruction_pairs,
    evaluate_predictions,
    generate_disfa,
    generate_rsl,
    load_offtheshelf,
    train_stress_model,
    train_test_split,
)


def accuracy(pipeline: StressChainPipeline, test) -> float:
    predictions = np.array([pipeline.predict(s.video).label for s in test])
    return evaluate_predictions(test.labels, predictions).accuracy


def main() -> None:
    print("Generating synthetic RSL (reality-TV interview) data ...")
    dataset = generate_rsl(seed=5, num_samples=400, num_subjects=36)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=5)
    pairs = build_instruction_pairs(
        generate_disfa(seed=5, num_samples=300, num_subjects=15)
    )

    print("Training the task model with Algorithm 1 ...")
    model, __ = train_stress_model(
        train, pairs, SelfRefineConfig(refine_sample_limit=150, seed=5),
        seed=5,
    )

    chain_acc = accuracy(StressChainPipeline(model, use_chain=True), test)
    direct_acc = accuracy(StressChainPipeline(model, use_chain=False), test)
    print(f"\n1) Chain reasoning on hard footage")
    print(f"   direct query accuracy : {direct_acc * 100:.1f}%")
    print(f"   reasoning chain       : {chain_acc * 100:.1f}%")

    print(f"\n2) Frozen off-the-shelf model + test-time self-refinement")
    gpt = load_offtheshelf("gpt-4o")
    zero_shot = accuracy(StressChainPipeline(gpt, use_chain=False), test)
    refined = accuracy(
        StressChainPipeline(
            gpt, use_chain=True, test_time_refine=True,
            verification_pool=[s.video for s in list(train)[:60]],
            seed=5,
        ),
        test,
    )
    print(f"   GPT-4o proxy, zero-shot          : {zero_shot * 100:.1f}%")
    print(f"   + chain & test-time refinement   : {refined * 100:.1f}%")
    print("   (no weights were updated -- the gain comes from better "
          "descriptions)")


if __name__ == "__main__":
    main()
