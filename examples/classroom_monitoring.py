"""Classroom stress monitoring -- the UVSD scenario the paper motivates.

A university records students during study sessions (the UVSD setting:
watching content, then being tested).  The monitor trains once, then
screens incoming clips, flags stressed students, and -- because stress
labels are sensitive -- attaches the highlighted facial-action
rationale to every flag so a counsellor can audit the call.

    python examples/classroom_monitoring.py
"""

from __future__ import annotations

from repro import (
    SelfRefineConfig,
    StressChainPipeline,
    build_instruction_pairs,
    generate_disfa,
    generate_uvsd,
    train_stress_model,
    train_test_split,
)
from repro.facs.action_units import au_by_id


def main() -> None:
    print("Setting up the classroom monitor ...")
    dataset = generate_uvsd(seed=3, num_samples=500, num_subjects=45)
    train, incoming = train_test_split(dataset, test_fraction=0.2, seed=3)
    pairs = build_instruction_pairs(
        generate_disfa(seed=3, num_samples=300, num_subjects=15)
    )
    model, __ = train_stress_model(
        train, pairs, SelfRefineConfig(refine_sample_limit=150, seed=3),
        seed=3,
    )
    pipeline = StressChainPipeline(model)

    print(f"\nScreening {len(incoming)} incoming clips ...\n")
    flagged, correct_flags = 0, 0
    for sample in incoming:
        result = pipeline.predict(sample.video)
        if not result.is_stressed:
            continue
        flagged += 1
        correct_flags += int(sample.label == 1)
        if flagged <= 5:
            top_cues = ", ".join(
                f"{au_by_id(au_id).name} ({au_by_id(au_id).region})"
                for au_id in result.rationale.au_ids[:2]
            ) or "no single dominant cue"
            print(f"  FLAG {sample.subject_id} "
                  f"(p={result.prob_stressed:.2f}) -- key cues: {top_cues}")
    print(f"\n{flagged} students flagged; "
          f"{correct_flags} truly stressed "
          f"(precision {correct_flags / max(1, flagged):.2f})")
    stressed_total = int(incoming.labels.sum())
    print(f"{stressed_total} stressed students in the session "
          f"(recall {correct_flags / max(1, stressed_total):.2f})")


if __name__ == "__main__":
    main()
