"""Bring your own stress corpus: build a custom synthetic dataset and
benchmark the method against classic baselines on it.

Shows the dataset-construction API: a :class:`SynthesisConfig` with
your own difficulty profile (here: a call-center quality-assurance
setting -- moderate coupling, heavy occlusion from headsets), then a
subject-aware cross-validated comparison of our method against two
baselines.

    python examples/custom_dataset.py
"""

from __future__ import annotations

from repro import build_instruction_pairs, generate_disfa
from repro.baselines import make_baseline
from repro.datasets.base import StressDataset
from repro.datasets.synth import (
    SynthesisConfig,
    records_to_samples,
    synthesize_dataset,
)
from repro.evaluation import evaluate_baseline, evaluate_ours
from repro.facs.stress_priors import default_stress_prior
from repro.metrics.reporting import format_table
from repro.training.self_refine import SelfRefineConfig


def build_callcenter_dataset(seed: int = 0) -> StressDataset:
    """A custom corpus: 360 clips of 30 agents, headset occlusions."""
    config = SynthesisConfig(
        name="callcenter",
        num_samples=360,
        num_subjects=30,
        num_stressed=150,
        prior=default_stress_prior(coupling=2.1),
        label_noise=0.05,
        noise_scale=0.04,
        occlusion_rate=0.25,   # headsets and hands in frame
        lighting_scale=0.08,
    )
    return StressDataset(
        "callcenter",
        tuple(records_to_samples(synthesize_dataset(config, seed))),
    )


def main() -> None:
    print("Building the custom call-center corpus ...")
    dataset = build_callcenter_dataset(seed=21)
    unstressed, stressed = dataset.class_counts()
    print(f"  {len(dataset)} clips, {len(dataset.subjects())} agents, "
          f"{stressed} stressed / {unstressed} calm")

    pairs = build_instruction_pairs(
        generate_disfa(seed=21, num_samples=250, num_subjects=12)
    )
    folds = 3

    print(f"\nRunning {folds}-fold subject-aware cross-validation ...")
    rows = {}
    for key in ("tsdnet", "marlin"):
        metrics = evaluate_baseline(key, dataset, num_folds=folds, seed=21)
        rows[make_baseline(key).name] = metrics.as_row()
    ours = evaluate_ours(
        dataset, pairs, "ours", num_folds=folds, seed=21,
        config=SelfRefineConfig(refine_sample_limit=120, seed=21),
    )
    rows["Ours"] = ours.as_row()
    print()
    print(format_table("Call-center stress detection",
                       ("Acc.", "Prec.", "Rec.", "F1."), rows))


if __name__ == "__main__":
    main()
