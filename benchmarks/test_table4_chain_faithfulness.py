"""Benchmark: regenerate Table IV (chain ablation, faithfulness)."""

from repro.experiments import run_experiment


def test_table4_chain_faithfulness(options, run_once):
    result = run_once(run_experiment, "table4", options)
    print("\n" + result.text)
    for dataset in ("uvsd", "rsl"):
        rows = result.data[dataset]
        # Paper shape: the full chain grounds more faithful rationales
        # than answering without systematic description.
        assert rows["Ours"]["Top-1"] >= rows["w/o Chain"]["Top-1"] - 0.1
