"""Benchmark: regenerate Figure 8 (retrieval-pool size sweep)."""

from repro.experiments import run_experiment


def test_fig8_pool_size(options, run_once):
    result = run_once(run_experiment, "fig8", options)
    print("\n" + result.text)
    series = result.data["series"]
    # Paper shape: similarity-based retrieval benefits from a larger
    # pool -- the largest pool is at least as good as the smallest
    # (tolerance = the CV noise floor at reduced scales).
    for name in ("Retrieve-by-vision", "Retrieve-by-description"):
        assert series[name][-1] >= series[name][0] - 0.03
    # And description retrieval ends at/above random retrieval.
    assert series["Retrieve-by-description"][-1] >= \
        series["Random"][-1] - 0.03
