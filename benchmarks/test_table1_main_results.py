"""Benchmark: regenerate Table I (main stress-detection results)."""

from repro.experiments import run_experiment


def test_table1_main_results(options, run_once):
    result = run_once(run_experiment, "table1", options)
    print("\n" + result.text)
    # Shape assertions from the paper: ours leads both datasets, and
    # the strongest baseline (Ding et al.) leads the other baselines.
    for dataset in ("uvsd", "rsl"):
        rows = result.data[dataset]
        ours = rows["Ours"]["Acc."]
        for method, row in rows.items():
            if method != "Ours":
                assert ours >= row["Acc."] - 0.02, (
                    f"{method} ({row['Acc.']:.3f}) beats ours "
                    f"({ours:.3f}) on {dataset}"
                )
        supervised = {k: v for k, v in rows.items()
                      if k not in ("GPT-4o", "Claude-3.5", "Gemini-1.5",
                                   "Ours")}
        best_supervised = max(supervised, key=lambda k: supervised[k]["Acc."])
        assert supervised["Ding et al."]["Acc."] >= \
            supervised[best_supervised]["Acc."] - 0.05
    # Cross-dataset difficulty: every method scores lower on RSL.
    assert result.data["rsl"]["Ours"]["Acc."] < \
        result.data["uvsd"]["Ours"]["Acc."]
