#!/usr/bin/env python
"""Throughput benchmark for the serving layer.

Measures :class:`~repro.serving.StressService` (dynamic micro-batching
+ per-stage result caches) against :class:`~repro.serving.SerialDispatcher`
(the pre-serving baseline: a global lock around ``pipeline.predict``)
under identical concurrent client load at 1, 8, and 32 clients.

Traffic is hot-content: each client draws from a shared pool of
repeated videos, the regime the serving layer is built for (dashboards
and review UIs re-requesting the same clips).  Every response is
checked bitwise against a serial reference run, so the benchmark
doubles as an equivalence check under load.

Results merge into the ``serving`` section of ``BENCH_eval.json`` at
the repository root (other sections are preserved).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick] [--check]

``--quick`` shrinks the workload for CI smoke runs; ``--check`` exits
non-zero if any response mismatches the serial reference or the
speedup at 32 clients falls below 3x.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from pathlib import Path

import numpy as np

from bench_common import merge_report
from repro.cot.chain import StressChainPipeline
from repro.model.foundation import FoundationModel
from repro.rng import make_rng
from repro.serving import SerialDispatcher, ServiceConfig, StressService
from repro.video.frame import Video, VideoSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

CLIENT_LEVELS = (1, 8, 32)


def _pool(num_videos: int) -> list[Video]:
    videos = []
    for index in range(num_videos):
        rng = np.random.default_rng(9_000 + index)
        curves = np.clip(rng.random((12, 12)) * rng.uniform(0.2, 1.0), 0, 1)
        videos.append(Video(VideoSpec(
            video_id=f"bench-serving-{index}",
            subject_id=f"bench-serving-subj-{index % 8}",
            au_intensities=curves, identity=rng.standard_normal(8),
            noise_scale=0.02, seed=9_000 + index,
        )))
    return videos


def _drive(dispatcher, pool, num_clients: int, requests_per_client: int,
           reference: dict) -> tuple[float, int]:
    """Run the client load; returns (elapsed_s, num_mismatches)."""
    mismatches = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(num_clients + 1)

    def client(client_id: int) -> None:
        rng = random.Random(17_000 + client_id)
        requests = [pool[rng.randrange(len(pool))]
                    for __ in range(requests_per_client)]
        barrier.wait()
        bad = 0
        for video in requests:
            result = dispatcher.predict(video)
            want = reference[video.video_id]
            if (result.prob_stressed != want.prob_stressed
                    or result.label != want.label
                    or result.session.transcript()
                    != want.session.transcript()):
                bad += 1
        with lock:
            mismatches[0] += bad

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(num_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return elapsed, mismatches[0]


def bench_serving(quick: bool) -> dict:
    requests_per_client = 60 if quick else 250
    pool = _pool(8 if quick else 16)
    model = FoundationModel(make_rng(0, "bench-serving-model"))
    pipeline = StressChainPipeline(model)

    # Serial reference + warm model-side caches (frame render, patch
    # features) shared by BOTH dispatchers, so the timed runs compare
    # dispatch strategies rather than first-touch rendering cost.
    reference = {video.video_id: pipeline.predict(video) for video in pool}

    levels = []
    for num_clients in CLIENT_LEVELS:
        total = num_clients * requests_per_client

        serial = SerialDispatcher(pipeline)
        serial_s, serial_bad = _drive(serial, pool, num_clients,
                                      requests_per_client, reference)
        serial.close()

        service = StressService(pipeline, ServiceConfig(
            max_batch_size=64, max_wait_ms=0.2))
        # steady-state: one pass over the pool warms the stage caches
        for video in pool:
            service.predict(video)
        service_s, service_bad = _drive(service, pool, num_clients,
                                        requests_per_client, reference)
        stats = service.stats()
        service.close()

        level = {
            "clients": num_clients,
            "requests_per_client": requests_per_client,
            "total_requests": total,
            "serial_s": serial_s,
            "service_s": service_s,
            "serial_rps": total / serial_s if serial_s else float("inf"),
            "service_rps": total / service_s if service_s else float("inf"),
            "speedup": serial_s / service_s if service_s else float("inf"),
            "results_match": serial_bad == 0 and service_bad == 0,
            "mean_batch_occupancy": stats.mean_batch_occupancy,
            "cache_hit_rate": stats.cache_hit_rate,
            "latency_p50_ms": stats.latency_p50_s * 1e3,
            "latency_p95_ms": stats.latency_p95_s * 1e3,
        }
        levels.append(level)
        print(f"clients={num_clients:3d}  serial {level['serial_rps']:8.0f} "
              f"req/s  service {level['service_rps']:8.0f} req/s  "
              f"speedup {level['speedup']:.2f}x  "
              f"occupancy {level['mean_batch_occupancy']:.1f}  "
              f"hit-rate {level['cache_hit_rate']:.2f}")

    return {
        "mode": "quick" if quick else "full",
        "pool_size": len(pool),
        "pipeline": "chain",
        "levels": levels,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--check", action="store_true",
                        help="fail on mismatches or <3x speedup at 32 clients")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_eval.json")
    args = parser.parse_args(argv)

    section = bench_serving(args.quick)
    section["cpu_count"] = os.cpu_count()
    merge_report(args.output, {"serving": section})
    print(json.dumps(section, indent=2))

    if args.check:
        failures = []
        for level in section["levels"]:
            if not level["results_match"]:
                failures.append(
                    f"responses diverged from serial at "
                    f"{level['clients']} clients")
        top = section["levels"][-1]
        if top["speedup"] < 3.0:
            failures.append(
                f"speedup at {top['clients']} clients is "
                f"{top['speedup']:.2f}x (< 3x)")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("CHECK PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
