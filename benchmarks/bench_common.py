"""Shared helpers for the benchmark scripts.

Each bench script owns a few top-level sections of ``BENCH_eval.json``
(``bench_engine.py`` owns ``deletion_metric``/``parallel_cv``,
``bench_serving.py`` owns ``serving``).  ``merge_report`` updates only
the caller's sections so the scripts can run independently without
clobbering each other's recorded numbers.
"""

from __future__ import annotations

import json
from pathlib import Path


def merge_report(path: Path, updates: dict) -> dict:
    """Merge ``updates`` into the JSON report at ``path`` and return
    the full merged document.  Unknown/corrupt existing content is
    replaced rather than crashing the benchmark run."""
    report: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict):
                report = existing
        except (json.JSONDecodeError, OSError):
            pass
    report.update(updates)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report
