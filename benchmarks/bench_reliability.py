#!/usr/bin/env python
"""Overhead benchmark for the reliability layer.

The reliability machinery (fault sites compiled into the hot paths,
the per-request deadline plumbing) must cost ~nothing when disabled --
that is the contract that lets the sites live on the serving hot loop
at all.  This benchmark pins it:

- ``fault_point`` micro-cost: ns per call with no plan armed;
- executor hot loop (warm caches, the serving steady state) in three
  configurations: fault sites *stubbed out* (the pre-reliability
  baseline, reconstructed by patching the site call to a no-op), sites
  present but disarmed (the shipping default), and an armed zero-rate
  plan (the machinery fully engaged, never firing);
- service round-trip with and without a (never-expiring) deadline on
  every request, isolating the deadline-check cost in the batcher.

Results merge into the ``reliability`` section of ``BENCH_eval.json``
at the repository root (other sections are preserved).

Usage::

    PYTHONPATH=src python benchmarks/bench_reliability.py [--quick] [--check]

``--quick`` shrinks the workload for CI smoke runs; ``--check`` exits
non-zero when the disarmed path costs more than 25% of the stubbed
baseline's throughput (generous: the measured overhead is ~noise, but
CI machines jitter).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from bench_common import merge_report
from repro.cot.chain import StressChainPipeline
from repro.model.foundation import FoundationModel
from repro.reliability.faults import FAULT_SITES, FaultPlan, FaultSpec, injected
from repro.rng import make_rng
from repro.serving import ServiceConfig, StressService
from repro.serving.cache import StageCaches
from repro.serving.executor import ChainBatchExecutor
from repro.video.frame import Video, VideoSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Modules whose hot paths call ``fault_point`` during serving; the
#: "stubbed" baseline patches the name in each to reconstruct the
#: pre-reliability code path for an honest A/B.
_SERVING_SITE_MODULES = (
    "repro.serving.executor",
    "repro.serving.cache",
    "repro.model.foundation",
)


def _pool(num_videos: int) -> list[Video]:
    videos = []
    for index in range(num_videos):
        rng = np.random.default_rng(11_000 + index)
        curves = np.clip(rng.random((12, 12)) * rng.uniform(0.2, 1.0), 0, 1)
        videos.append(Video(VideoSpec(
            video_id=f"bench-rel-{index}",
            subject_id=f"bench-rel-subj-{index % 4}",
            au_intensities=curves, identity=rng.standard_normal(8),
            noise_scale=0.02, seed=11_000 + index,
        )))
    return videos


def _best_of(repeats: int, fn) -> float:
    """Min elapsed seconds over ``repeats`` runs of ``fn``."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_fault_point_ns(iterations: int) -> float:
    from repro.reliability.faults import fault_point

    def loop():
        for __ in range(iterations):
            fault_point("serve.execute")

    return _best_of(3, loop) / iterations * 1e9


class _StubbedSites:
    """Context manager: replace ``fault_point`` with a bare no-op in
    every serving-hot-path module (the pre-reliability baseline)."""

    def __enter__(self):
        import importlib

        self._saved = []
        for name in _SERVING_SITE_MODULES:
            module = importlib.import_module(name)
            self._saved.append((module, module.fault_point))
            module.fault_point = lambda site: None
        return self

    def __exit__(self, *exc_info):
        for module, original in self._saved:
            module.fault_point = original


def _executor_loop(executor: ChainBatchExecutor, pool: list[Video],
                   iterations: int) -> None:
    for index in range(iterations):
        outcomes, __ = executor.run_batch([pool[index % len(pool)]])
        if isinstance(outcomes[0], BaseException):  # pragma: no cover
            raise outcomes[0]


def bench_executor(pool: list[Video], iterations: int) -> dict:
    model = FoundationModel(make_rng(0, "bench-reliability-model"))
    executor = ChainBatchExecutor(StressChainPipeline(model), StageCaches())
    _executor_loop(executor, pool, len(pool))  # warm every cache

    def timed() -> float:
        return _best_of(3, lambda: _executor_loop(executor, pool, iterations))

    with _StubbedSites():
        stubbed_s = timed()
    disabled_s = timed()
    zero_plan = FaultPlan(
        [FaultSpec(site=site, rate=0.0) for site in FAULT_SITES], seed=1)
    with injected(zero_plan):
        armed_s = timed()

    def rps(elapsed: float) -> float:
        return iterations / elapsed if elapsed else float("inf")

    return {
        "iterations": iterations,
        "stubbed_rps": rps(stubbed_s),
        "disabled_rps": rps(disabled_s),
        "armed_zero_rate_rps": rps(armed_s),
        # Positive = the reliability path is slower than the baseline.
        "disabled_overhead_pct": (disabled_s / stubbed_s - 1.0) * 100.0,
        "armed_overhead_pct": (armed_s / stubbed_s - 1.0) * 100.0,
    }


def bench_deadline(pool: list[Video], requests: int) -> dict:
    model = FoundationModel(make_rng(0, "bench-reliability-model"))
    pipeline = StressChainPipeline(model)

    def run(deadline_ms: float | None) -> float:
        service = StressService(pipeline, ServiceConfig(
            max_batch_size=8, max_wait_ms=0.0))
        for video in pool:  # warm stage caches
            service.predict(video)

        def loop():
            for index in range(requests):
                service.predict(pool[index % len(pool)],
                                deadline_ms=deadline_ms)

        elapsed = _best_of(3, loop)
        service.close()
        return elapsed

    without_s = run(None)
    # An hour of budget: the deadline plumbing runs on every request
    # (constructed at submit, checked at batch collection) but never
    # actually sheds.
    with_s = run(3_600_000.0)
    return {
        "requests": requests,
        "no_deadline_rps": requests / without_s if without_s else float("inf"),
        "with_deadline_rps": requests / with_s if with_s else float("inf"),
        "deadline_overhead_pct": (with_s / without_s - 1.0) * 100.0,
    }


def bench_reliability(quick: bool) -> dict:
    pool = _pool(4 if quick else 8)
    executor_iterations = 3_000 if quick else 20_000
    deadline_requests = 1_500 if quick else 8_000
    section = {
        "mode": "quick" if quick else "full",
        "fault_point_disabled_ns": _bench_fault_point_ns(
            200_000 if quick else 1_000_000),
        "executor": bench_executor(pool, executor_iterations),
        "deadline": bench_deadline(pool, deadline_requests),
    }
    ex, dl = section["executor"], section["deadline"]
    print(f"fault_point (disarmed): "
          f"{section['fault_point_disabled_ns']:.0f} ns/call")
    print(f"executor hot loop: stubbed {ex['stubbed_rps']:8.0f} req/s  "
          f"disabled {ex['disabled_rps']:8.0f} req/s "
          f"({ex['disabled_overhead_pct']:+.1f}%)  "
          f"armed-zero {ex['armed_zero_rate_rps']:8.0f} req/s "
          f"({ex['armed_overhead_pct']:+.1f}%)")
    print(f"service round-trip: no-deadline {dl['no_deadline_rps']:8.0f} "
          f"req/s  with-deadline {dl['with_deadline_rps']:8.0f} req/s "
          f"({dl['deadline_overhead_pct']:+.1f}%)")
    return section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--check", action="store_true",
                        help="fail if the disabled reliability path costs "
                             ">25%% of baseline throughput")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_eval.json")
    args = parser.parse_args(argv)

    section = bench_reliability(args.quick)
    section["cpu_count"] = os.cpu_count()
    merge_report(args.output, {"reliability": section})
    print(json.dumps(section, indent=2))

    if args.check:
        failures = []
        if section["executor"]["disabled_overhead_pct"] > 25.0:
            failures.append(
                "disabled fault sites cost "
                f"{section['executor']['disabled_overhead_pct']:.1f}% "
                "of executor throughput (> 25%)")
        if section["deadline"]["deadline_overhead_pct"] > 25.0:
            failures.append(
                "deadline plumbing costs "
                f"{section['deadline']['deadline_overhead_pct']:.1f}% "
                "of service throughput (> 25%)")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("CHECK PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
