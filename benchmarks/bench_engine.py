#!/usr/bin/env python
"""Benchmark the batched prediction engine and parallel evaluation.

Two timed comparisons, each against the pre-engine reference path:

1. **Deletion metric** -- the explainer black box as a plain
   single-frame callable (every perturbation pays one model call) vs
   the :class:`~repro.explainers.base.BatchPredictFn` returned by
   :func:`~repro.explainers.evaluation.chain_predict_fn`, which scores
   the whole perturbation stack in one vectorized pass.
2. **Cross-validated baseline** -- ``evaluate_baseline`` with the
   serial fold loop vs the process backend.

Both comparisons also verify the outputs agree, so the benchmark
doubles as an end-to-end equivalence check.  Results land in
``BENCH_eval.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--check]

``--quick`` shrinks the workload for CI smoke runs; ``--check`` exits
non-zero if the batched path is slower than the serial path or if any
outputs disagree.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from bench_common import merge_report
from repro.datasets import generate_uvsd
from repro.evaluation import evaluate_baseline
from repro.explainers import (
    RiseExplainer,
    chain_predict_fn,
    deletion_metric,
    explainer_ranker,
)
from repro.cot.chain import StressChainPipeline
from repro.model.foundation import FoundationModel
from repro.rng import make_rng

REPO_ROOT = Path(__file__).resolve().parent.parent


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_deletion(quick: bool) -> dict:
    """Deletion metric: per-frame loop vs batched engine."""
    num_samples = 2 if quick else 6
    num_rise = 100 if quick else 400
    num_segments = 64
    dataset = generate_uvsd(seed=7, num_samples=num_samples,
                            num_subjects=max(2, num_samples // 2))
    samples = list(dataset)
    model = FoundationModel(make_rng(0, "bench-engine-model"))
    pipeline = StressChainPipeline(model)

    # Warm the per-video caches (frame rendering, SLIC) so both timed
    # runs measure prediction work, not rendering.
    for sample in samples:
        sample.video.keyframes
        sample.video.segmentation(num_segments)

    def serial_factory(sample):
        """The pre-engine black box: a plain callable, no ``batch``."""
        __, neutral = sample.video.keyframes
        return lambda frame: model.chain_prob_from_frames(frame, neutral)

    kwargs = dict(
        ranker=explainer_ranker(RiseExplainer(num_samples=num_rise)),
        ks=(1, 2, 3), num_segments=num_segments, seed=0,
    )
    serial_result, serial_s = _timed(lambda: deletion_metric(
        samples, predict_fn_factory=serial_factory, **kwargs))
    batched_result, batched_s = _timed(lambda: deletion_metric(
        samples,
        predict_fn_factory=lambda s: chain_predict_fn(pipeline, s),
        **kwargs))

    return {
        "num_samples": num_samples,
        "num_segments": num_segments,
        "rise_num_samples": num_rise,
        "serial_s": serial_s,
        "batched_s": batched_s,
        "speedup": serial_s / batched_s if batched_s else float("inf"),
        "results_match": (
            serial_result.base_accuracy == batched_result.base_accuracy
            and serial_result.accuracy_after == batched_result.accuracy_after
        ),
    }


def bench_parallel_cv(quick: bool) -> dict:
    """``evaluate_baseline``: serial fold loop vs process backend."""
    num_folds = 4 if quick else 10
    num_workers = 4
    dataset = generate_uvsd(seed=7,
                            num_samples=48 if quick else 120,
                            num_subjects=12)

    serial_result, serial_s = _timed(lambda: evaluate_baseline(
        "fdassnn", dataset, num_folds=num_folds, backend="serial"))
    parallel_result, parallel_s = _timed(lambda: evaluate_baseline(
        "fdassnn", dataset, num_folds=num_folds,
        backend="process", num_workers=num_workers))

    return {
        "baseline": "fdassnn",
        "num_folds": num_folds,
        "num_workers": num_workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "results_match": serial_result == parallel_result,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--check", action="store_true",
                        help="fail if batched is slower or outputs differ")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_eval.json")
    args = parser.parse_args(argv)

    report = {
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "deletion_metric": bench_deletion(args.quick),
        "parallel_cv": bench_parallel_cv(args.quick),
    }
    # merge, don't overwrite: other bench scripts own other sections
    merge_report(args.output, report)
    print(json.dumps(report, indent=2))

    if args.check:
        deletion = report["deletion_metric"]
        cv = report["parallel_cv"]
        failures = []
        if not deletion["results_match"]:
            failures.append("deletion metric outputs differ")
        if not cv["results_match"]:
            failures.append("cross-validation outputs differ")
        if deletion["speedup"] < 1.0:
            failures.append(
                f"batched deletion metric slower than serial "
                f"({deletion['speedup']:.2f}x)"
            )
        if failures:
            print("CHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("CHECK PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
