"""Benchmark: regenerate Table III (chain-reasoning ablation)."""

from repro.experiments import run_experiment


def test_table3_chain_ablation(options, run_once):
    result = run_once(run_experiment, "table3", options)
    print("\n" + result.text)
    for dataset in ("uvsd", "rsl"):
        rows = result.data[dataset]
        # Paper shape: ours >= w/o learn des. >= w/o Chain (with small
        # tolerance for CV noise at reduced scales).
        assert rows["Ours"]["Acc."] >= rows["w/o Chain"]["Acc."] - 0.02
        assert rows["Ours"]["Acc."] >= rows["w/o learn des."]["Acc."] - 0.02
