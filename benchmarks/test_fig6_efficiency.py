"""Benchmark: regenerate Figure 6 (explanation efficiency)."""

from repro.experiments import run_experiment


def test_fig6_efficiency(options, run_once):
    result = run_once(run_experiment, "fig6", options)
    print("\n" + result.text)
    timing = result.data
    # The paper's headline: the chain explains itself orders of
    # magnitude faster than every post-hoc explainer.
    for name in ("LIME", "SHAP", "SOBOL"):
        assert timing.speedup_over("Ours", name) > 10.0, (
            f"{name} should be >10x slower than the chain"
        )
    # Post-hoc explainers pay their evaluation budgets in model calls.
    assert timing.evaluations_per_sample["Ours"] == 1.0
    for name in ("LIME", "SHAP", "SOBOL"):
        assert timing.evaluations_per_sample[name] > 50
