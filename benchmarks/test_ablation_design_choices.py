"""Ablation benches for the design choices called out in DESIGN.md §5.

These are not paper artifacts; they probe the sensitivity of the
reproduction to its own knobs: DPO beta, the K scoring repetitions,
the number of reflected rationales n, the SLIC segment count, and the
perturbation kind used by the deletion metric.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cot.chain import StressChainPipeline
from repro.datasets import build_instruction_pairs, generate_disfa, generate_uvsd, train_test_split
from repro.explainers import chain_predict_fn, deletion_metric, rationale_ranker
from repro.training.self_refine import SelfRefineConfig
from repro.training.trainer import train_stress_model


@pytest.fixture(scope="module")
def ablation_data():
    dataset = generate_uvsd(seed=11, num_samples=240, num_subjects=24)
    train, test = train_test_split(dataset, 0.25, seed=11)
    pairs = build_instruction_pairs(
        generate_disfa(seed=11, num_samples=150, num_subjects=10)
    )
    return train, test, pairs


def _accuracy(model, test) -> float:
    pipeline = StressChainPipeline(model)
    predictions = np.array([pipeline.predict(s.video).label for s in test])
    return float((predictions == test.labels).mean())


def _train(train, pairs, **config_overrides):
    settings = dict(refine_sample_limit=60, num_trials=3, seed=11)
    settings.update(config_overrides)
    config = SelfRefineConfig(**settings)
    model, report = train_stress_model(train, pairs, config, seed=11)
    return model, report


def test_ablation_dpo_beta(ablation_data, benchmark):
    """Beta sweep around the paper's 0.1: accuracy should be stable."""
    train, test, pairs = ablation_data

    def sweep():
        return {
            beta: _accuracy(_train(train, pairs, beta=beta)[0], test)
            for beta in (0.05, 0.1, 0.5)
        }

    accuracies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nbeta sweep:", {b: round(a, 3) for b, a in accuracies.items()})
    values = list(accuracies.values())
    assert max(values) - min(values) < 0.15


def test_ablation_scoring_trials_k(ablation_data, benchmark):
    """K (helpfulness/verification repeats) trades cost for signal:
    more trials must not reduce accepted refinements to zero."""
    train, test, pairs = ablation_data

    def sweep():
        return {
            k: _train(train, pairs, num_trials=k)[1].num_description_pairs
            for k in (2, 5)
        }

    pairs_found = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nK sweep (accepted description pairs):", pairs_found)
    assert all(count >= 0 for count in pairs_found.values())
    assert pairs_found[5] > 0


def test_ablation_rationale_candidates_n(ablation_data, benchmark):
    """More reflected rationales n widen the best/worst gap DPO
    learns from: pair count must not shrink with larger n."""
    train, __, pairs = ablation_data

    def sweep():
        return {
            n: _train(train, pairs,
                      num_rationale_candidates=n)[1].num_rationale_pairs
            for n in (2, 4)
        }

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nn sweep (rationale pairs):", counts)
    assert counts[4] >= counts[2] - 3


def test_ablation_slic_segments(ablation_data, benchmark):
    """Deletion drops at 32 vs 64 segments: coarser segments remove
    more evidence per perturbation, so drops must not shrink."""
    train, test, pairs = ablation_data
    model, __ = _train(train, pairs)
    pipeline = StressChainPipeline(model)
    samples = list(test)[:16]
    factory = lambda s: chain_predict_fn(pipeline, s)  # noqa: E731

    def sweep():
        return {
            num_segments: deletion_metric(
                samples, rationale_ranker(pipeline), factory,
                num_segments=num_segments,
            ).drops[1]
            for num_segments in (32, 64)
        }

    drops = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nSLIC segment-count sweep (top-1 drop):",
          {k: round(v, 3) for k, v in drops.items()})
    assert drops[32] >= drops[64] - 0.1


def test_ablation_perturbation_kind(ablation_data, benchmark):
    """Replace-mode perturbation (deletion semantics) must flip at
    least as often as additive noise of the same scale."""
    train, test, pairs = ablation_data
    model, __ = _train(train, pairs)
    pipeline = StressChainPipeline(model)
    samples = list(test)[:16]
    factory = lambda s: chain_predict_fn(pipeline, s)  # noqa: E731

    import repro.explainers.evaluation as evaluation_module
    import repro.video.perturb as perturb_module

    def run_mode(mode):
        original = perturb_module.gaussian_perturb_segments

        def patched(frame, labels, segment_ids, rng, noise_scale=0.35,
                    mode_override=mode):
            return original(frame, labels, segment_ids, rng,
                            noise_scale=noise_scale, mode=mode_override)

        evaluation_module.gaussian_perturb_segments = patched
        try:
            return deletion_metric(
                samples, rationale_ranker(pipeline), factory
            ).drops[3]
        finally:
            evaluation_module.gaussian_perturb_segments = original

    def sweep():
        return {mode: run_mode(mode) for mode in ("replace", "additive")}

    drops = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nperturbation-kind sweep (top-3 drop):",
          {k: round(v, 3) for k, v in drops.items()})
    assert drops["replace"] >= drops["additive"] - 0.05
