#!/usr/bin/env python
"""Instrumentation-overhead benchmark for the observability layer.

Two measurements:

1. **Disabled overhead** -- chain ``predict`` throughput with tracing
   off.  The span/profiling hooks sit on every stage and every
   ``Linear.forward``, so this number is the system's steady-state
   cost of *carrying* instrumentation; the acceptance bar is that it
   stays within 2% of the uninstrumented baseline (we record the
   measured throughput so regressions are visible PR over PR).
2. **Enabled overhead** -- the same workload with the JSONL exporter
   writing to a temp file, reported as a slowdown factor.

The run also performs the span-coverage acceptance sweep: a full
(tiny) ``train_stress_model`` plus one ``predict`` under
``REPRO_TRACE``, asserting the trace contains all four training-stage
spans and all three chain-stage spans.

Results merge into the ``observability`` section of
``BENCH_eval.json`` (other sections are preserved).

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py [--quick] [--check]

``--check`` exits non-zero if span coverage is incomplete or the
traced slowdown exceeds 2x.  The bound is calibrated to this repo's
simulator, whose requests complete in ~100us -- three spans of JSON
encoding are a visible fraction of that; against millisecond-scale
real model calls the same absolute cost is under 1%.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from bench_common import merge_report
from repro.cot.chain import StressChainPipeline
from repro.datasets import build_instruction_pairs, generate_disfa, generate_uvsd
from repro.model.foundation import FoundationModel
from repro.observability.tracing import (
    JsonlExporter,
    install_exporter,
    uninstall_exporter,
)
from repro.rng import make_rng
from repro.training.self_refine import SelfRefineConfig
from repro.training.trainer import train_stress_model
from repro.video.frame import Video, VideoSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The span names the acceptance criteria require in a full trace.
REQUIRED_SPANS = (
    "train.fit",
    "train.describe_tuning",
    "train.description_refinement",
    "train.assess_tuning",
    "train.rationale_refinement",
    "chain.describe",
    "chain.assess",
    "chain.highlight",
)


def _videos(count: int) -> list[Video]:
    videos = []
    for index in range(count):
        rng = np.random.default_rng(21_000 + index)
        curves = np.clip(rng.random((12, 12)) * rng.uniform(0.2, 1.0), 0, 1)
        videos.append(Video(VideoSpec(
            video_id=f"bench-obs-{index}",
            subject_id=f"bench-obs-subj-{index % 4}",
            au_intensities=curves, identity=rng.standard_normal(8),
            noise_scale=0.02, seed=21_000 + index,
        )))
    return videos


def _throughput(pipeline: StressChainPipeline, videos: list[Video],
                rounds: int) -> float:
    """Serial predict throughput in requests/s over ``rounds`` passes."""
    start = time.perf_counter()
    total = 0
    for __ in range(rounds):
        for video in videos:
            pipeline.predict(video)
            total += 1
    return total / (time.perf_counter() - start)


def bench_observability(quick: bool) -> dict:
    num_videos = 8 if quick else 24
    rounds = 20 if quick else 60
    videos = _videos(num_videos)
    model = FoundationModel(make_rng(3, "bench-observability"))
    pipeline = StressChainPipeline(model)

    # Warm the feature cache so both measurements time pure model math.
    for video in videos:
        pipeline.predict(video)

    disabled_rps = _throughput(pipeline, videos, rounds)

    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as handle:
        trace_path = handle.name
    exporter = JsonlExporter(trace_path)
    install_exporter(exporter)
    try:
        enabled_rps = _throughput(pipeline, videos, rounds)
    finally:
        uninstall_exporter()
        exporter.close()
    traced_spans = sum(1 for __ in open(trace_path, encoding="utf-8"))
    Path(trace_path).unlink()

    # Span-coverage sweep: tiny full training run + one predict.
    train = generate_uvsd(seed=5, num_samples=24, num_subjects=6)
    pairs = build_instruction_pairs(
        generate_disfa(seed=5, num_samples=20, num_subjects=4))
    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as handle:
        sweep_path = handle.name
    exporter = JsonlExporter(sweep_path)
    install_exporter(exporter)
    try:
        config = SelfRefineConfig(
            describe_epochs=3, assess_epochs=4, refine_sample_limit=3,
            num_trials=2, num_rationale_candidates=2,
            dpo_desc_epochs=1, dpo_rationale_epochs=1, seed=5,
        )
        trained, __ = train_stress_model(train, pairs, config)
        StressChainPipeline(trained).predict(train[0].video)
    finally:
        uninstall_exporter()
        exporter.close()
    names = {json.loads(line)["name"]
             for line in open(sweep_path, encoding="utf-8")}
    Path(sweep_path).unlink()
    missing = [name for name in REQUIRED_SPANS if name not in names]

    slowdown = disabled_rps / enabled_rps if enabled_rps else float("inf")
    return {
        "quick": quick,
        "workload": {"num_videos": num_videos, "rounds": rounds},
        "disabled_requests_per_s": round(disabled_rps, 1),
        "enabled_requests_per_s": round(enabled_rps, 1),
        "traced_slowdown_x": round(slowdown, 3),
        "spans_exported": traced_spans,
        "span_coverage_missing": missing,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--check", action="store_true",
                        help="fail on incomplete span coverage or a "
                             "traced slowdown above 2x")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_eval.json")
    args = parser.parse_args(argv)

    section = bench_observability(args.quick)
    merge_report(args.output, {"observability": section})
    print(json.dumps(section, indent=2))

    if args.check:
        if section["span_coverage_missing"]:
            print(f"FAIL: missing spans {section['span_coverage_missing']}",
                  file=sys.stderr)
            return 1
        if section["traced_slowdown_x"] > 2.0:
            print(f"FAIL: traced slowdown {section['traced_slowdown_x']}x "
                  "exceeds 2x", file=sys.stderr)
            return 1
        print("check ok: full span coverage, "
              f"traced slowdown {section['traced_slowdown_x']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
