"""Benchmark: regenerate Figure 7 (encoder separation)."""

from repro.experiments import run_experiment


def test_fig7_similarity(options, run_once):
    result = run_once(run_experiment, "fig7", options)
    print("\n" + result.text)
    # Paper claim: description embeddings separate helpful from
    # unhelpful examples better than vision embeddings.
    assert result.data["description_gap"] >= result.data["vision_gap"] - 0.01
