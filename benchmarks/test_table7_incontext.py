"""Benchmark: regenerate Table VII (in-context retrieval)."""

from repro.experiments import run_experiment


def test_table7_incontext(options, run_once):
    result = run_once(run_experiment, "table7", options)
    print("\n" + result.text)
    for dataset in ("uvsd", "rsl"):
        rows = result.data[dataset]
        # Paper shape: description retrieval is the best strategy, and
        # random examples do not beat using no example.  Tolerances
        # cover the CV noise floor at reduced scales (the paper's own
        # deltas here are fractions of a point).
        assert rows["Retrieve-by-description"]["Acc."] >= \
            rows["Random"]["Acc."] - 0.02
        assert rows["Retrieve-by-description"]["Acc."] >= \
            rows["w/o Example"]["Acc."] - 0.02
        assert rows["Random"]["Acc."] <= rows["w/o Example"]["Acc."] + 0.04
