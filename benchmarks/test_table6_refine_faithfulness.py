"""Benchmark: regenerate Table VI (self-refine ablation, faithfulness)."""

from repro.experiments import run_experiment


def test_table6_refine_faithfulness(options, run_once):
    result = run_once(run_experiment, "table6", options)
    print("\n" + result.text)
    for dataset in ("uvsd", "rsl"):
        rows = result.data[dataset]
        assert rows["Ours"]["Top-1"] >= rows["w/o Refine"]["Top-1"] - 0.1
