"""Ablation bench: ANN indexes for large in-context example pools.

The paper's closing remark motivates efficient retrieval over large
example resources; this bench measures the recall/speed trade-off of
the LSH and IVF-Flat indexes against brute force on a realistic
description-embedding pool.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.retrieval.encoders import DescriptionEncoder
from repro.retrieval.index import (
    ExactIndex,
    IVFFlatIndex,
    LSHIndex,
    recall_at_k,
)
from repro.facs.action_units import AU_IDS
from repro.facs.descriptions import FacialDescription
from repro.rng import make_rng


@pytest.fixture(scope="module")
def embedding_pool():
    """Description embeddings for a large synthetic example pool."""
    encoder = DescriptionEncoder()
    rng = make_rng(0, "index-bench")
    texts = []
    for _ in range(3000):
        active = tuple(
            au for au in AU_IDS if rng.random() < 0.3
        )
        texts.append(FacialDescription(active).render())
    vectors = np.stack([encoder.encode(text) for text in texts])
    queries = vectors[rng.choice(len(vectors), size=50, replace=False)]
    queries = queries + rng.normal(0, 0.05, queries.shape)
    return vectors, queries


def test_ablation_ann_index_tradeoff(embedding_pool, benchmark):
    vectors, queries = embedding_pool
    exact = ExactIndex(vectors)

    def build_and_measure():
        results = {}
        for name, index in (
            ("lsh", LSHIndex(vectors, num_tables=8, num_bits=10, seed=1)),
            ("ivf", IVFFlatIndex(vectors, num_cells=48, nprobe=3, seed=1)),
        ):
            start = time.perf_counter()
            for query in queries:
                index.search(query, k=3)
            elapsed_index = time.perf_counter() - start
            start = time.perf_counter()
            for query in queries:
                exact.search(query, k=3)
            elapsed_exact = time.perf_counter() - start
            results[name] = {
                "recall@3": recall_at_k(index, exact, queries, k=3),
                "speedup": elapsed_exact / max(elapsed_index, 1e-9),
            }
        return results

    results = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    print("\nANN index trade-off (3000-example pool):")
    for name, stats in results.items():
        print(f"  {name}: recall@3 {stats['recall@3']:.2f}, "
              f"{stats['speedup']:.1f}x faster than brute force")
    for stats in results.values():
        assert stats["recall@3"] >= 0.7
