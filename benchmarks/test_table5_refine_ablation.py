"""Benchmark: regenerate Table V (self-refine ablation)."""

from repro.experiments import run_experiment


def test_table5_refine_ablation(options, run_once):
    result = run_once(run_experiment, "table5", options)
    print("\n" + result.text)
    for dataset in ("uvsd", "rsl"):
        rows = result.data[dataset]
        # The paper's refinement deltas are ~1-2 pp; the tolerance
        # covers the CV noise floor at reduced benchmark scales.
        assert rows["Ours"]["Acc."] >= rows["w/o Refine"]["Acc."] - 0.025
        assert rows["Ours"]["Acc."] >= rows["w/o Reflection"]["Acc."] - 0.025
