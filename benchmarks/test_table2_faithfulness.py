"""Benchmark: regenerate Table II (deletion-metric faithfulness)."""

from repro.experiments import run_experiment


def test_table2_faithfulness(options, run_once):
    result = run_once(run_experiment, "table2", options)
    print("\n" + result.text)
    for dataset in ("uvsd", "rsl"):
        rows = result.data[dataset]
        # Our rationale's top-1 drop is competitive with the best
        # post-hoc explainer (the paper's headline finding).  The
        # tolerance covers the reduced-scale quantisation: quick-scale
        # evaluation subsets move in ~4 pp/clip steps and LIME
        # optimizes directly against the deletion operator (see
        # EXPERIMENTS.md, Table II notes).
        best_posthoc_top1 = max(
            rows[name]["Top-1"] for name in ("SHAP", "LIME", "SOBOL")
        )
        assert rows["Ours"]["Top-1"] >= best_posthoc_top1 - 0.20
        # Drops grow (roughly) with k for our method.
        assert rows["Ours"]["Top-3"] >= rows["Ours"]["Top-1"] - 0.05
