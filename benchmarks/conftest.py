"""Benchmark configuration.

Each benchmark regenerates one paper artifact at the ``quick`` scale
(override with ``REPRO_BENCH_SCALE=standard|full``) and prints the
resulting table so a benchmark run doubles as an experiment report.
Experiments are deterministic and expensive, so every benchmark runs
exactly one round.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentOptions


@pytest.fixture(scope="session")
def options() -> ExperimentOptions:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    return ExperimentOptions.at(scale)


@pytest.fixture()
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
