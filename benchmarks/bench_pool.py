#!/usr/bin/env python
"""Throughput benchmark for the sharded replica pool.

Measures :class:`~repro.serving.ReplicaPool` at 1, 2, and 4 thread
replicas against :class:`~repro.serving.SerialDispatcher` (a global
lock around ``pipeline.predict`` -- the same baseline
``bench_serving.py`` uses) under identical concurrent hot-content
client load, plus a single :class:`~repro.serving.StressService` for
reference.  Every response is checked bitwise against a serial
reference run, so the benchmark doubles as an equivalence check under
load.

Consistent-hash routing is what the scaling story rests on: each clip
always lands on the same replica, so per-replica stage caches stay as
hot as one service's would -- sharding multiplies batcher workers
without multiplying cache misses.

Results merge into the ``pool`` section of ``BENCH_eval.json`` at the
repository root (other sections are preserved).

Usage::

    PYTHONPATH=src python benchmarks/bench_pool.py [--quick] [--check]

``--quick`` shrinks the workload for CI smoke runs; ``--check`` exits
non-zero if any response mismatches the serial reference or the
speedup at 4 replicas falls below 1.5x.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from pathlib import Path

import numpy as np

from bench_common import merge_report
from repro.cot.chain import StressChainPipeline
from repro.model.foundation import FoundationModel
from repro.rng import make_rng
from repro.serving import (
    ReplicaPool,
    SerialDispatcher,
    ServiceConfig,
    StressService,
)
from repro.video.frame import Video, VideoSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

REPLICA_LEVELS = (1, 2, 4)
NUM_CLIENTS = 16


def _content_pool(num_videos: int) -> list[Video]:
    videos = []
    for index in range(num_videos):
        rng = np.random.default_rng(21_000 + index)
        curves = np.clip(rng.random((12, 12)) * rng.uniform(0.2, 1.0), 0, 1)
        videos.append(Video(VideoSpec(
            video_id=f"bench-pool-{index}",
            subject_id=f"bench-pool-subj-{index % 8}",
            au_intensities=curves, identity=rng.standard_normal(8),
            noise_scale=0.02, seed=21_000 + index,
        )))
    return videos


def _drive(dispatcher, content, num_clients: int, requests_per_client: int,
           reference: dict) -> tuple[float, int]:
    """Run the client load; returns (elapsed_s, num_mismatches)."""
    mismatches = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(num_clients + 1)

    def client(client_id: int) -> None:
        rng = random.Random(23_000 + client_id)
        requests = [content[rng.randrange(len(content))]
                    for __ in range(requests_per_client)]
        barrier.wait()
        bad = 0
        for video in requests:
            result = dispatcher.predict(video)
            want = reference[video.video_id]
            if (result.prob_stressed != want.prob_stressed
                    or result.label != want.label
                    or result.session.transcript()
                    != want.session.transcript()):
                bad += 1
        with lock:
            mismatches[0] += bad

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(num_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return elapsed, mismatches[0]


def bench_pool(quick: bool) -> dict:
    requests_per_client = 40 if quick else 150
    content = _content_pool(8 if quick else 16)
    pipeline = StressChainPipeline(
        FoundationModel(make_rng(0, "bench-pool-model")))
    config = ServiceConfig(max_batch_size=64, max_wait_ms=0.2)

    # Serial reference + warm model-side caches (frame render, patch
    # features), so the timed runs compare dispatch strategies rather
    # than first-touch rendering cost.
    reference = {video.video_id: pipeline.predict(video)
                 for video in content}
    total = NUM_CLIENTS * requests_per_client

    serial = SerialDispatcher(pipeline)
    serial_s, serial_bad = _drive(serial, content, NUM_CLIENTS,
                                  requests_per_client, reference)
    serial.close()

    service = StressService(pipeline, config)
    for video in content:
        service.predict(video)
    service_s, service_bad = _drive(service, content, NUM_CLIENTS,
                                    requests_per_client, reference)
    service.close()

    levels = []
    for num_replicas in REPLICA_LEVELS:
        pool = ReplicaPool(pipeline, num_replicas=num_replicas,
                           backend="thread", config=config)
        # steady-state: one pass over the content warms each routed
        # replica's stage caches
        for video in content:
            pool.predict(video)
        pool_s, pool_bad = _drive(pool, content, NUM_CLIENTS,
                                  requests_per_client, reference)
        snapshot = pool.stats()
        pool.close()

        level = {
            "replicas": num_replicas,
            "clients": NUM_CLIENTS,
            "requests_per_client": requests_per_client,
            "total_requests": total,
            "pool_s": pool_s,
            "pool_rps": total / pool_s if pool_s else float("inf"),
            "speedup_vs_serial": serial_s / pool_s if pool_s
            else float("inf"),
            "speedup_vs_service": service_s / pool_s if pool_s
            else float("inf"),
            "results_match": pool_bad == 0,
            "routed": list(snapshot.routed),
            "cache_hit_rate": (
                sum(r.cache["describe"].hits + r.cache["assess"].hits
                    + r.cache["highlight"].hits
                    for r in snapshot.replicas)
                / max(1, sum(r.cache["describe"].hits
                             + r.cache["describe"].misses
                             + r.cache["assess"].hits
                             + r.cache["assess"].misses
                             + r.cache["highlight"].hits
                             + r.cache["highlight"].misses
                             for r in snapshot.replicas))),
        }
        levels.append(level)
        print(f"replicas={num_replicas}  pool {level['pool_rps']:8.0f} "
              f"req/s  vs-serial {level['speedup_vs_serial']:.2f}x  "
              f"vs-service {level['speedup_vs_service']:.2f}x  "
              f"hit-rate {level['cache_hit_rate']:.2f}  "
              f"routed {level['routed']}")

    return {
        "mode": "quick" if quick else "full",
        "content_pool": len(content),
        "backend": "thread",
        "serial_s": serial_s,
        "serial_rps": total / serial_s if serial_s else float("inf"),
        "service_s": service_s,
        "service_rps": total / service_s if service_s else float("inf"),
        "baseline_results_match": serial_bad == 0 and service_bad == 0,
        "levels": levels,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--check", action="store_true",
                        help="fail on mismatches or <1.5x speedup at "
                             "4 replicas")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_eval.json")
    args = parser.parse_args(argv)

    section = bench_pool(args.quick)
    section["cpu_count"] = os.cpu_count()
    merge_report(args.output, {"pool": section})
    print(json.dumps(section, indent=2))

    if args.check:
        failures = []
        if not section["baseline_results_match"]:
            failures.append("baseline responses diverged from serial")
        for level in section["levels"]:
            if not level["results_match"]:
                failures.append(
                    f"responses diverged from serial at "
                    f"{level['replicas']} replicas")
        top = section["levels"][-1]
        if top["speedup_vs_serial"] < 1.5:
            failures.append(
                f"speedup at {top['replicas']} replicas is "
                f"{top['speedup_vs_serial']:.2f}x (< 1.5x)")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("CHECK PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
