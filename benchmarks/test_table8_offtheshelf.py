"""Benchmark: regenerate Table VIII (test-time refinement of LFMs)."""

from repro.experiments import run_experiment

_VENDORS = ("GPT-4o", "Claude-3.5", "Gemini-1.5")


def test_table8_offtheshelf(options, run_once):
    result = run_once(run_experiment, "table8", options)
    print("\n" + result.text)
    improved = 0
    for dataset in ("uvsd", "rsl"):
        rows = result.data[dataset]
        for vendor in _VENDORS:
            original = rows[f"{vendor} Original"]["Acc."]
            refined = rows[f"{vendor} New"]["Acc."]
            improved += int(refined >= original - 0.005)
    # Paper shape: chain + test-time self-refinement lifts every
    # vendor; allow one regression (plus sub-clip float jitter) at
    # reduced benchmark scales.
    assert improved >= 5, f"only {improved}/6 vendor runs improved"
