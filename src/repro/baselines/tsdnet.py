"""TSDNET (Zhang et al., Sensors 2020): two-stream detection network.

The original fuses a *face-level* stream (most/least expressive
keyframe pair) with an *action-level* stream (body/temporal dynamics)
through a stream-weighted integrator with attention.  The
re-implementation keeps the two streams -- keyframe-pair appearance
features and temporal AU-motion statistics -- each with its own
encoder, fused by a learned stream gate.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SupervisedBaseline, probability
from repro.baselines.features import keyframe_pair_features, per_frame_features
from repro.datasets.base import StressDataset
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.tensorops import binary_cross_entropy_with_logits, sigmoid
from repro.rng import make_rng
from repro.video.frame import Video


class TSDNet(SupervisedBaseline):
    """Two-stream (face + action) network with gated fusion."""

    name = "TSDNet"

    def __init__(self, embed_dim: int = 24, epochs: int = 300,
                 lr: float = 5e-3):
        super().__init__()
        self.embed_dim = embed_dim
        self.epochs = epochs
        self.lr = lr
        self._face: Linear | None = None
        self._action: Linear | None = None
        self._face_head: Linear | None = None
        self._action_head: Linear | None = None
        self._gate: Linear | None = None

    @staticmethod
    def _action_features(video: Video) -> np.ndarray:
        """Temporal motion statistics: mean absolute frame-to-frame
        change and temporal std of each patch."""
        frames = per_frame_features(video)
        motion = np.abs(np.diff(frames, axis=0)).mean(axis=0)
        spread = frames.std(axis=0)
        return np.concatenate([motion, spread])

    def fit(self, train_data: StressDataset, seed: int = 0) -> None:
        rng = make_rng(seed, "tsdnet")
        face = np.stack([
            keyframe_pair_features(sample.video) for sample in train_data
        ])
        action = np.stack([
            self._action_features(sample.video) for sample in train_data
        ])
        labels = train_data.labels.astype(np.float64)
        self._face = Linear(face.shape[1], self.embed_dim, rng, "tsd.face")
        self._action = Linear(action.shape[1], self.embed_dim, rng,
                              "tsd.action")
        self._face_head = Linear(self.embed_dim, 1, rng, "tsd.fhead")
        self._action_head = Linear(self.embed_dim, 1, rng, "tsd.ahead")
        self._gate = Linear(2 * self.embed_dim, 1, rng, "tsd.gate")
        params = (self._face.parameters() + self._action.parameters()
                  + self._face_head.parameters()
                  + self._action_head.parameters() + self._gate.parameters())
        optimizer = Adam(params, lr=self.lr, weight_decay=1e-4)
        count = len(labels)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            face_embed = self._face.forward(face)
            action_embed = self._action.forward(action)
            face_logit = self._face_head.forward(face_embed)[:, 0]
            action_logit = self._action_head.forward(action_embed)[:, 0]
            gate_logit = self._gate.forward(
                np.concatenate([face_embed, action_embed], axis=1)
            )[:, 0]
            gate = sigmoid(gate_logit)
            logits = gate * face_logit + (1.0 - gate) * action_logit
            __, grad = binary_cross_entropy_with_logits(logits, labels)
            # Backward through the gated mixture.
            grad_face_logit = grad * gate
            grad_action_logit = grad * (1.0 - gate)
            grad_gate = (grad * (face_logit - action_logit)
                         * gate * (1.0 - gate))
            grad_fe = self._face_head.backward(grad_face_logit[:, np.newaxis])
            grad_ae = self._action_head.backward(
                grad_action_logit[:, np.newaxis]
            )
            grad_cat = self._gate.backward(grad_gate[:, np.newaxis])
            grad_fe = grad_fe + grad_cat[:, : self.embed_dim]
            grad_ae = grad_ae + grad_cat[:, self.embed_dim:]
            self._face.backward(grad_fe)
            self._action.backward(grad_ae)
            optimizer.step()
        self._fitted = True

    def _logit(self, video: Video) -> float:
        face_embed = self._face.forward(
            keyframe_pair_features(video)[np.newaxis, :]
        )
        action_embed = self._action.forward(
            self._action_features(video)[np.newaxis, :]
        )
        face_logit = float(self._face_head.forward(face_embed)[0, 0])
        action_logit = float(self._action_head.forward(action_embed)[0, 0])
        gate = float(sigmoid(self._gate.forward(
            np.concatenate([face_embed, action_embed], axis=1)
        )[:, 0])[0])
        return gate * face_logit + (1.0 - gate) * action_logit

    def predict_proba(self, video: Video) -> float:
        self._check_fitted()
        return probability(self._logit(video))
