"""FDASSNN (Gavrilescu & Vizireanu, 2019).

The original detects per-AU intensities with an Active Appearance
Model, then maps intensity vectors to stress with a small MLP.  The
re-implementation keeps that bottleneck: coarse per-region activation
intensities (AAM-grade, conflating AUs that share a region) feed an
MLP -- no access to raw pixels or temporal structure.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SupervisedBaseline, fit_logistic, probability
from repro.baselines.features import region_intensity_features
from repro.datasets.base import StressDataset
from repro.nn.layers import MLP
from repro.rng import make_rng
from repro.video.frame import Video


class FDASSNN(SupervisedBaseline):
    """Per-region AU intensity features into an MLP."""

    name = "FDASSNN"

    def __init__(self, hidden_dim: int = 16, epochs: int = 300,
                 lr: float = 5e-3):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self._mlp: MLP | None = None

    def fit(self, train_data: StressDataset, seed: int = 0) -> None:
        features = np.stack([
            region_intensity_features(sample.video) for sample in train_data
        ])
        labels = train_data.labels.astype(np.float64)
        self._mlp = MLP([features.shape[1], self.hidden_dim, 1],
                        make_rng(seed, "fdassnn"), name="fdassnn")
        fit_logistic(
            self._mlp,
            lambda x: self._mlp.forward(x)[:, 0],
            lambda g: self._mlp.backward(g[:, np.newaxis]),
            features, labels, self.epochs, self.lr,
        )
        self._fitted = True

    def predict_proba(self, video: Video) -> float:
        self._check_fitted()
        features = region_intensity_features(video)[np.newaxis, :]
        return probability(float(self._mlp.forward(features)[0, 0]))
