"""Singh et al. (Microprocessors & Microsystems 2022).

Stress/anxiety/depression detection from surveillance video with a
generic ResNet-101 backbone.  The defining property is *generic deep
features* -- a high-capacity encoder not specialised for faces, fed
with single frames (surveillance footage rarely yields clean keyframe
pairs).  The re-implementation uses the expressive frame only (no
neutral-frame differencing, losing identity/lighting cancellation) and
a deeper MLP, which lands it in the mid-field as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SupervisedBaseline, fit_logistic, probability
from repro.baselines.features import frame_patch_features
from repro.datasets.base import StressDataset
from repro.nn.layers import MLP
from repro.rng import make_rng
from repro.video.frame import Video


class SinghResNet(SupervisedBaseline):
    """Generic deep features from the expressive frame only."""

    name = "Singh et al."

    def __init__(self, hidden_dims: tuple[int, int] = (24, 12),
                 epochs: int = 180, lr: float = 5e-3):
        super().__init__()
        self.hidden_dims = hidden_dims
        self.epochs = epochs
        self.lr = lr
        self._mlp: MLP | None = None

    @staticmethod
    def _features(video: Video) -> np.ndarray:
        # Surveillance-grade input: a single frame at coarse
        # resolution, no neutral-frame differencing.
        expressive, __ = video.keyframes
        return frame_patch_features(expressive, grid=8)

    def fit(self, train_data: StressDataset, seed: int = 0) -> None:
        features = np.stack([
            self._features(sample.video) for sample in train_data
        ])
        labels = train_data.labels.astype(np.float64)
        dims = [features.shape[1], *self.hidden_dims, 1]
        self._mlp = MLP(dims, make_rng(seed, "singh"), name="singh")
        fit_logistic(
            self._mlp,
            lambda x: self._mlp.forward(x)[:, 0],
            lambda g: self._mlp.backward(g[:, np.newaxis]),
            features, labels, self.epochs, self.lr,
            weight_decay=1e-4,
        )
        self._fitted = True

    def predict_proba(self, video: Video) -> float:
        self._check_fitted()
        features = self._features(video)[np.newaxis, :]
        return probability(float(self._mlp.forward(features)[0, 0]))
