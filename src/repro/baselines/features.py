"""Shared feature extractors for the baselines.

Each baseline sees the substrate through the lens its original paper
used: per-frame patch grids (CNN-style), landmark point samples
(geometry-style), per-region statistics (AAM-style), or keyframe pairs
(the TSDNET convention the main model also uses).
"""

from __future__ import annotations

import numpy as np

from repro.facs.regions import REGIONS
from repro.model.features import patch_means
from repro.video.frame import Video

#: Coarser grid for per-frame features (baselines that look at every
#: frame pay a dimensionality price, as their originals did).
FRAME_GRID: int = 8


def frame_patch_features(frame: np.ndarray, grid: int = FRAME_GRID) -> np.ndarray:
    """Rescaled patch means of a single frame."""
    return (patch_means(frame, grid) - 0.5) * 4.0


def per_frame_features(video: Video, grid: int = FRAME_GRID) -> np.ndarray:
    """Per-frame patch features, shape (T, grid*grid)."""
    return np.stack([
        frame_patch_features(video.frame(t), grid)
        for t in range(video.num_frames)
    ])


def landmark_point_features(frame: np.ndarray,
                            points_per_region: int = 7) -> np.ndarray:
    """Pixel samples around each facial region's landmark lattice --
    the 49-point facial geometry Gao et al. feed their SVM.  Point
    samples (vs patch averages) are inherently noisy, which is the
    bottleneck that keeps geometry-only methods mid-field."""
    size = frame.shape[0]
    values = []
    for region in REGIONS.values():
        rows = np.linspace(region.row_start, region.row_stop - 1,
                           points_per_region) * size / 96.0
        cols = np.linspace(region.col_start, region.col_stop - 1,
                           points_per_region) * size / 96.0
        for r, c in zip(rows.astype(int), cols.astype(int)):
            values.append(frame[r, c])
    return (np.asarray(values) - 0.5) * 4.0


def region_intensity_features(video: Video,
                              estimation_noise: float = 0.08) -> np.ndarray:
    """AAM-style per-region activation intensities: mean and standard
    deviation of the expressive-minus-neutral difference inside each
    facial region (14 dims for 7 regions).

    Active Appearance Models estimate AU intensities with substantial
    error compared to modern detectors; ``estimation_noise`` injects
    that (deterministic per-video) estimation error, which is what
    keeps FDASSNN in the lower band of Table I.
    """
    from repro.rng import make_rng

    expressive, neutral = video.keyframes
    difference = expressive - neutral
    features = []
    for region in REGIONS.values():
        mask = region.mask(expressive.shape[0])
        features.append(difference[mask].mean() * 4.0)
        features.append(difference[mask].std() * 4.0)
    values = np.asarray(features)
    if estimation_noise > 0:
        rng = make_rng(video.spec.seed, f"aam-noise:{video.video_id}")
        values = values + rng.normal(0.0, estimation_noise, values.shape)
    return values


def keyframe_pair_features(video: Video, grid: int = 12) -> np.ndarray:
    """The keyframe-pair features the main model uses (shared
    convention from Zhang et al.)."""
    from repro.model.features import video_features

    return video_features(video, grid)
