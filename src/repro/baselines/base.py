"""Baseline interface and shared fitting utilities."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.datasets.base import StressDataset
from repro.errors import ModelError
from repro.nn.layers import Module
from repro.nn.optim import Adam
from repro.nn.tensorops import binary_cross_entropy_with_logits, sigmoid
from repro.video.frame import Video


class SupervisedBaseline(ABC):
    """A trainable stress detector with the classic fit/predict API."""

    #: Human-readable method name (the Table I row label).
    name: str = "baseline"

    def __init__(self) -> None:
        self._fitted = False

    @abstractmethod
    def fit(self, train_data: StressDataset, seed: int = 0) -> None:
        """Train on a labelled dataset."""

    @abstractmethod
    def predict_proba(self, video: Video) -> float:
        """Probability that the subject is stressed."""

    def predict(self, video: Video) -> int:
        """Hard stress label (1 = stressed)."""
        return int(self.predict_proba(video) > 0.5)

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise ModelError(
                f"{self.name} must be fitted before prediction"
            )


def fit_logistic(
    module: Module,
    forward,
    backward,
    features: np.ndarray,
    labels: np.ndarray,
    epochs: int,
    lr: float,
    weight_decay: float = 0.0,
    feature_noise: float = 0.0,
    seed: int = 0,
) -> None:
    """Generic BCE fitting loop shared by the baselines.

    ``forward(features) -> logits (N,)`` and ``backward(grad (N,))``
    must wrap the module's own passes.  ``feature_noise`` adds
    Gaussian input augmentation (redrawn per epoch), the cheap
    regularizer against subject overfitting.
    """
    from repro.rng import make_rng

    optimizer = Adam(module.parameters(), lr=lr, weight_decay=weight_decay)
    labels = np.asarray(labels, dtype=np.float64)
    noise_rng = make_rng(seed, "fit-logistic-noise")
    for _ in range(epochs):
        optimizer.zero_grad()
        inputs = features
        if feature_noise > 0:
            inputs = features + noise_rng.normal(0.0, feature_noise,
                                                 features.shape)
        logits = forward(inputs)
        __, grad = binary_cross_entropy_with_logits(logits, labels)
        backward(grad)
        optimizer.step()


def probability(logit: float) -> float:
    """Scalar logistic probability."""
    return float(sigmoid(np.array(logit))[()])
