"""Zhang et al. (ICSIP 2019): frame-level CNN emotion + two-thirds rule.

The original runs a CNN emotion classifier -- pre-trained on facial
expression recognition corpora -- on every frame and declares stress
when two thirds of the frames show anger, sadness or fear.  The
re-implementation keeps all three bottlenecks:

- the frame classifier is *pre-trained on a separate many-subject
  emotion corpus* (which is where its cross-subject generalization
  comes from) and never sees the target dataset's pixels at training
  time;
- decisions are per-frame, discarding temporal structure;
- the video rule is the *fixed* two-thirds threshold; only the
  emotion detector's operating point is calibrated on the target
  training set.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.baselines.base import SupervisedBaseline, fit_logistic
from repro.baselines.features import per_frame_features
from repro.datasets.base import StressDataset
from repro.facs.stress_priors import default_stress_prior
from repro.nn.layers import MLP
from repro.rng import derive_seed, make_rng
from repro.video.frame import Video

#: The paper's fixed decision rule.
TWO_THIRDS: float = 2.0 / 3.0

#: Emotion pre-training corpus size (subjects matter more than clips).
_FER_SAMPLES: int = 800
_FER_SUBJECTS: int = 60


@lru_cache(maxsize=4)
def _pretrained_emotion_classifier(hidden_dim: int, seed: int) -> MLP:
    """Frame-level negative-emotion classifier trained on a broad
    synthetic emotion corpus (many subjects, none from the target
    datasets)."""
    from repro.datasets.synth import SynthesisConfig, records_to_samples, synthesize_dataset

    config = SynthesisConfig(
        name="fer-corpus",
        num_samples=_FER_SAMPLES,
        num_subjects=_FER_SUBJECTS,
        num_stressed=_FER_SAMPLES // 2,
        prior=default_stress_prior(coupling=1.8),
        label_noise=0.05,
        noise_scale=0.03,
    )
    corpus = records_to_samples(
        synthesize_dataset(config, derive_seed(seed, "zhang-fer"))
    )
    frames, labels = [], []
    for sample in corpus:
        matrix = per_frame_features(sample.video)
        frames.append(matrix)
        labels.extend([sample.label] * matrix.shape[0])
    features = np.concatenate(frames, axis=0)
    frame_labels = np.asarray(labels, dtype=np.float64)
    classifier = MLP([features.shape[1], hidden_dim, 1],
                     make_rng(seed, "zhang"), name="zhang")
    fit_logistic(
        classifier,
        lambda x: classifier.forward(x)[:, 0],
        lambda g: classifier.backward(g[:, np.newaxis]),
        features, frame_labels, epochs=250, lr=5e-3,
        weight_decay=1e-3, feature_noise=0.1, seed=seed,
    )
    return classifier


class ZhangCNN(SupervisedBaseline):
    """Pre-trained frame-emotion polarity with the fixed 2/3 rule."""

    name = "Zhang et al."

    def __init__(self, hidden_dim: int = 24, epochs: int = 200,
                 lr: float = 5e-3):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self._frame_clf: MLP | None = None
        self._bias: float = 0.0

    def fit(self, train_data: StressDataset, seed: int = 0) -> None:
        self._frame_clf = _pretrained_emotion_classifier(self.hidden_dim,
                                                         seed % 4)
        # Calibrate the emotion detector's operating point: the 2/3
        # rule is fixed, so the per-frame decision threshold must sit
        # where that rule discriminates on the target data.
        per_video_logits = [
            self._frame_clf.forward(per_frame_features(s.video))[:, 0]
            for s in train_data
        ]
        video_labels = train_data.labels
        candidates = np.quantile(np.concatenate(per_video_logits),
                                 np.linspace(0.02, 0.98, 41))
        best_bias, best_accuracy = 0.0, -1.0
        for bias in candidates:
            ratios = np.array([
                float((logits - bias > 0).mean())
                for logits in per_video_logits
            ])
            accuracy = ((ratios >= TWO_THIRDS).astype(int)
                        == video_labels).mean()
            if accuracy > best_accuracy:
                best_accuracy, best_bias = accuracy, float(bias)
        self._bias = best_bias
        self._fitted = True

    def predict_proba(self, video: Video) -> float:
        self._check_fitted()
        logits = self._frame_clf.forward(per_frame_features(video))[:, 0]
        negative_ratio = float((logits - self._bias > 0).mean())
        return float(
            1.0 / (1.0 + np.exp(-8.0 * (negative_ratio - TWO_THIRDS)))
        )
