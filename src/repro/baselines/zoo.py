"""Baseline registry."""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.base import SupervisedBaseline
from repro.baselines.ding import DingKnowledge
from repro.baselines.fdassnn import FDASSNN
from repro.baselines.gao import GaoSVM
from repro.baselines.jeon import JeonSpatioTemporal
from repro.baselines.marlin import Marlin
from repro.baselines.singh import SinghResNet
from repro.baselines.tsdnet import TSDNet
from repro.baselines.zhang import ZhangCNN
from repro.errors import ModelError

_ZOO: dict[str, Callable[[], SupervisedBaseline]] = {
    "fdassnn": FDASSNN,
    "gao": GaoSVM,
    "zhang": ZhangCNN,
    "jeon": JeonSpatioTemporal,
    "tsdnet": TSDNet,
    "marlin": Marlin,
    "singh": SinghResNet,
    "ding": DingKnowledge,
}


def baseline_zoo() -> tuple[str, ...]:
    """Keys of all registered baselines, in Table I order."""
    return tuple(_ZOO)


def make_baseline(key: str) -> SupervisedBaseline:
    """Instantiate a fresh baseline by registry key."""
    try:
        factory = _ZOO[key]
    except KeyError:
        raise ModelError(
            f"unknown baseline {key!r}; known: {sorted(_ZOO)}"
        ) from None
    return factory()
