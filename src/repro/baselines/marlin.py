"""MARLIN (Cai et al., CVPR 2023): masked-autoencoder facial features.

The original pre-trains a masked autoencoder over facial regions on
unlabelled face video, then probes the frozen representation.  The
re-implementation performs real masked-patch reconstruction
pre-training (mask a random subset of keyframe patches, train an
encoder/decoder pair to reconstruct them) on the training videos
*without labels*, then fits a linear probe on the frozen encoder.
Pre-training gives MARLIN robust features -- which is why it lands
above the purely supervised baselines in Table I.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SupervisedBaseline, fit_logistic, probability
from repro.baselines.features import keyframe_pair_features
from repro.datasets.base import StressDataset
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.rng import make_rng
from repro.video.frame import Video


class Marlin(SupervisedBaseline):
    """Masked-autoencoder pre-training + linear probe."""

    name = "MARLIN"

    def __init__(self, embed_dim: int = 56, mask_ratio: float = 0.35,
                 pretrain_epochs: int = 250, probe_epochs: int = 300,
                 finetune_epochs: int = 200, lr: float = 5e-3):
        super().__init__()
        self.embed_dim = embed_dim
        self.mask_ratio = mask_ratio
        self.pretrain_epochs = pretrain_epochs
        self.probe_epochs = probe_epochs
        self.finetune_epochs = finetune_epochs
        self.lr = lr
        self._encoder: Linear | None = None
        self._probe: Linear | None = None

    def fit(self, train_data: StressDataset, seed: int = 0) -> None:
        rng = make_rng(seed, "marlin")
        features = np.stack([
            keyframe_pair_features(sample.video) for sample in train_data
        ])
        in_dim = features.shape[1]
        self._encoder = Linear(in_dim, self.embed_dim, rng, "marlin.enc")
        decoder = Linear(self.embed_dim, in_dim, rng, "marlin.dec")

        # Masked reconstruction pre-training (labels unused).
        params = self._encoder.parameters() + decoder.parameters()
        optimizer = Adam(params, lr=self.lr)
        mask_rng = make_rng(seed, "marlin.mask")
        count = features.shape[0]
        for _ in range(self.pretrain_epochs):
            optimizer.zero_grad()
            mask = mask_rng.random(features.shape) >= self.mask_ratio
            masked = features * mask
            reconstruction = decoder.forward(self._encoder.forward(masked))
            # MSE on the *masked* entries only.
            error = (reconstruction - features) * (~mask)
            grad = 2.0 * error / max(1, (~mask).sum())
            self._encoder.backward(decoder.backward(grad))
            optimizer.step()

        # Frozen-encoder linear probe ...
        embeddings = self._encoder.forward(features)
        labels = train_data.labels.astype(np.float64)
        self._probe = Linear(self.embed_dim, 1, rng, "marlin.probe")
        fit_logistic(
            self._probe,
            lambda x: self._probe.forward(x)[:, 0],
            lambda g: self._probe.backward(g[:, np.newaxis]),
            embeddings, labels, self.probe_epochs, self.lr,
        )
        # ... then supervised fine-tuning of encoder + probe together
        # at a lower learning rate, as in the original's downstream
        # adaptation.  Pre-training + fine-tuning is what lifts MARLIN
        # above the purely supervised baselines in Table I.
        def forward(x):
            return self._probe.forward(self._encoder.forward(x))[:, 0]

        def backward(grad):
            self._encoder.backward(
                self._probe.backward(grad[:, np.newaxis])
            )

        class _Joint:
            def parameters(inner):
                return (self._encoder.parameters()
                        + self._probe.parameters())

        fit_logistic(_Joint(), forward, backward, features, labels,
                     self.finetune_epochs, self.lr * 0.4,
                     weight_decay=1e-4)
        self._fitted = True

    def predict_proba(self, video: Video) -> float:
        self._check_fitted()
        embedding = self._encoder.forward(
            keyframe_pair_features(video)[np.newaxis, :]
        )
        return probability(float(self._probe.forward(embedding)[0, 0]))
