"""Gao et al. (ICIP 2014): landmark-geometry SVM + negative-frame ratio.

The original extracts 49 facial feature points per frame, classifies
each frame's emotion polarity with an SVM, and calls the video
stressed when the fraction of negative frames exceeds a threshold.
The re-implementation keeps both bottlenecks: per-frame landmark
samples only (no appearance), and the frame-majority decision rule
that discards which cues fired.  The linear frame classifier is
trained with a hinge-style logistic surrogate against the video label
(frame labels are not available, as in the original's weak
supervision), and the ratio threshold is tuned on the training set.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SupervisedBaseline, fit_logistic
from repro.baselines.features import landmark_point_features
from repro.datasets.base import StressDataset
from repro.nn.layers import Linear
from repro.rng import make_rng
from repro.video.frame import Video


class GaoSVM(SupervisedBaseline):
    """Per-frame landmark classifier with ratio rule."""

    name = "Gao et al."

    def __init__(self, epochs: int = 80, lr: float = 5e-3):
        super().__init__()
        self.epochs = epochs
        self.lr = lr
        self._frame_clf: Linear | None = None
        self._threshold: float = 0.5

    def _frame_matrix(self, video: Video) -> np.ndarray:
        return np.stack([
            landmark_point_features(video.frame(t))
            for t in range(video.num_frames)
        ])

    def fit(self, train_data: StressDataset, seed: int = 0) -> None:
        frames, labels = [], []
        for sample in train_data:
            matrix = self._frame_matrix(sample.video)
            frames.append(matrix)
            labels.extend([sample.label] * matrix.shape[0])
        features = np.concatenate(frames, axis=0)
        frame_labels = np.asarray(labels, dtype=np.float64)
        self._frame_clf = Linear(features.shape[1], 1,
                                 make_rng(seed, "gao"), name="gao")
        fit_logistic(
            self._frame_clf,
            lambda x: self._frame_clf.forward(x)[:, 0],
            lambda g: self._frame_clf.backward(g[:, np.newaxis]),
            features, frame_labels, self.epochs, self.lr,
            weight_decay=8e-3,
        )
        # Tune the negative-frame ratio threshold on training videos.
        ratios = np.array([
            self._negative_ratio(sample.video) for sample in train_data
        ])
        video_labels = train_data.labels
        candidates = np.unique(ratios)
        best_threshold, best_accuracy = 0.5, -1.0
        for threshold in candidates:
            accuracy = ((ratios >= threshold).astype(int) == video_labels).mean()
            if accuracy > best_accuracy:
                best_accuracy, best_threshold = accuracy, float(threshold)
        self._threshold = best_threshold
        self._fitted = True

    def _negative_ratio(self, video: Video) -> float:
        logits = self._frame_clf.forward(self._frame_matrix(video))[:, 0]
        return float((logits > 0).mean())

    def predict_proba(self, video: Video) -> float:
        self._check_fitted()
        ratio = self._negative_ratio(video)
        # Ratio relative to the tuned threshold, squashed to (0, 1).
        return float(1.0 / (1.0 + np.exp(-8.0 * (ratio - self._threshold))))
