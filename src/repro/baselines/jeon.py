"""Jeon et al. (Sensors 2021): spatio-temporal attention stress model.

The original combines ResNet-18 frame encodings with facial-landmark
features and pools frames through a learned temporal attention module.
The re-implementation keeps the structure: per-frame patch + landmark
features, a learned frame embedding, temporal attention weights, and a
classifier on the attention-pooled video representation -- trained
end-to-end through the attention.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SupervisedBaseline, probability
from repro.baselines.features import landmark_point_features, per_frame_features
from repro.datasets.base import StressDataset
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.tensorops import binary_cross_entropy_with_logits, softmax
from repro.rng import make_rng
from repro.video.frame import Video


class JeonSpatioTemporal(SupervisedBaseline):
    """Frame + landmark features with temporal attention pooling."""

    name = "Jeon et al."

    def __init__(self, embed_dim: int = 10, epochs: int = 100,
                 lr: float = 5e-3):
        super().__init__()
        self.embed_dim = embed_dim
        self.epochs = epochs
        self.lr = lr
        self._embed: Linear | None = None
        self._attend: Linear | None = None
        self._classify: Linear | None = None

    def _frame_matrix(self, video: Video) -> np.ndarray:
        patches = per_frame_features(video)
        landmarks = np.stack([
            landmark_point_features(video.frame(t))
            for t in range(video.num_frames)
        ])
        return np.concatenate([patches, landmarks], axis=1)

    def fit(self, train_data: StressDataset, seed: int = 0) -> None:
        rng = make_rng(seed, "jeon")
        videos = [self._frame_matrix(sample.video) for sample in train_data]
        labels = train_data.labels.astype(np.float64)
        in_dim = videos[0].shape[1]
        self._embed = Linear(in_dim, self.embed_dim, rng, name="jeon.embed")
        self._attend = Linear(self.embed_dim, 1, rng, name="jeon.attend")
        self._classify = Linear(self.embed_dim, 1, rng, name="jeon.classify")
        params = (self._embed.parameters() + self._attend.parameters()
                  + self._classify.parameters())
        optimizer = Adam(params, lr=self.lr, weight_decay=1e-4)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            logits = np.array([
                self._video_logit_with_grad(frames, labels[i], len(videos))
                for i, frames in enumerate(videos)
            ])
            optimizer.step()
        self._fitted = True

    def _video_logit_with_grad(self, frames: np.ndarray, label: float,
                               num_videos: int) -> float:
        """Forward one video and accumulate gradients in place."""
        embeds = self._embed.forward(frames)                    # (T, D)
        scores = self._attend.forward(embeds)[:, 0]             # (T,)
        weights = softmax(scores)                               # (T,)
        pooled = weights @ embeds                               # (D,)
        logit = float(self._classify.forward(pooled[np.newaxis, :])[0, 0])
        __, grad = binary_cross_entropy_with_logits(
            np.array([logit]), np.array([label])
        )
        grad_scalar = float(grad[0]) / num_videos
        # Backprop: classifier -> pooled.
        grad_pooled = self._classify.backward(
            np.array([[grad_scalar]])
        )[0]
        # pooled = sum_t w_t e_t: gradient to embeds and weights.
        grad_embeds = np.outer(weights, grad_pooled)
        grad_weights = embeds @ grad_pooled
        # softmax backward to attention scores.
        grad_scores = weights * (grad_weights - weights @ grad_weights)
        grad_embeds += self._attend.backward(
            grad_scores[:, np.newaxis]
        )
        self._embed.backward(grad_embeds)
        return logit

    def _video_logit(self, frames: np.ndarray) -> float:
        embeds = self._embed.forward(frames)
        weights = softmax(self._attend.forward(embeds)[:, 0])
        pooled = weights @ embeds
        return float(self._classify.forward(pooled[np.newaxis, :])[0, 0])

    def predict_proba(self, video: Video) -> float:
        self._check_fitted()
        return probability(self._video_logit(self._frame_matrix(video)))
