"""Ding et al. (ACM MM 2024): content + semantics + world knowledge.

The strongest baseline in Table I: it queries an off-the-shelf large
foundation model for facial-action descriptions and fuses them with
visual features for stress detection.  The re-implementation does
literally that: the frozen GPT-4o proxy describes each video (world
knowledge, no task tuning), and a fusion MLP over [vision features,
described-AU vector] is trained supervised.  It trails our method
because its descriptions are un-refined generic-model output and its
fusion never learns to *reason* over them (no chain, no DPO).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SupervisedBaseline, fit_logistic, probability
from repro.baselines.features import keyframe_pair_features
from repro.datasets.base import StressDataset
from repro.model.generation import GenerationConfig
from repro.model.pretrained import load_offtheshelf
from repro.nn.layers import MLP
from repro.rng import derive_seed, make_rng
from repro.video.frame import Video


class DingKnowledge(SupervisedBaseline):
    """LFM facial-action descriptions fused with vision features."""

    name = "Ding et al."

    def __init__(self, vendor: str = "gpt-4o", hidden_dim: int = 48,
                 epochs: int = 350, lr: float = 5e-3):
        super().__init__()
        self.vendor = vendor
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self._mlp: MLP | None = None
        self._describer = None
        self._seed = 0

    #: How many times the LFM is queried per clip; the original's
    #: pipeline prompts carefully and aggregates, which averages out
    #: per-query API noise.
    NUM_QUERIES: int = 5

    def _description_vector(self, video: Video) -> np.ndarray:
        vectors = []
        for query in range(self.NUM_QUERIES):
            config = GenerationConfig(
                temperature=0.0,
                seed=derive_seed(self._seed,
                                 f"ding:{video.video_id}:{query}"),
            )
            vectors.append(self._describer.describe(video, config).to_vector())
        return np.mean(vectors, axis=0)

    def _features(self, video: Video) -> np.ndarray:
        return np.concatenate([
            keyframe_pair_features(video),
            self._description_vector(video),
        ])

    def fit(self, train_data: StressDataset, seed: int = 0) -> None:
        self._seed = seed
        self._describer = load_offtheshelf(self.vendor)
        features = np.stack([
            self._features(sample.video) for sample in train_data
        ])
        labels = train_data.labels.astype(np.float64)
        self._mlp = MLP([features.shape[1], self.hidden_dim, 1],
                        make_rng(seed, "ding"), name="ding")
        fit_logistic(
            self._mlp,
            lambda x: self._mlp.forward(x)[:, 0],
            lambda g: self._mlp.backward(g[:, np.newaxis]),
            features, labels, self.epochs, self.lr,
            weight_decay=1e-3, feature_noise=0.15, seed=seed,
        )
        self._fitted = True

    def predict_proba(self, video: Video) -> float:
        self._check_fitted()
        features = self._features(video)[np.newaxis, :]
        return probability(float(self._mlp.forward(features)[0, 0]))
