"""Supervised stress-detection baselines (paper Table I).

Each baseline is a faithful lightweight re-implementation on the shared
synthetic substrate, keeping the *information bottleneck* that defines
the original method -- which is what orders them in Table I:

- :class:`~repro.baselines.fdassnn.FDASSNN` -- AAM-style per-region AU
  intensities into an MLP (Gavrilescu & Vizireanu 2019);
- :class:`~repro.baselines.gao.GaoSVM` -- per-frame landmark geometry
  into a linear classifier, negative-frame-ratio rule (Gao et al. 2014);
- :class:`~repro.baselines.zhang.ZhangCNN` -- per-frame emotion
  polarity with the two-thirds rule (Zhang et al. 2019);
- :class:`~repro.baselines.jeon.JeonSpatioTemporal` -- frame + landmark
  features with temporal attention (Jeon et al. 2021);
- :class:`~repro.baselines.tsdnet.TSDNet` -- two-stream face/action
  network with attention fusion (Zhang et al. 2020);
- :class:`~repro.baselines.marlin.Marlin` -- masked-autoencoder
  pre-training then a linear probe (Cai et al. 2023);
- :class:`~repro.baselines.singh.SinghResNet` -- generic deep features
  from surveillance-style frames (Singh et al. 2022);
- :class:`~repro.baselines.ding.DingKnowledge` -- off-the-shelf LFM
  facial-action descriptions fused with vision (Ding et al. 2024),
  the strongest baseline.
"""

from repro.baselines.base import SupervisedBaseline
from repro.baselines.ding import DingKnowledge
from repro.baselines.fdassnn import FDASSNN
from repro.baselines.gao import GaoSVM
from repro.baselines.jeon import JeonSpatioTemporal
from repro.baselines.marlin import Marlin
from repro.baselines.singh import SinghResNet
from repro.baselines.tsdnet import TSDNet
from repro.baselines.zhang import ZhangCNN
from repro.baselines.zoo import baseline_zoo, make_baseline

__all__ = [
    "DingKnowledge",
    "FDASSNN",
    "GaoSVM",
    "JeonSpatioTemporal",
    "Marlin",
    "SinghResNet",
    "SupervisedBaseline",
    "TSDNet",
    "ZhangCNN",
    "baseline_zoo",
    "make_baseline",
]
