"""The dynamic micro-batcher.

One daemon worker thread drains a bounded request queue in batches:
a batch closes as soon as it holds ``max_batch_size`` requests *or*
the oldest queued request has waited ``max_wait_ms`` -- whichever
comes first.  Under burst load batches fill instantly (no added
latency); under trickle load a request waits at most ``max_wait_ms``
for company.

The queue is bounded: a submit past ``max_queue_depth`` is rejected
immediately with :class:`~repro.errors.ServiceOverloadedError`
(backpressure -- callers see the overload instead of unbounded
latency).  :meth:`MicroBatcher.close` performs a graceful shutdown by
default: no new submits are accepted, queued work drains, then the
worker exits; with ``drain=False`` pending requests fail with
:class:`~repro.errors.ServiceClosedError` instead.  ``close`` returns
whether the worker actually finished within the timeout, so a caller
can tell a clean drain from a still-running worker whose pending
futures would otherwise hang silently.

Requests may carry a :class:`~repro.reliability.deadlines.Deadline`:
after a batch is collected -- before any executor work -- requests
whose deadline has already expired are *shed* with
:class:`~repro.errors.DeadlineExceededError`.  Shedding at
batch-collection time (rather than at submit or inside the executor)
is deliberate: it is the last instant before model time is spent, so
the single worker thread never burns a forward pass for a caller that
has stopped waiting (DESIGN.md section 12).

Because every model call happens on the single worker thread, the
batcher also *serializes* access to the (stateful-during-forward)
foundation model -- see DESIGN.md section 10.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Sequence

from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.observability.tracing import span
from repro.reliability.deadlines import Deadline
from repro.serving.stats import ServiceStats


class _Pending:
    __slots__ = ("item", "future", "enqueued_at", "deadline")

    def __init__(self, item: Any, deadline: Deadline | None = None):
        self.item = item
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()
        self.deadline = deadline


class MicroBatcher:
    """Coalesces concurrent submissions into batches.

    Parameters
    ----------
    on_batch:
        Callback receiving the list of batched items; must return one
        outcome per item, in order.  An outcome that is an exception
        instance fails that item's future; anything else resolves it.
    max_batch_size / max_wait_ms / max_queue_depth:
        The flush and backpressure knobs described in the module
        docstring.
    stats:
        Optional :class:`ServiceStats` fed with per-request latencies
        and rejection counts.
    """

    def __init__(self, on_batch: Callable[[list[Any]], Sequence[Any]],
                 max_batch_size: int = 32, max_wait_ms: float = 2.0,
                 max_queue_depth: int = 256,
                 stats: ServiceStats | None = None,
                 name: str = "micro-batcher"):
        if max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ConfigError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self._on_batch = on_batch
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self.max_queue_depth = max_queue_depth
        self._stats = stats
        self._queue: deque[_Pending] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._drain_on_close = True
        self._worker = threading.Thread(target=self._run, name=name,
                                        daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------

    def submit(self, item: Any, deadline: Deadline | None = None) -> Future:
        """Enqueue one item; returns the future of its outcome.

        ``deadline`` marks when the caller stops caring: if it expires
        while the request is still queued, the request is shed with
        :class:`DeadlineExceededError` instead of executed.
        """
        pending = _Pending(item, deadline)
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "service is shut down; no new requests accepted")
            if len(self._queue) >= self.max_queue_depth:
                if self._stats is not None:
                    self._stats.record_rejected()
                raise ServiceOverloadedError(
                    f"request queue is full ({self.max_queue_depth} pending); "
                    "retry later or raise max_queue_depth"
                )
            self._queue.append(pending)
            if self._stats is not None:
                self._stats.record_submitted()
            self._wakeup.notify()
        return pending.future

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop the batcher.

        ``drain=True`` (graceful) processes everything already queued
        before the worker exits; ``drain=False`` fails pending futures
        with :class:`ServiceClosedError`.  Idempotent.

        Returns ``True`` when the worker has fully exited (drain
        complete, every pending future resolved) and ``False`` when it
        is still running at ``timeout`` -- in which case pending
        futures may still be unresolved and the caller should not
        assume the drain finished.  (Previously this returned ``None``
        either way, so a timed-out close was indistinguishable from a
        clean one and hung futures had no signal.)
        """
        with self._lock:
            if not self._closed:
                self._closed = True
                self._drain_on_close = drain
            self._wakeup.notify_all()
        self._worker.join(timeout)
        return not self._worker.is_alive()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------

    def _collect_batch(self) -> list[_Pending]:
        """Block until a batch is ready (or the batcher is done).

        Returns an empty list only when closed with an empty queue.
        """
        with self._lock:
            while not self._queue and not self._closed:
                self._wakeup.wait()
            if not self._queue:
                return []
            if self._closed and not self._drain_on_close:
                failed = list(self._queue)
                self._queue.clear()
                for pending in failed:
                    pending.future.set_exception(
                        ServiceClosedError("service shut down before "
                                           "this request was processed"))
                return []
            deadline = self._queue[0].enqueued_at + self.max_wait_s
            while (len(self._queue) < self.max_batch_size
                   and not self._closed):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._wakeup.wait(timeout=remaining)
            batch = []
            while self._queue and len(batch) < self.max_batch_size:
                batch.append(self._queue.popleft())
            return batch

    def _shed_expired(self, batch: list[_Pending]) -> list[_Pending]:
        """Fail already-expired requests; return the still-live rest.

        Runs after collection and before ``on_batch`` -- the last
        moment before model time is spent -- and outside the queue
        lock, so a future callback can safely re-enter ``submit``.
        """
        now = time.monotonic()
        live: list[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and pending.deadline.expired(now):
                if self._stats is not None:
                    self._stats.record_shed(now - pending.enqueued_at)
                pending.future.set_exception(DeadlineExceededError(
                    "deadline expired after "
                    f"{now - pending.enqueued_at:.3f}s in queue; request "
                    "shed before execution"))
            else:
                live.append(pending)
        return live

    def _run(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch:
                batch = self._shed_expired(batch)
            if not batch:
                with self._lock:
                    if self._closed and not self._queue:
                        return
                continue
            started = time.monotonic()
            try:
                with span("serve.batch", size=len(batch)):
                    outcomes = self._on_batch([p.item for p in batch])
                if len(outcomes) != len(batch):  # pragma: no cover - guard
                    raise RuntimeError(
                        f"batch callback returned {len(outcomes)} outcomes "
                        f"for {len(batch)} items")
            except BaseException as exc:  # noqa: BLE001 - worker must survive
                outcomes = [exc] * len(batch)
            now = time.monotonic()
            if self._stats is not None:
                # Latency split: time each request sat queued before
                # this batch started vs the batch's execution time.
                self._stats.record_batch_split(
                    [started - p.enqueued_at for p in batch], now - started)
            for pending, outcome in zip(batch, outcomes):
                failed = isinstance(outcome, BaseException)
                if self._stats is not None:
                    self._stats.record_completion(now - pending.enqueued_at,
                                                  failed=failed)
                if failed:
                    pending.future.set_exception(outcome)
                else:
                    pending.future.set_result(outcome)
