"""Content-addressed LRU caches for the serving layer.

Serving traffic is heavily repetitive -- the same clip arrives from
many clients, and the ``use_chain``/retriever pipeline variants share
their Describe work -- so the service keeps one bounded LRU cache per
chain stage, keyed by a *content hash* of the video:

- the **describe cache** stores the greedy description (plus its
  rendered text and, when test-time refinement is on, the refined
  description);
- the **assess cache** stores the final assessment ``(logit, prob,
  label)`` per ``(content, description)`` pair;
- the **highlight cache** stores the rationale ordering and its
  rendered text per ``(content, description, label)``.

Every cached value was produced by exactly the serial
:meth:`~repro.cot.chain.StressChainPipeline.predict` operations, and
all three steps are deterministic under greedy decoding, so replaying
a cached value is bitwise-identical to recomputing it.

The content hash digests the :class:`~repro.video.frame.VideoSpec`
rather than rendered pixels: rendering is fully deterministic given
the spec (including its render seed), so the spec *is* the content in
latent form, and hashing ~1 KB of latent state instead of ~150 KB of
pixels keeps the cache-hit path far cheaper than a model call.  Keys
are memoized per ``(video_id, render seed)``, the same globally-unique
pair the model's feature cache relies on.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.facs.descriptions import FacialDescription
from repro.reliability.faults import fault_point
from repro.video.frame import Video


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counters of one LRU cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A thread-safe bounded LRU map.

    ``capacity=0`` disables the cache (every ``get`` misses, ``put``
    is a no-op), which is how the service runs in cache-off mode.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ConfigError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Any) -> Any | None:
        """The cached value, or ``None`` on a miss (values are never
        ``None``)."""
        fault_point("cache.get")
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              size=len(self._data), capacity=self.capacity)


# ----------------------------------------------------------------------
# Content keys
# ----------------------------------------------------------------------


def video_content_hash(video: Video) -> str:
    """Hex digest of everything that determines the video's pixels.

    Digests the latent spec -- per-frame AU intensities, identity
    embedding, capture parameters, render seed -- plus the renderer's
    frame size.  Rendering is deterministic given exactly these inputs
    (see :class:`~repro.video.frame.Video`), so equal digests imply
    pixel-identical clips.
    """
    spec = video.spec
    digest = hashlib.sha1()
    au = np.ascontiguousarray(spec.au_intensities, dtype=np.float64)
    digest.update(struct.pack("<qq", *au.shape))
    digest.update(au.tobytes())
    digest.update(
        np.ascontiguousarray(spec.identity, dtype=np.float64).tobytes()
    )
    digest.update(struct.pack(
        "<dddqq", spec.lighting, spec.noise_scale, spec.occlusion_rate,
        spec.seed, video.frame_size,
    ))
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class DescribeEntry:
    """Cached output of the Describe stage for one video content.

    ``description`` is the greedy draw the serial path records in the
    dialogue session; ``rendered`` is its text.  ``refined`` carries
    the test-time-refined description when the pipeline refines (the
    refinement draw is seeded by ``video_id``, so refined entries are
    cached under a key that includes it).
    """

    description: FacialDescription
    rendered: str
    refined: FacialDescription | None = None


@dataclass(frozen=True, slots=True)
class AssessEntry:
    """Cached output of the Assess stage: the final (post in-context
    shift) logit and the prob/label floats derived from it."""

    logit: float
    prob: float
    label: int


@dataclass(frozen=True, slots=True)
class HighlightEntry:
    """Cached output of the Highlight stage."""

    rationale: tuple[int, ...]
    rendered: str | None


class StageCaches:
    """The per-stage caches one service (or ``run_many`` call) owns,
    plus the content-key memo that makes repeated lookups cheap."""

    def __init__(self, describe_capacity: int = 2048,
                 assess_capacity: int = 4096,
                 highlight_capacity: int = 4096,
                 key_memo_capacity: int = 8192):
        self.describe = LRUCache(describe_capacity)
        self.assess = LRUCache(assess_capacity)
        self.highlight = LRUCache(highlight_capacity)
        self._key_memo = LRUCache(key_memo_capacity)

    def content_key(self, video: Video) -> str:
        """Memoized :func:`video_content_hash`.

        The memo key is ``(video_id, render seed)`` -- the repo-wide
        contract (see :meth:`FoundationModel.features`) is that this
        pair is globally unique per rendered content.
        """
        memo_key = (video.video_id, video.spec.seed)
        key = self._key_memo.get(memo_key)
        if key is None:
            key = video_content_hash(video)
            self._key_memo.put(memo_key, key)
        return key

    def clear(self) -> None:
        self.describe.clear()
        self.assess.clear()
        self.highlight.clear()
        self._key_memo.clear()

    def stats(self) -> dict[str, CacheStats]:
        return {
            "describe": self.describe.stats(),
            "assess": self.assess.stats(),
            "highlight": self.highlight.stats(),
        }
