"""The online serving layer: dynamic micro-batching over the chain.

Public surface:

- :class:`StressService` / :class:`ServiceConfig` -- the concurrent
  predict front-end with micro-batching, per-stage LRU caches,
  bounded-queue backpressure, graceful shutdown, and counters;
- :class:`SerialDispatcher` -- the global-lock baseline;
- :class:`MicroBatcher` -- the reusable batching primitive;
- :class:`ChainBatchExecutor` -- batch execution with the bitwise
  serial-equivalence guarantee (also behind
  :meth:`StressChainPipeline.run_many`);
- :class:`StageCaches` / :class:`LRUCache` and
  :func:`video_content_hash` -- the content-addressed caches;
- :class:`ServiceStats` / :class:`ServiceStatsSnapshot`;
- :class:`ReplicaPool` / :class:`Deployment` /
  :class:`PoolStatsSnapshot` -- the sharded replica pool with
  consistent-hash routing and versioned hot-swap deploys.
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.cache import (
    CacheStats,
    LRUCache,
    StageCaches,
    video_content_hash,
)
from repro.serving.executor import ChainBatchExecutor
from repro.serving.pool import (
    Deployment,
    PoolStatsSnapshot,
    ReplicaPool,
    clone_pipeline,
    resolve_pool_backend,
    resolve_pool_replicas,
)
from repro.serving.service import (
    SerialDispatcher,
    ServiceConfig,
    StressService,
)
from repro.serving.stats import ServiceStats, ServiceStatsSnapshot

__all__ = [
    "CacheStats",
    "ChainBatchExecutor",
    "Deployment",
    "LRUCache",
    "MicroBatcher",
    "PoolStatsSnapshot",
    "ReplicaPool",
    "SerialDispatcher",
    "ServiceConfig",
    "ServiceStats",
    "ServiceStatsSnapshot",
    "StageCaches",
    "StressService",
    "clone_pipeline",
    "resolve_pool_backend",
    "resolve_pool_replicas",
    "video_content_hash",
]
