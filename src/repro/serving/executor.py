"""Batched execution of the reasoning chain.

:class:`ChainBatchExecutor` turns a batch of videos into one
:class:`~repro.cot.chain.ChainResult` per request while guaranteeing
**bitwise equivalence** with serial
:meth:`~repro.cot.chain.StressChainPipeline.predict`.  The guarantee
is structural, not numerical luck:

- Per-request math runs through the model's ``*_from_embed`` entry
  points, which perform exactly the serial path's single-row matmuls
  (stacked GEMMs are *not* row-wise bitwise-reproducible under BLAS,
  so the executor never routes request math through them; the
  ``*_from_frames_batch`` engine remains the explainers' workhorse).
- The shared trunk embedding is computed once per unique video and
  reused by the Describe/Assess/Highlight heads -- the serial path
  computes the identical value three times.
- Duplicate requests in one batch are computed once and fanned out;
  across batches the per-stage LRU caches replay stage outputs that
  greedy decoding makes deterministic.

Every request gets its *own* :class:`DialogueSession`, rebuilt from
the stage outputs in exactly the serial recording order, so concurrent
requests can never interleave dialogue state (the mutable-state hazard
DESIGN.md section 10 discusses).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cot.rationale import Rationale
from repro.facs.descriptions import FacialDescription
from repro.model.foundation import STRESSED, UNSTRESSED
from repro.model.generation import GREEDY, sample_bernoulli_set
from repro.model.instructions import (
    DESCRIBE_INSTRUCTION,
    HIGHLIGHT_INSTRUCTION,
)
from repro.model.session import DialogueSession
from repro.nn.tensorops import sigmoid
from repro.observability import profiling
from repro.observability.tracing import span
from repro.reliability.faults import fault_point
from repro.serving.cache import (
    AssessEntry,
    DescribeEntry,
    HighlightEntry,
    StageCaches,
)
from repro.video.frame import Video


@dataclass(frozen=True, slots=True)
class _ChainCore:
    """The request-independent core of one chain run: everything a
    :class:`ChainResult` needs except the per-request session object
    and timing."""

    description: FacialDescription | None
    greedy_render: str | None
    label: int
    prob: float
    rationale: tuple[int, ...]
    rationale_render: str | None
    elapsed_seconds: float


class ChainBatchExecutor:
    """Runs chain requests in batches against one pipeline.

    The executor is written for single-threaded use (the micro-batcher
    worker, or an offline ``run_many`` loop); the caches it reads are
    individually thread-safe, but model access is expected to be
    serialized by the caller.
    """

    def __init__(self, pipeline, caches: StageCaches | None = None):
        from repro.cot.chain import StressChainPipeline

        if not isinstance(pipeline, StressChainPipeline):
            raise TypeError(
                f"expected a StressChainPipeline, got {type(pipeline).__name__}")
        self.pipeline = pipeline
        self.caches = caches if caches is not None else StageCaches()

    def replace_pipeline(self, pipeline) -> None:
        """Point the executor at a different pipeline (hot-swap).

        The caller owns synchronization: the service swaps under its
        swap lock so no batch is mid-execution, and it must also clear
        the stage caches -- cached stage outputs are only valid for
        the weights that produced them.
        """
        from repro.cot.chain import StressChainPipeline

        if not isinstance(pipeline, StressChainPipeline):
            raise TypeError(
                f"expected a StressChainPipeline, got {type(pipeline).__name__}")
        self.pipeline = pipeline

    # ------------------------------------------------------------------

    def run_batch(self, videos: list[Video]) -> tuple[list[object], int]:
        """Process one batch.

        Returns ``(outcomes, unique)`` where ``outcomes[i]`` is the
        :class:`ChainResult` for ``videos[i]`` or the exception that
        request raised, and ``unique`` is the number of distinct video
        contents actually computed (batch occupancy minus in-flight
        duplicates).
        """
        outcomes: list[object] = [None] * len(videos)
        groups: dict[str, list[int]] = {}
        with span("serve.execute_batch", size=len(videos)) as sp:
            for i, video in enumerate(videos):
                try:
                    key = self.caches.content_key(video)
                except Exception as exc:  # noqa: BLE001 - per-request failure
                    outcomes[i] = exc
                    continue
                groups.setdefault(key, []).append(i)
            sp.set("unique", len(groups))
            for key, indices in groups.items():
                try:
                    # The serve.execute fault site fires per unique
                    # group: an injected fault fails exactly the
                    # requests of that group (a transient, retryable
                    # error), never the whole batch.
                    fault_point("serve.execute")
                    core = self._run_core(videos[indices[0]], key)
                except Exception as exc:  # noqa: BLE001 - per-request failure
                    for i in indices:
                        outcomes[i] = exc
                    continue
                for i in indices:
                    outcomes[i] = self._materialize(core)
        return outcomes, len(groups)

    def run_cached(self, video: Video):
        """Cache-only chain run: a :class:`ChainResult` assembled from
        the stage caches without touching the model, or ``None`` when
        any stage misses.

        This is the circuit breaker's degraded mode: while the breaker
        is open the service can still answer requests whose Describe,
        Assess, *and* Highlight outputs are all cached (they were each
        produced by the exact serial math, so the values are the
        bitwise-normal response), flagged ``degraded=True``.  Only
        supported for the plain pipeline configuration -- test-time
        refinement and retrieval key their caches on per-request state,
        so those pipelines fail fast while open instead.
        """
        pipeline = self.pipeline
        if pipeline.test_time_refine or pipeline.retriever is not None:
            return None
        start = time.perf_counter()
        key = self.caches.content_key(video)
        description = None
        greedy_render = None
        if pipeline.use_chain:
            describe = self.caches.describe.get(key)
            if describe is None:
                return None
            description = describe.description
            greedy_render = describe.rendered
        assess = self.caches.assess.get(
            (key, description.au_ids if description is not None else None,
             None))
        if assess is None:
            return None
        highlight_desc = description
        if highlight_desc is None:
            describe = self.caches.describe.get(key)
            if describe is None:
                return None
            highlight_desc = describe.description
        highlight = self.caches.highlight.get(
            (key, highlight_desc.au_ids, assess.label))
        if highlight is None:
            return None
        core = _ChainCore(
            description=description,
            greedy_render=greedy_render,
            label=assess.label,
            prob=assess.prob,
            rationale=highlight.rationale,
            rationale_render=highlight.rendered,
            elapsed_seconds=time.perf_counter() - start,
        )
        return self._materialize(core, degraded=True)

    # ------------------------------------------------------------------

    def _run_core(self, video: Video, key: str) -> _ChainCore:
        """One chain run, staged through the caches.

        Mirrors :meth:`StressChainPipeline.predict` line for line; any
        edit there must be reflected here (the serving equivalence
        suite enforces this).
        """
        pipeline = self.pipeline
        model = pipeline.model
        caches = self.caches
        start = time.perf_counter()

        embed: np.ndarray | None = None

        def get_embed() -> np.ndarray:
            nonlocal embed
            if embed is None:
                embed = model.embed_video(video)
            return embed

        def get_describe() -> DescribeEntry:
            entry = caches.describe.get(key)
            if entry is None:
                profiling.count(profiling.STAGE_CACHE_MISS)
                logits = model.au_logits_from_embed(get_embed())
                description = FacialDescription.from_vector(
                    sample_bernoulli_set(logits, GREEDY))
                entry = DescribeEntry(description=description,
                                      rendered=description.render())
                caches.describe.put(key, entry)
            else:
                profiling.count(profiling.STAGE_CACHE_HIT)
            return entry

        # --- Describe ------------------------------------------------
        description: FacialDescription | None = None
        greedy_render: str | None = None
        if pipeline.use_chain:
            with span("chain.describe", refine=pipeline.test_time_refine):
                entry = get_describe()
                greedy_render = entry.rendered
                description = entry.description
                if pipeline.test_time_refine:
                    # The refinement redraw is seeded by video_id, so its
                    # cache key must carry the id alongside the content.
                    refine_key = (key, video.video_id, "refined")
                    refined = caches.describe.get(refine_key)
                    if refined is None:
                        refined = pipeline._refine_description(
                            video, description)
                        caches.describe.put(refine_key, refined)
                    description = refined

        # --- Assess --------------------------------------------------
        # Retrieval derives its sampling seed from video_id, so the
        # assess key includes the id whenever a retriever is attached.
        assess_key = (
            key,
            description.au_ids if description is not None else None,
            video.video_id if pipeline.retriever is not None else None,
        )
        with span("chain.assess", use_chain=pipeline.use_chain):
            assess = caches.assess.get(assess_key)
            if assess is None:
                profiling.count(profiling.STAGE_CACHE_MISS)
                logit = model.assess_logit_from_embed(get_embed(), description)
                if pipeline.retriever is not None and description is not None:
                    from repro.cot.incontext import incontext_logit_shift

                    examples = pipeline.retriever.retrieve(video, description)
                    shift = incontext_logit_shift(description, examples)
                    confidence = abs(
                        2.0 * float(sigmoid(np.array(logit))[()]) - 1.0)
                    logit += shift * (1.0 - confidence)
                prob = float(sigmoid(np.array(logit))[()])
                label = STRESSED if logit > 0 else UNSTRESSED
                assess = AssessEntry(logit=logit, prob=prob, label=label)
                caches.assess.put(assess_key, assess)
            else:
                profiling.count(profiling.STAGE_CACHE_HIT)

        # --- Highlight -----------------------------------------------
        with span("chain.highlight"):
            highlight_desc = description
            if highlight_desc is None:
                highlight_desc = get_describe().description
            highlight_key = (key, highlight_desc.au_ids, assess.label)
            highlight = caches.highlight.get(highlight_key)
            if highlight is None:
                profiling.count(profiling.STAGE_CACHE_MISS)
                rationale = model.highlight_from_embed(
                    get_embed(), highlight_desc, assess.label, GREEDY)
                rendered = (_render_rationale(rationale)
                            if highlight_desc.au_ids else None)
                highlight = HighlightEntry(rationale=rationale,
                                           rendered=rendered)
                caches.highlight.put(highlight_key, highlight)
            else:
                profiling.count(profiling.STAGE_CACHE_HIT)

        return _ChainCore(
            description=description,
            greedy_render=greedy_render,
            label=assess.label,
            prob=assess.prob,
            rationale=highlight.rationale,
            rationale_render=highlight.rendered,
            elapsed_seconds=time.perf_counter() - start,
        )

    def _materialize(self, core: _ChainCore, degraded: bool = False):
        """A fresh :class:`ChainResult` (with its own session) from a
        chain core -- one per request, also for deduplicated ones."""
        from repro.cot.chain import ChainResult, _assess_instruction

        pipeline = self.pipeline
        session = DialogueSession()
        if pipeline.use_chain:
            session.record(DESCRIBE_INSTRUCTION, core.greedy_render)
        session.record(
            _assess_instruction(pipeline.use_chain),
            "Stressed" if core.label == STRESSED else "Unstressed",
        )
        if core.rationale_render is not None:
            # The serial highlight step records only when the
            # description names at least one action unit.
            session.record(HIGHLIGHT_INSTRUCTION, core.rationale_render)
        return ChainResult(
            description=core.description,
            label=core.label,
            prob_stressed=core.prob,
            rationale=Rationale(core.rationale),
            session=session,
            elapsed_seconds=core.elapsed_seconds,
            degraded=degraded,
        )


def _render_rationale(rationale: tuple[int, ...]) -> str:
    from repro.model.foundation import _render_rationale as render

    return render(rationale)
