"""The sharded replica pool: serving scaled across worker replicas.

One :class:`~repro.serving.service.StressService` serializes all model
work on a single batcher thread (DESIGN.md section 10).  A
:class:`ReplicaPool` shards that hot path across ``num_replicas``
independent replicas, each owning its *own* pipeline copy, micro-batch
worker, stage caches, and circuit breaker:

- **Routing is consistent-hash on content.**  Every request is routed
  by its video content hash over a vnode hash ring, so one clip's
  repeats always land on the same replica and that replica's LRU
  caches stay hot -- random routing would shred the hit rate across
  replicas.  Adding or removing a replica remaps only the ring arcs it
  owns, not the whole keyspace.
- **Two replica backends.**  ``"thread"`` replicas are full
  :class:`StressService` instances over per-replica pipeline clones;
  ``"process"`` replicas fork a child that runs the batch executor and
  speak a tiny pickled command protocol over a pipe (POSIX only --
  mirrors :mod:`repro.evaluation.parallel`'s fork backend, and falls
  back to threads the same way).  Defaults come from
  ``REPRO_POOL_REPLICAS`` / ``REPRO_POOL_BACKEND`` via
  :func:`repro.config.settings`.
- **Versioned hot-swap.**  :meth:`ReplicaPool.deploy` loads a version
  from a :class:`~repro.model.registry.ModelRegistry`, swaps a canary
  subset first (each replica drains its in-flight batch before its
  weights change, so zero in-flight requests fail), and
  :meth:`Deployment.promote` rolls the canaries back and raises
  :class:`~repro.errors.DeploymentError` if any canary's circuit
  breaker tripped during the bake.
- **Single-replica equivalence.**  ``ReplicaPool(num_replicas=1)``
  returns bitwise-identical :class:`~repro.cot.chain.ChainResult`
  objects to a plain :class:`StressService` (the pool equivalence
  suite pins this): routing picks a replica, never changes the math.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import os
import threading
from dataclasses import dataclass

from repro.config import POOL_BACKEND_ENV, POOL_REPLICAS_ENV, settings
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    DeploymentError,
    PoolError,
    ServiceClosedError,
)
from repro.observability.metrics import global_metrics
from repro.observability.tracing import span
from repro.reliability.breaker import CLOSED, OPEN, BreakerConfig, CircuitBreaker
from repro.reliability.deadlines import Deadline
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import LRUCache, StageCaches, video_content_hash
from repro.serving.service import ServiceConfig, StressService
from repro.serving.stats import ServiceStats, ServiceStatsSnapshot
from repro.video.frame import Video

__all__ = [
    "POOL_BACKENDS",
    "Deployment",
    "PoolStatsSnapshot",
    "ReplicaPool",
    "clone_pipeline",
    "resolve_pool_backend",
    "resolve_pool_replicas",
]

#: Recognised replica backends (named after the evaluation backends).
POOL_BACKENDS = ("thread", "process")

#: Virtual nodes per replica on the hash ring.  Enough that the
#: keyspace split between replicas stays near-even, small enough that
#: building the ring is trivial.
DEFAULT_VNODES = 64


def resolve_pool_backend(backend: str | None = None) -> str:
    """Pick the replica backend: explicit argument, then the
    ``REPRO_POOL_BACKEND`` environment variable, then threads."""
    if backend is None:
        backend = settings().pool_backend or "thread"
    if backend not in POOL_BACKENDS:
        raise ConfigError(
            f"unknown pool backend {backend!r} "
            f"({POOL_BACKEND_ENV}); known: {POOL_BACKENDS}")
    if backend == "process" and not hasattr(os, "fork"):
        # Same honest fallback as repro.evaluation.parallel: fork is
        # what lets an arbitrary pipeline cross into the child.
        return "thread"
    return backend


def resolve_pool_replicas(num_replicas: int | None = None) -> int:
    """Pick the replica count: explicit argument, then the
    ``REPRO_POOL_REPLICAS`` environment variable, then one."""
    if num_replicas is None:
        num_replicas = settings().pool_replicas
        if num_replicas is None:
            num_replicas = 1
    if num_replicas < 1:
        raise PoolError(
            f"num_replicas must be >= 1, got {num_replicas} "
            f"(set {POOL_REPLICAS_ENV} or pass num_replicas)")
    return num_replicas


def clone_pipeline(pipeline):
    """An independent copy of ``pipeline`` computing bitwise-identical
    results.

    Each thread replica needs its *own* pipeline object: the
    foundation model caches forward activations during a pass, so two
    replica workers sharing one model would race on that state.  The
    clone deep-copies the model (weights and feature cache) and
    rebinds a shallow-copied retriever to it; the verification pool is
    shared read-only.
    """
    import copy

    from repro.cot.chain import StressChainPipeline

    model = pipeline.model.clone()
    retriever = pipeline.retriever
    if retriever is not None:
        retriever = copy.copy(retriever)
        if hasattr(retriever, "model"):
            retriever.model = model
    return StressChainPipeline(
        model,
        use_chain=pipeline.use_chain,
        retriever=retriever,
        test_time_refine=pipeline.test_time_refine,
        verification_pool=list(pipeline.verification_pool) or None,
        refine_rounds=pipeline.refine_rounds,
        num_verify_trials=pipeline.num_verify_trials,
        seed=pipeline.seed,
    )


class _HashRing:
    """A consistent-hash ring over replica indices.

    Each replica owns ``vnodes`` points on a SHA-1 ring; a key routes
    to the first point at or after its own hash (wrapping).  The map
    is stable: repeats of one key always land on the same replica, and
    resizing the pool moves only the arcs the changed replica owned.
    """

    def __init__(self, num_replicas: int, vnodes: int = DEFAULT_VNODES):
        points: list[tuple[int, int]] = []
        for replica in range(num_replicas):
            for vnode in range(vnodes):
                digest = hashlib.sha1(
                    f"replica-{replica}:vnode-{vnode}".encode()).digest()
                points.append((int.from_bytes(digest[:8], "big"), replica))
        points.sort()
        self._hashes = [point for point, __ in points]
        self._replicas = [replica for __, replica in points]

    def route(self, key: str) -> int:
        digest = hashlib.sha1(key.encode()).digest()
        point = int.from_bytes(digest[:8], "big")
        index = bisect.bisect_right(self._hashes, point)
        if index == len(self._hashes):
            index = 0
        return self._replicas[index]


# ----------------------------------------------------------------------
# Replicas
# ----------------------------------------------------------------------


class _ThreadReplica:
    """One replica backed by a full in-process :class:`StressService`."""

    backend = "thread"

    def __init__(self, index: int, pipeline, config: ServiceConfig):
        self.index = index
        self.payload = ("pipeline", pipeline, None)
        self.service = StressService(pipeline, config)

    def submit(self, video: Video, deadline_ms: float | None):
        return self.service.submit(video, deadline_ms=deadline_ms)

    def swap(self, payload) -> None:
        kind, value, __ = payload
        if kind == "path":
            from repro.model.persistence import load_pipeline

            pipeline = load_pipeline(value)
        else:
            pipeline = value
        self.service.swap_pipeline(pipeline)
        self.payload = payload

    @property
    def breaker(self) -> CircuitBreaker | None:
        return self.service.breaker

    def fingerprint(self) -> str:
        return self.service.pipeline.model.fingerprint()

    def stats(self) -> ServiceStatsSnapshot:
        return self.service.stats()

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        return self.service.close(drain=drain, timeout=timeout)


def _process_replica_worker(conn, pipeline, config: ServiceConfig) -> None:
    """Child-process loop of one ``"process"`` replica.

    Inherits ``pipeline`` through fork (nothing is pickled on the way
    in), runs batches through its own executor + caches, and answers
    ``("ok", result)`` / ``("error", exc)`` per command.  Swap
    commands carry either a registry artifact *path* (the child
    re-loads the archive itself -- weights never cross the pipe) or a
    pickled pipeline (the rollback fallback for pools seeded from a
    bare pipeline object).
    """
    from repro.serving.executor import ChainBatchExecutor

    caches = StageCaches(
        describe_capacity=config.describe_cache_capacity,
        assess_capacity=config.assess_cache_capacity,
        highlight_capacity=config.highlight_cache_capacity,
    )
    executor = ChainBatchExecutor(pipeline, caches)
    while True:
        try:
            command, argument = conn.recv()
        except EOFError:
            return
        try:
            if command == "batch":
                outcomes, unique = executor.run_batch(argument)
                conn.send(("ok", (outcomes, unique)))
            elif command == "swap":
                kind, value = argument
                if kind == "path":
                    from repro.model.persistence import load_pipeline

                    replacement = load_pipeline(value)
                else:
                    replacement = value
                executor.replace_pipeline(replacement)
                caches.clear()
                conn.send(("ok", None))
            elif command == "fingerprint":
                conn.send(("ok", executor.pipeline.model.fingerprint()))
            elif command == "close":
                conn.send(("ok", None))
                return
            else:  # pragma: no cover - protocol guard
                conn.send(("error", PoolError(
                    f"unknown replica command {command!r}")))
        except BaseException as exc:  # noqa: BLE001 - child must survive
            conn.send(("error", exc))


class _ProcessReplica:
    """One replica backed by a forked child process.

    The parent side keeps the request plumbing -- micro-batcher
    (deadline shedding, bounded queue, stats) and circuit breaker --
    and ships each collected batch over a pipe to the child, which
    owns the pipeline, executor, and stage caches.  The pipe is
    strictly request/response and guarded by a lock, so batch and swap
    commands never interleave: a swap waits out the in-flight batch
    exactly like :meth:`StressService.swap_pipeline` does.
    """

    backend = "process"

    def __init__(self, index: int, pipeline, config: ServiceConfig):
        self.index = index
        self.payload = ("pipeline", pipeline, None)
        self.config = config
        self._stats = ServiceStats()
        self._breaker = (CircuitBreaker(config.breaker)
                         if config.breaker is not None else None)
        context = multiprocessing.get_context("fork")
        self._conn, child_conn = context.Pipe()
        self._conn_lock = threading.Lock()
        self._process = context.Process(
            target=_process_replica_worker,
            args=(child_conn, pipeline, config),
            name=f"pool-replica-{index}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._batcher = MicroBatcher(
            self._process_batch,
            max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms,
            max_queue_depth=config.max_queue_depth,
            stats=self._stats,
            name=f"pool-replica-{index}",
        )

    def _command(self, command: str, argument) -> object:
        with self._conn_lock:
            if not self._process.is_alive():
                raise PoolError(
                    f"replica {self.index} worker process has exited")
            self._conn.send((command, argument))
            status, payload = self._conn.recv()
        if status == "error":
            raise payload
        return payload

    def _process_batch(self, videos: list[Video]) -> list[object]:
        if self._breaker is not None and not self._breaker.allow():
            # No parent-side caches to degrade onto: fail fast -- but
            # the shed batch still counts in this replica's stats,
            # matching StressService._process_batch's breaker path.
            self._stats.record_batch(size=len(videos), unique=len(videos))
            return [CircuitOpenError(
                "replica circuit breaker is open; retry after its "
                "open window")] * len(videos)
        try:
            outcomes, unique = self._command("batch", videos)
        except BaseException as exc:  # noqa: BLE001 - fail the batch
            outcomes, unique = [exc] * len(videos), len(videos)
        if self._breaker is not None:
            for outcome in outcomes:
                self._breaker.record(not isinstance(outcome, BaseException))
        self._stats.record_batch(size=len(videos), unique=unique)
        return outcomes

    def submit(self, video: Video, deadline_ms: float | None):
        deadline = (Deadline.after_ms(deadline_ms)
                    if deadline_ms is not None else None)
        return self._batcher.submit(video, deadline=deadline)

    def swap(self, payload) -> None:
        kind, value, __ = payload
        self._command("swap", (kind, value))
        self.payload = payload

    @property
    def breaker(self) -> CircuitBreaker | None:
        return self._breaker

    def fingerprint(self) -> str:
        return self._command("fingerprint", None)

    def stats(self) -> ServiceStatsSnapshot:
        breaker_state = (self._breaker.state
                         if self._breaker is not None else CLOSED)
        return self._stats.snapshot(breaker_state=breaker_state)

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        drained = self._batcher.close(drain=drain, timeout=timeout)
        try:
            self._command("close", None)
        except (PoolError, OSError, EOFError):
            pass
        self._process.join(timeout if timeout is not None else 5.0)
        if self._process.is_alive():  # pragma: no cover - hung child
            self._process.terminate()
            drained = False
        self._conn.close()
        return drained


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PoolStatsSnapshot:
    """A point-in-time view of the whole pool.

    ``routed`` counts requests per replica (the routing histogram the
    consistent-hash ring produced); ``replicas`` holds each replica's
    own :class:`ServiceStatsSnapshot`.
    """

    num_replicas: int
    backend: str
    version: str | None
    routed: tuple[int, ...]
    replicas: tuple[ServiceStatsSnapshot, ...]

    @property
    def requests(self) -> int:
        return sum(self.routed)


class ReplicaPool:
    """Shards serving across replicas with consistent-hash routing.

    Parameters
    ----------
    pipeline:
        The pipeline every replica starts from.  Thread replicas each
        receive an independent :func:`clone_pipeline` copy; process
        replicas inherit the object through fork.
    num_replicas:
        Replica count (default: ``REPRO_POOL_REPLICAS``, then 1).
    backend:
        ``"thread"`` or ``"process"`` (default: ``REPRO_POOL_BACKEND``,
        then threads).
    config:
        Per-replica :class:`ServiceConfig`.  The default attaches a
        :class:`~repro.reliability.breaker.BreakerConfig` so every
        replica gets its own circuit breaker (canary promotion reads
        them); pass an explicit config to override.
    registry:
        Optional :class:`~repro.model.registry.ModelRegistry` that
        :meth:`deploy` resolves versions against.
    version:
        Optional name of the version ``pipeline`` was loaded from
        (reported in stats; lets a process pool roll back by artifact
        path instead of pickling weights).
    """

    def __init__(self, pipeline, *, num_replicas: int | None = None,
                 backend: str | None = None,
                 config: ServiceConfig | None = None,
                 registry=None, version: str | None = None,
                 vnodes: int = DEFAULT_VNODES):
        self.num_replicas = resolve_pool_replicas(num_replicas)
        self.backend = resolve_pool_backend(backend)
        self.config = (config if config is not None
                       else ServiceConfig(breaker=BreakerConfig()))
        self.registry = registry
        self.version = version
        self._ring = _HashRing(self.num_replicas, vnodes=vnodes)
        self._key_memo = LRUCache(8192)
        self._routed = [0] * self.num_replicas
        self._routed_lock = threading.Lock()
        self._deploy_lock = threading.Lock()
        self._closed = False
        initial = self._initial_payload(registry, version)
        replica_cls = (_ThreadReplica if self.backend == "thread"
                       else _ProcessReplica)
        self._replicas: list[_ThreadReplica | _ProcessReplica] = []
        for index in range(self.num_replicas):
            source = (pipeline if self.backend == "process"
                      or index == 0 else clone_pipeline(pipeline))
            replica = replica_cls(index, source, self.config)
            if initial is not None:
                replica.payload = initial
            # Without a versioned artifact the replica keeps the
            # ("pipeline", ...) payload its constructor captured: its
            # OWN copy.  One shared payload here would make a later
            # rollback install the same mutable pipeline into every
            # thread replica -- exactly the forward-state race
            # clone_pipeline() exists to prevent.
            self._replicas.append(replica)
        metrics = global_metrics()
        metrics.gauge("pool.replicas").set(self.num_replicas)
        self._m_requests = metrics.counter("pool.requests")
        self._m_routed = [metrics.counter(f"pool.replica.{i}.requests")
                          for i in range(self.num_replicas)]
        self._m_deploys = metrics.counter("pool.deploys")
        self._m_rollbacks = metrics.counter("pool.rollbacks")

    @classmethod
    def from_registry(cls, registry, version: str | None = None,
                      **kwargs) -> "ReplicaPool":
        """A pool serving ``version`` (default: the registry's latest)
        loaded through the persistence layer."""
        if version is None:
            version = registry.latest()
        if version is None:
            raise PoolError(f"registry {registry.root} holds no versions")
        pipeline = registry.load(version)
        return cls(pipeline, registry=registry, version=version, **kwargs)

    @staticmethod
    def _initial_payload(registry, version):
        """The shared versioned-artifact payload, or ``None`` for a
        bare-pipeline pool (each replica then keeps its per-replica
        pipeline payload)."""
        if registry is not None and version is not None:
            return ("path", registry.verified_artifact(version), version)
        return None

    # -- the hot path --------------------------------------------------

    def route(self, video: Video) -> int:
        """The replica index ``video`` shards to (pure function of its
        content hash -- repeats always land on the same replica)."""
        memo_key = (video.video_id, video.spec.seed)
        key = self._key_memo.get(memo_key)
        if key is None:
            key = video_content_hash(video)
            self._key_memo.put(memo_key, key)
        return self._ring.route(key)

    def submit(self, video: Video, deadline_ms: float | None = None):
        """Route and enqueue one request; returns a
        ``Future[ChainResult]``.  Raises the same backpressure and
        closed-state errors as :meth:`StressService.submit`."""
        if self._closed:
            raise ServiceClosedError(
                "replica pool is shut down; no new requests accepted")
        index = self.route(video)
        with span("pool.route", replica=index, backend=self.backend):
            future = self._replicas[index].submit(video, deadline_ms)
        with self._routed_lock:
            self._routed[index] += 1
        self._m_requests.inc()
        self._m_routed[index].inc()
        return future

    def predict(self, video: Video, timeout: float | None = None,
                deadline_ms: float | None = None):
        """Blocking predict: route, submit, and wait for the result."""
        return self.submit(video, deadline_ms=deadline_ms).result(timeout)

    # -- introspection -------------------------------------------------

    def fingerprints(self) -> list[str]:
        """Each replica's model fingerprint (asserts which weights a
        replica actually serves -- equal fingerprints imply bitwise-
        equal forward passes)."""
        return [replica.fingerprint() for replica in self._replicas]

    def stats(self) -> PoolStatsSnapshot:
        with self._routed_lock:
            routed = tuple(self._routed)
        return PoolStatsSnapshot(
            num_replicas=self.num_replicas,
            backend=self.backend,
            version=self.version,
            routed=routed,
            replicas=tuple(r.stats() for r in self._replicas),
        )

    # -- deploys -------------------------------------------------------

    def deploy(self, version: str, *, canary_fraction: float = 1.0,
               registry=None) -> "Deployment":
        """Hot-swap every replica to ``version`` from the registry.

        With ``canary_fraction < 1`` only the first
        ``max(1, round(fraction * n))`` replicas swap now; the
        returned :class:`Deployment` stays in its canary state until
        :meth:`Deployment.promote` checks the canaries' circuit
        breakers and either rolls the rest of the pool forward or
        rolls the canaries back (raising
        :class:`~repro.errors.DeploymentError`).  When the computed
        canary set covers every replica (e.g. any fraction on a
        one-replica pool), the deployment completes immediately and a
        subsequent :meth:`Deployment.promote` is a no-op.  Each
        replica drains its in-flight batch before its weights change,
        so zero in-flight requests fail during a swap.
        """
        registry = registry if registry is not None else self.registry
        if registry is None:
            raise DeploymentError(
                "deploy needs a ModelRegistry (pass registry= here or to "
                "the pool constructor)")
        if not 0.0 < canary_fraction <= 1.0:
            raise ConfigError(
                f"canary_fraction must be in (0, 1], got {canary_fraction}")
        artifact = registry.verified_artifact(version)
        payload = ("path", artifact, version)
        if canary_fraction >= 1.0:
            canary_count = self.num_replicas
        else:
            canary_count = min(self.num_replicas,
                               max(1, round(canary_fraction
                                            * self.num_replicas)))
        with self._deploy_lock:
            canaries = tuple(range(canary_count))
            previous = {i: self._replicas[i].payload for i in canaries}
            for index in canaries:
                with span("pool.swap", replica=index, version=version):
                    self._replicas[index].swap(payload)
            self._m_deploys.inc()
            deployment = Deployment(self, version, payload, canaries,
                                    previous)
            if canary_count == self.num_replicas:
                deployment._complete()
        return deployment

    # -- lifecycle -----------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Shut every replica down; ``True`` iff all drained fully."""
        self._closed = True
        drained = True
        for replica in self._replicas:
            drained = replica.close(drain=drain, timeout=timeout) and drained
        return drained

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Deployment:
    """One in-progress (or finished) versioned rollout.

    States: ``"canary"`` (a subset serves the new version) ->
    ``"complete"`` (:meth:`promote` rolled every replica forward) or
    ``"rolled_back"`` (:meth:`rollback`, or a canary breaker trip
    during :meth:`promote`).
    """

    def __init__(self, pool: ReplicaPool, version: str, payload,
                 canaries: tuple[int, ...], previous: dict):
        self.pool = pool
        self.version = version
        self._payload = payload
        self.canaries = canaries
        self._previous = previous
        self.state = "canary"

    def _complete(self) -> None:
        self.state = "complete"
        self.pool.version = self.version

    def tripped_canaries(self) -> list[int]:
        """Canary replicas whose circuit breaker is currently open."""
        tripped = []
        for index in self.canaries:
            breaker = self.pool._replicas[index].breaker
            if breaker is not None and breaker.state == OPEN:
                tripped.append(index)
        return tripped

    def promote(self) -> None:
        """Roll the remaining replicas forward -- unless a canary's
        breaker tripped, in which case the canaries are rolled back
        and :class:`~repro.errors.DeploymentError` is raised.

        A no-op on an already-``"complete"`` deployment: ``deploy()``
        auto-completes when the canary set covers the whole pool (for
        example, any fraction on a one-replica pool), and an
        unconditional ``promote()`` after that is not an error.
        Promoting a rolled-back deployment still raises.
        """
        if self.state == "complete":
            return
        if self.state != "canary":
            raise DeploymentError(
                f"deployment of {self.version!r} is {self.state}; only a "
                "canary-state deployment can be promoted")
        tripped = self.tripped_canaries()
        if tripped:
            self.rollback()
            raise DeploymentError(
                f"canary breaker open on replica(s) {tripped} while baking "
                f"{self.version!r}; canaries rolled back")
        with self.pool._deploy_lock:
            for index in range(self.pool.num_replicas):
                if index in self._previous:
                    continue
                self._previous[index] = self.pool._replicas[index].payload
                with span("pool.swap", replica=index, version=self.version):
                    self.pool._replicas[index].swap(self._payload)
        self._complete()

    def rollback(self) -> None:
        """Restore every swapped replica to its pre-deploy weights."""
        if self.state == "rolled_back":
            return
        with self.pool._deploy_lock:
            for index, payload in self._previous.items():
                with span("pool.swap", replica=index, rollback=True):
                    self.pool._replicas[index].swap(payload)
        self.pool._m_rollbacks.inc()
        previous_versions = {payload[2]
                             for payload in self._previous.values()}
        if len(previous_versions) == 1:
            self.pool.version = next(iter(previous_versions))
        self.state = "rolled_back"
