"""The online stress-detection service.

:class:`StressService` is the deployment front of the library: it
accepts concurrent ``predict`` requests, coalesces them through the
dynamic micro-batcher into the :class:`ChainBatchExecutor`, and
returns full :class:`~repro.cot.chain.ChainResult` objects -- label,
probability, *and* the rationale chain, because a served prediction
without its reasoning would break the paper's interpretability
contract.

Usage::

    service = StressService(StressChainPipeline(model))
    try:
        result = service.predict(video)          # blocking
        future = service.submit(other_video)     # async
        print(service.stats())
    finally:
        service.close()                          # graceful drain

Guarantees:

- responses are bitwise-identical to serial ``pipeline.predict`` (the
  serving equivalence suite enforces this per request);
- the queue is bounded -- submits past ``max_queue_depth`` raise
  :class:`~repro.errors.ServiceOverloadedError` instead of growing
  latency without bound;
- ``close()`` drains in-flight work before returning;
- all model access runs on the single batcher worker thread, which
  serializes the foundation model's forward-pass state (DESIGN.md
  section 10).

:class:`SerialDispatcher` is the no-batching baseline -- a global
lock around ``pipeline.predict`` -- used by the throughput benchmark
and the equivalence tests as the reference dispatch strategy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.observability.metrics import global_metrics
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import StageCaches
from repro.serving.executor import ChainBatchExecutor
from repro.serving.stats import ServiceStats, ServiceStatsSnapshot
from repro.video.frame import Video


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Knobs of one :class:`StressService`.

    ``max_batch_size`` / ``max_wait_ms`` shape the micro-batches
    (flush on whichever bound is hit first); ``max_queue_depth`` is
    the backpressure limit; the ``*_cache_capacity`` fields size the
    per-stage LRU caches (0 disables a cache).
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    max_queue_depth: int = 256
    describe_cache_capacity: int = 2048
    assess_cache_capacity: int = 4096
    highlight_cache_capacity: int = 4096

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ConfigError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        for field_name in ("describe_cache_capacity",
                           "assess_cache_capacity",
                           "highlight_cache_capacity"):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{field_name} must be >= 0")


class StressService:
    """Concurrent serving front-end over one chain pipeline."""

    def __init__(self, pipeline, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.caches = StageCaches(
            describe_capacity=self.config.describe_cache_capacity,
            assess_capacity=self.config.assess_cache_capacity,
            highlight_capacity=self.config.highlight_cache_capacity,
        )
        self.executor = ChainBatchExecutor(pipeline, self.caches)
        self._stats = ServiceStats()
        self._batcher = MicroBatcher(
            self._process_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            max_queue_depth=self.config.max_queue_depth,
            stats=self._stats,
            name="stress-service",
        )

    @property
    def pipeline(self):
        return self.executor.pipeline

    # ------------------------------------------------------------------

    def submit(self, video: Video):
        """Enqueue one request; returns a ``Future[ChainResult]``.

        Raises
        ------
        ServiceOverloadedError
            If the queue already holds ``max_queue_depth`` requests.
        ServiceClosedError
            If the service has been closed.
        """
        return self._batcher.submit(video)

    def predict(self, video: Video, timeout: float | None = None):
        """Blocking predict: submit and wait for the result."""
        return self.submit(video).result(timeout)

    def stats(self) -> ServiceStatsSnapshot:
        """Current service counters (see :class:`ServiceStatsSnapshot`)."""
        return self._stats.snapshot(self.caches.stats())

    def queue_depth(self) -> int:
        return self._batcher.queue_depth()

    @property
    def closed(self) -> bool:
        return self._batcher.closed

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down; with ``drain=True`` (default) queued requests
        finish first, with ``drain=False`` they fail fast."""
        self._batcher.close(drain=drain, timeout=timeout)

    def __enter__(self) -> "StressService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _process_batch(self, videos: list[Video]) -> list[object]:
        outcomes, unique = self.executor.run_batch(videos)
        self._stats.record_batch(size=len(videos), unique=unique)
        # Live backlog signal, refreshed once per batch (not per
        # request -- the gauge is a sampling surface, not a counter).
        global_metrics().gauge("serving.queue_depth").set(
            self._batcher.queue_depth())
        return outcomes


class SerialDispatcher:
    """The pre-serving baseline: concurrent callers are serialized
    through one global lock around ``pipeline.predict``.

    This is the correct (and only safe) way to share a pipeline across
    threads *without* the service -- the foundation model's layers
    cache forward activations, so unserialized concurrent calls would
    race on that state.  The throughput benchmark measures the service
    against this dispatcher under identical client load.
    """

    def __init__(self, pipeline):
        self.pipeline = pipeline
        self._lock = threading.Lock()

    def predict(self, video: Video):
        with self._lock:
            return self.pipeline.predict(video)

    def close(self) -> None:  # interface parity with StressService
        """No-op; the dispatcher owns no worker state."""
