"""The online stress-detection service.

:class:`StressService` is the deployment front of the library: it
accepts concurrent ``predict`` requests, coalesces them through the
dynamic micro-batcher into the :class:`ChainBatchExecutor`, and
returns full :class:`~repro.cot.chain.ChainResult` objects -- label,
probability, *and* the rationale chain, because a served prediction
without its reasoning would break the paper's interpretability
contract.

Usage::

    service = StressService(StressChainPipeline(model))
    try:
        result = service.predict(video)                  # blocking
        future = service.submit(other_video,
                                deadline_ms=50.0)        # async + deadline
        print(service.stats())
    finally:
        service.close()                                  # graceful drain

Guarantees:

- responses are bitwise-identical to serial ``pipeline.predict`` (the
  serving equivalence suite enforces this per request);
- the queue is bounded -- submits past ``max_queue_depth`` raise
  :class:`~repro.errors.ServiceOverloadedError` instead of growing
  latency without bound;
- a request whose ``deadline_ms`` expires while queued is shed with
  :class:`~repro.errors.DeadlineExceededError` *before* any model
  work is spent on it;
- transient executor failures (:class:`~repro.errors.TransientError`)
  are retried per-request with seeded exponential backoff; sustained
  failure trips a circuit breaker that fails fast (or serves
  cache-only hits flagged ``degraded=True``) instead of hammering a
  broken executor;
- ``close()`` drains in-flight work before returning and reports
  whether the drain actually completed;
- all model access runs on the single batcher worker thread, which
  serializes the foundation model's forward-pass state (DESIGN.md
  sections 10 and 12).

:class:`SerialDispatcher` is the no-batching baseline -- a global
lock around ``pipeline.predict`` -- used by the throughput benchmark
and the equivalence tests as the reference dispatch strategy.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import CircuitOpenError, ConfigError
from repro.observability.metrics import global_metrics
from repro.reliability.breaker import CLOSED, BreakerConfig, CircuitBreaker
from repro.reliability.deadlines import Deadline
from repro.reliability.retry import RetryPolicy, is_retryable
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import StageCaches
from repro.serving.executor import ChainBatchExecutor
from repro.serving.stats import ServiceStats, ServiceStatsSnapshot
from repro.video.frame import Video


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Knobs of one :class:`StressService`.

    ``max_batch_size`` / ``max_wait_ms`` shape the micro-batches
    (flush on whichever bound is hit first); ``max_queue_depth`` is
    the backpressure limit; the ``*_cache_capacity`` fields size the
    per-stage LRU caches (0 disables a cache).

    The reliability knobs all default *off* so the hot path stays
    byte-for-byte the PR-3 serving loop unless a deployment opts in:
    ``default_deadline_ms`` attaches a deadline to every submit that
    does not bring its own; ``retry_policy`` retries transient
    per-request executor failures with seeded backoff; ``breaker``
    trips on sustained failure, and ``degraded_mode`` lets an open
    breaker serve cache-only hits (flagged ``degraded=True``) instead
    of failing everything fast.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    max_queue_depth: int = 256
    describe_cache_capacity: int = 2048
    assess_cache_capacity: int = 4096
    highlight_cache_capacity: int = 4096
    default_deadline_ms: float | None = None
    retry_policy: RetryPolicy | None = None
    breaker: BreakerConfig | None = None
    degraded_mode: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ConfigError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        for field_name in ("describe_cache_capacity",
                           "assess_cache_capacity",
                           "highlight_cache_capacity"):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{field_name} must be >= 0")
        if (self.default_deadline_ms is not None
                and self.default_deadline_ms <= 0):
            raise ConfigError(
                "default_deadline_ms must be positive, "
                f"got {self.default_deadline_ms}")


class StressService:
    """Concurrent serving front-end over one chain pipeline."""

    def __init__(self, pipeline, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.caches = StageCaches(
            describe_capacity=self.config.describe_cache_capacity,
            assess_capacity=self.config.assess_cache_capacity,
            highlight_capacity=self.config.highlight_cache_capacity,
        )
        self.executor = ChainBatchExecutor(pipeline, self.caches)
        # Held by the worker for the span of each batch's execution;
        # swap_pipeline() acquires it to wait out the in-flight batch.
        self._swap_lock = threading.Lock()
        self._stats = ServiceStats()
        self._breaker = (CircuitBreaker(self.config.breaker)
                         if self.config.breaker is not None else None)
        self._batcher = MicroBatcher(
            self._process_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            max_queue_depth=self.config.max_queue_depth,
            stats=self._stats,
            name="stress-service",
        )

    @property
    def pipeline(self):
        return self.executor.pipeline

    @property
    def breaker(self) -> CircuitBreaker | None:
        return self._breaker

    # ------------------------------------------------------------------

    def submit(self, video: Video, deadline_ms: float | None = None):
        """Enqueue one request; returns a ``Future[ChainResult]``.

        ``deadline_ms`` bounds how long the caller will wait: a request
        still queued when its deadline expires is shed with
        :class:`~repro.errors.DeadlineExceededError` before execution
        (falls back to ``config.default_deadline_ms`` when ``None``).

        Raises
        ------
        ServiceOverloadedError
            If the queue already holds ``max_queue_depth`` requests.
        ServiceClosedError
            If the service has been closed.
        """
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        deadline = (Deadline.after_ms(deadline_ms)
                    if deadline_ms is not None else None)
        return self._batcher.submit(video, deadline=deadline)

    def predict(self, video: Video, timeout: float | None = None,
                deadline_ms: float | None = None):
        """Blocking predict: submit and wait for the result."""
        return self.submit(video, deadline_ms=deadline_ms).result(timeout)

    def stats(self) -> ServiceStatsSnapshot:
        """Current service counters (see :class:`ServiceStatsSnapshot`)."""
        breaker_state = (self._breaker.state
                         if self._breaker is not None else CLOSED)
        return self._stats.snapshot(self.caches.stats(),
                                    breaker_state=breaker_state)

    def queue_depth(self) -> int:
        return self._batcher.queue_depth()

    def swap_pipeline(self, pipeline) -> None:
        """Hot-swap the served pipeline without dropping requests.

        Blocks until the in-flight batch (if any) finishes, then
        points the executor at ``pipeline`` and clears the stage
        caches (cached stage outputs are only valid for the weights
        that produced them).  Queued requests are untouched -- they
        simply execute against the new pipeline once the swap
        completes -- so a deploy fails zero in-flight requests.
        """
        with self._swap_lock:
            self.executor.replace_pipeline(pipeline)
            self.caches.clear()

    @property
    def closed(self) -> bool:
        return self._batcher.closed

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Shut down; with ``drain=True`` (default) queued requests
        finish first, with ``drain=False`` they fail fast.

        Returns ``True`` when the worker fully drained and exited
        within ``timeout``; ``False`` means it is still running and
        pending futures may remain unresolved (see
        :meth:`MicroBatcher.close`).
        """
        return self._batcher.close(drain=drain, timeout=timeout)

    def __enter__(self) -> "StressService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _process_batch(self, videos: list[Video]) -> list[object]:
        with self._swap_lock:
            if self._breaker is not None and not self._breaker.allow():
                outcomes: list[object] = self._degraded_outcomes(videos)
                unique = len(videos)
            else:
                outcomes, unique = self._execute(videos)
                if self._breaker is not None:
                    for outcome in outcomes:
                        self._breaker.record(
                            not isinstance(outcome, BaseException))
        self._stats.record_batch(size=len(videos), unique=unique)
        # Live backlog signal, refreshed once per batch (not per
        # request -- the gauge is a sampling surface, not a counter).
        global_metrics().gauge("serving.queue_depth").set(
            self._batcher.queue_depth())
        return outcomes

    def _execute(self, videos: list[Video]) -> tuple[list[object], int]:
        """One batch through the executor, retrying transient
        per-request failures under the configured policy."""
        outcomes, unique = self.executor.run_batch(videos)
        policy = self.config.retry_policy
        if policy is None:
            return outcomes, unique
        delays = policy.delays_s(scope=f"batch:{self._stats.batches}")
        for attempt, delay_s in enumerate(delays, start=1):
            retry_idx = [i for i, outcome in enumerate(outcomes)
                         if isinstance(outcome, BaseException)
                         and is_retryable(outcome)]
            if not retry_idx:
                break
            self._stats.record_retries(len(retry_idx))
            # The worker thread sleeps the backoff; the whole queue
            # waits with it, which is the point -- a transient fault
            # needs breathing room, not a hot retry loop.
            if delay_s > 0:
                time.sleep(delay_s)
            retried, __ = self.executor.run_batch(
                [videos[i] for i in retry_idx])
            for i, outcome in zip(retry_idx, retried):
                outcomes[i] = outcome
        return outcomes, unique

    def _degraded_outcomes(self, videos: list[Video]) -> list[object]:
        """Breaker-open answers: cache-only hits when degraded mode is
        on, :class:`CircuitOpenError` otherwise."""
        outcomes: list[object] = []
        for video in videos:
            result = None
            if self.config.degraded_mode:
                try:
                    result = self.executor.run_cached(video)
                except Exception:  # noqa: BLE001 - cache fault -> miss
                    result = None
            if result is not None:
                self._stats.record_degraded()
                outcomes.append(result)
            else:
                outcomes.append(CircuitOpenError(
                    "circuit breaker is open and the request is not "
                    "fully cached; retry after the breaker's open window"))
        return outcomes


class SerialDispatcher:
    """The pre-serving baseline: concurrent callers are serialized
    through one global lock around ``pipeline.predict``.

    This is the correct (and only safe) way to share a pipeline across
    threads *without* the service -- the foundation model's layers
    cache forward activations, so unserialized concurrent calls would
    race on that state.  The throughput benchmark measures the service
    against this dispatcher under identical client load.

    Interface parity with :class:`StressService` includes the context
    manager protocol, so benchmark and test harnesses can swap the two
    freely inside ``with`` blocks.
    """

    def __init__(self, pipeline):
        self.pipeline = pipeline
        self._lock = threading.Lock()

    def predict(self, video: Video):
        with self._lock:
            return self.pipeline.predict(video)

    def close(self) -> bool:  # interface parity with StressService
        """No-op; the dispatcher owns no worker state.  Returns
        ``True`` (there is never anything left to drain)."""
        return True

    def __enter__(self) -> "SerialDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
