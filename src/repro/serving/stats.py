"""Service counters: requests, batches, occupancy, latency quantiles.

:class:`ServiceStats` is the mutable, thread-safe accumulator the
service updates on its hot path; :meth:`ServiceStats.snapshot` freezes
it into a :class:`ServiceStatsSnapshot` for reporting.  Latencies are
kept in a bounded ring (the most recent ``LATENCY_WINDOW`` requests),
so quantiles track current behaviour and memory stays constant under
sustained traffic.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.serving.cache import CacheStats

#: How many recent request latencies feed the p50/p95 estimates.
LATENCY_WINDOW: int = 4096


@dataclass(frozen=True, slots=True)
class ServiceStatsSnapshot:
    """A point-in-time view of one service's counters."""

    requests: int
    completed: int
    failed: int
    rejected: int
    deduplicated: int
    batches: int
    mean_batch_occupancy: float
    latency_p50_s: float
    latency_p95_s: float
    cache: dict[str, CacheStats] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Aggregate hit rate across all stage caches."""
        hits = sum(s.hits for s in self.cache.values())
        misses = sum(s.misses for s in self.cache.values())
        total = hits + misses
        return hits / total if total else 0.0


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class ServiceStats:
    """Thread-safe accumulator for the serving counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._deduplicated = 0
        self._batches = 0
        self._occupancy_sum = 0
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)

    def record_submitted(self) -> None:
        with self._lock:
            self._requests += 1

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_batch(self, size: int, unique: int) -> None:
        with self._lock:
            self._batches += 1
            self._occupancy_sum += size
            self._deduplicated += size - unique

    def record_completion(self, latency_s: float, failed: bool) -> None:
        with self._lock:
            if failed:
                self._failed += 1
            else:
                self._completed += 1
            self._latencies.append(latency_s)

    def snapshot(self, cache: dict[str, CacheStats] | None = None,
                 ) -> ServiceStatsSnapshot:
        with self._lock:
            ordered = sorted(self._latencies)
            occupancy = (self._occupancy_sum / self._batches
                         if self._batches else 0.0)
            return ServiceStatsSnapshot(
                requests=self._requests,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                deduplicated=self._deduplicated,
                batches=self._batches,
                mean_batch_occupancy=occupancy,
                latency_p50_s=_quantile(ordered, 0.50),
                latency_p95_s=_quantile(ordered, 0.95),
                cache=dict(cache or {}),
            )
