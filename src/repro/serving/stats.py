"""Service counters: requests, batches, occupancy, latency quantiles.

:class:`ServiceStats` is the mutable, thread-safe accumulator the
service updates on its hot path; :meth:`ServiceStats.snapshot` freezes
it into a :class:`ServiceStatsSnapshot` for reporting.  Latencies are
kept in a bounded ring (the most recent ``LATENCY_WINDOW`` requests),
so quantiles track current behaviour and memory stays constant under
sustained traffic.

Failed requests (fast rejects, timeouts, executor errors) are tracked
in their **own** latency window: folding them into the success
quantiles would skew p50/p95 toward whatever failure mode is current,
so the snapshot reports both distributions side by side.

Every counter is also folded into the process-wide
:class:`~repro.observability.metrics.MetricsRegistry` (``serving.*``
names), so serving shares one reporting surface with training and
evaluation -- ``global_metrics().snapshot()`` sees it all.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.observability.metrics import (
    MetricsRegistry,
    global_metrics,
    nearest_rank_quantile,
)
from repro.serving.cache import CacheStats

#: How many recent request latencies feed the p50/p95 estimates.
LATENCY_WINDOW: int = 4096


@dataclass(frozen=True, slots=True)
class ServiceStatsSnapshot:
    """A point-in-time view of one service's counters."""

    requests: int
    completed: int
    failed: int
    rejected: int
    deduplicated: int
    batches: int
    mean_batch_occupancy: float
    latency_p50_s: float
    latency_p95_s: float
    cache: dict[str, CacheStats] = field(default_factory=dict)
    #: Requests shed at batch-collection time because their deadline
    #: had expired (no executor work was spent on them).  Disjoint from
    #: ``completed``/``failed``.
    shed: int = 0
    #: Requests answered from cache alone while the circuit breaker
    #: was open (their results carry ``degraded=True``).
    degraded: int = 0
    #: Executor retry attempts performed beyond first tries.
    retries: int = 0
    #: Circuit breaker state at snapshot time ("closed" when no
    #: breaker is configured).
    breaker_state: str = "closed"
    #: Quantiles of the *failed*-request latency window (0.0 when no
    #: failure has been recorded) -- kept out of latency_p50/p95_s.
    failed_latency_p50_s: float = 0.0
    failed_latency_p95_s: float = 0.0
    #: The queue-wait vs execute split of request latency: how long
    #: requests sat queued before their batch started, and how long
    #: batch execution itself took.
    queue_wait_p50_s: float = 0.0
    queue_wait_p95_s: float = 0.0
    execute_p50_s: float = 0.0
    execute_p95_s: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Aggregate hit rate across all stage caches."""
        hits = sum(s.hits for s in self.cache.values())
        misses = sum(s.misses for s in self.cache.values())
        total = hits + misses
        return hits / total if total else 0.0


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample.

    Delegates to the registry-wide ceil rule: fractional ranks resolve
    upward, so even-window medians pick the upper sample instead of
    banker's-rounding down.
    """
    return nearest_rank_quantile(ordered, q)


class ServiceStats:
    """Thread-safe accumulator for the serving counters.

    Parameters
    ----------
    registry:
        The metrics registry the counters are folded into; defaults to
        the process-wide :func:`~repro.observability.metrics.global_metrics`
        registry.  Instruments are named ``serving.*``.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._deduplicated = 0
        self._batches = 0
        self._occupancy_sum = 0
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._failed_latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._queue_waits: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._executes: deque[float] = deque(maxlen=LATENCY_WINDOW)
        registry = registry if registry is not None else global_metrics()
        self._m_requests = registry.counter("serving.requests")
        self._m_completed = registry.counter("serving.completed")
        self._m_failed = registry.counter("serving.failed")
        self._m_rejected = registry.counter("serving.rejected")
        self._m_deduplicated = registry.counter("serving.deduplicated")
        self._m_batches = registry.counter("serving.batches")
        self._m_batch_size = registry.histogram("serving.batch_size")
        self._m_latency = registry.histogram("serving.latency_s")
        self._m_failed_latency = registry.histogram("serving.failed_latency_s")
        self._m_queue_wait = registry.histogram("serving.queue_wait_s")
        self._m_execute = registry.histogram("serving.execute_s")
        self._shed = 0
        self._degraded = 0
        self._retries = 0
        self._m_shed = registry.counter("serving.shed")
        self._m_shed_wait = registry.histogram("serving.shed_wait_s")
        self._m_degraded = registry.counter("serving.degraded")
        self._m_retries = registry.counter("serving.retries")

    def record_submitted(self) -> None:
        with self._lock:
            self._requests += 1
        self._m_requests.inc()

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected += 1
        self._m_rejected.inc()

    def record_batch(self, size: int, unique: int) -> None:
        with self._lock:
            self._batches += 1
            self._occupancy_sum += size
            self._deduplicated += size - unique
        self._m_batches.inc()
        self._m_batch_size.observe(size)
        self._m_deduplicated.inc(size - unique)

    def record_batch_split(self, queue_waits: list[float],
                           execute_s: float) -> None:
        """The latency split of one executed batch: per-request time
        spent queued before the batch started, and the batch's own
        execution time."""
        with self._lock:
            self._queue_waits.extend(queue_waits)
            self._executes.append(execute_s)
        self._m_queue_wait.observe_many(queue_waits)
        self._m_execute.observe(execute_s)

    @property
    def batches(self) -> int:
        """Batches executed so far (names the retry jitter stream)."""
        with self._lock:
            return self._batches

    def record_shed(self, queued_s: float) -> None:
        """One request shed on deadline expiry after ``queued_s`` in
        queue, before any executor work."""
        with self._lock:
            self._shed += 1
        self._m_shed.inc()
        self._m_shed_wait.observe(queued_s)

    def record_degraded(self) -> None:
        """One request answered cache-only while the breaker was open."""
        with self._lock:
            self._degraded += 1
        self._m_degraded.inc()

    def record_retries(self, attempts: int) -> None:
        """``attempts`` executor retries performed beyond first tries."""
        if attempts <= 0:
            return
        with self._lock:
            self._retries += attempts
        self._m_retries.inc(attempts)

    def record_completion(self, latency_s: float, failed: bool) -> None:
        with self._lock:
            if failed:
                self._failed += 1
                self._failed_latencies.append(latency_s)
            else:
                self._completed += 1
                self._latencies.append(latency_s)
        if failed:
            self._m_failed.inc()
            self._m_failed_latency.observe(latency_s)
        else:
            self._m_completed.inc()
            self._m_latency.observe(latency_s)

    def snapshot(self, cache: dict[str, CacheStats] | None = None,
                 breaker_state: str = "closed") -> ServiceStatsSnapshot:
        with self._lock:
            ordered = sorted(self._latencies)
            failed_ordered = sorted(self._failed_latencies)
            waits = sorted(self._queue_waits)
            executes = sorted(self._executes)
            occupancy = (self._occupancy_sum / self._batches
                         if self._batches else 0.0)
            return ServiceStatsSnapshot(
                requests=self._requests,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                deduplicated=self._deduplicated,
                batches=self._batches,
                mean_batch_occupancy=occupancy,
                latency_p50_s=_quantile(ordered, 0.50),
                latency_p95_s=_quantile(ordered, 0.95),
                cache=dict(cache or {}),
                failed_latency_p50_s=_quantile(failed_ordered, 0.50),
                failed_latency_p95_s=_quantile(failed_ordered, 0.95),
                queue_wait_p50_s=_quantile(waits, 0.50),
                queue_wait_p95_s=_quantile(waits, 0.95),
                execute_p50_s=_quantile(executes, 0.50),
                execute_p95_s=_quantile(executes, 0.95),
                shed=self._shed,
                degraded=self._degraded,
                retries=self._retries,
                breaker_state=breaker_state,
            )
