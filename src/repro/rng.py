"""Deterministic random-number management.

All stochastic components of the library draw from
:class:`numpy.random.Generator` instances produced here.  Seeds are
derived from a root seed plus a string *scope*, so independent
subsystems (dataset synthesis, model initialisation, sampling with the
paper's "K different random seeds", ...) get decorrelated yet fully
reproducible streams, and adding a new consumer never perturbs the
streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "make_rng", "spawn"]

_MASK_63 = (1 << 63) - 1


def derive_seed(root_seed: int, scope: str) -> int:
    """Derive a stable 63-bit seed from ``root_seed`` and a scope label.

    The derivation uses BLAKE2b over the pair, so distinct scopes give
    independent seeds and the mapping is stable across platforms and
    Python versions (unlike the salted builtin ``hash``).
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{scope}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") & _MASK_63


def make_rng(root_seed: int, scope: str = "") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``scope``.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    scope:
        A label identifying the consumer, e.g. ``"datasets.uvsd"``.
    """
    return np.random.default_rng(derive_seed(root_seed, scope))


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, _MASK_63, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
