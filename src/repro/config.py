"""Central reader for every ``REPRO_*`` environment variable.

The library's runtime knobs used to be read ad hoc -- worker counts in
:mod:`repro.evaluation.parallel`, the trace path in
:mod:`repro.observability.tracing`, the fault spec in
:mod:`repro.reliability.faults` -- each module parsing ``os.environ``
with its own conventions.  :class:`Settings` is the single reader they
all share now: one dataclass, one variable registry (:data:`ENV_VARS`,
which the README's configuration table mirrors), one place validation
and defaults live.

``settings()`` reads the environment *fresh on every call*.  That is
deliberate: tests monkeypatch variables mid-process, and caching a
snapshot at import time would silently ignore them.  The read is a
handful of dict lookups -- nothing here belongs on a per-request hot
path anyway (callers resolve once per pool/run/exporter, not per
prediction).

======================== =====================================================
variable                 meaning
======================== =====================================================
``REPRO_NUM_WORKERS``    default worker count for parallel evaluation
``REPRO_PARALLEL_BACKEND`` default evaluation backend (serial|thread|process)
``REPRO_TRACE``          path: install the JSONL span exporter at import
``REPRO_FAULTS``         fault-plan spec: arm deterministic fault injection
``REPRO_POOL_REPLICAS``  default replica count for ``ReplicaPool``
``REPRO_POOL_BACKEND``   default replica backend (thread|process)
``REPRO_HYPOTHESIS_PROFILE`` hypothesis profile for the property suites
======================== =====================================================
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "BACKEND_ENV",
    "ENV_VARS",
    "FAULTS_ENV",
    "HYPOTHESIS_PROFILE_ENV",
    "NUM_WORKERS_ENV",
    "POOL_BACKEND_ENV",
    "POOL_REPLICAS_ENV",
    "Settings",
    "TRACE_ENV",
    "env_value",
    "settings",
]

#: Environment variable naming the default evaluation worker count.
NUM_WORKERS_ENV = "REPRO_NUM_WORKERS"

#: Environment variable naming the default evaluation backend.
BACKEND_ENV = "REPRO_PARALLEL_BACKEND"

#: Environment variable naming the JSONL trace output path.
TRACE_ENV = "REPRO_TRACE"

#: Environment variable holding the fault-injection plan spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Environment variable naming the default replica-pool size.
POOL_REPLICAS_ENV = "REPRO_POOL_REPLICAS"

#: Environment variable naming the default replica-pool backend.
POOL_BACKEND_ENV = "REPRO_POOL_BACKEND"

#: Environment variable selecting the hypothesis settings profile.
HYPOTHESIS_PROFILE_ENV = "REPRO_HYPOTHESIS_PROFILE"

#: Every recognised variable: name -> (one-line meaning, default shown
#: in docs).  ``tests/test_config.py`` asserts this registry and the
#: :class:`Settings` fields stay in sync.
ENV_VARS: dict[str, tuple[str, str]] = {
    NUM_WORKERS_ENV: (
        "default worker count for parallel evaluation", "cpu count"),
    BACKEND_ENV: (
        "default evaluation backend: serial | thread | process", "serial"),
    TRACE_ENV: (
        "path of the JSONL span trace (installs the exporter at import)",
        "unset (tracing off)"),
    FAULTS_ENV: (
        "fault-plan spec armed at repro.reliability import",
        "unset (no faults)"),
    POOL_REPLICAS_ENV: (
        "default ReplicaPool size", "1"),
    POOL_BACKEND_ENV: (
        "default ReplicaPool backend: thread | process", "thread"),
    HYPOTHESIS_PROFILE_ENV: (
        "hypothesis profile for the property suites: fast | ci", "fast"),
}


def env_value(name: str,
              environ: Mapping[str, str] | None = None) -> str | None:
    """Raw value of one registered variable; ``None`` when unset or empty.

    The import-time hooks (the trace exporter, the fault-plan arm) read
    through this instead of :func:`settings` so a malformed *unrelated*
    variable -- say ``REPRO_POOL_REPLICAS=abc`` -- cannot break
    ``import repro``; it fails where that variable is actually consumed.
    """
    if name not in ENV_VARS:
        raise ConfigError(
            f"unknown configuration variable {name!r}; "
            f"known: {sorted(ENV_VARS)}")
    env = os.environ if environ is None else environ
    return env.get(name) or None


def _parse_positive_int(name: str, raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ConfigError(f"{name} must be positive, got {value}")
    return value


@dataclass(frozen=True, slots=True)
class Settings:
    """One immutable snapshot of every ``REPRO_*`` variable.

    ``None`` means the variable is unset and the consuming layer should
    apply its own default (CPU count, serial backend, tracing off, ...).
    Backend *names* are carried verbatim; choice validation stays with
    the consuming resolver so an unknown name fails with the same error
    wherever it is supplied (env or argument).
    """

    num_workers: int | None = None
    parallel_backend: str | None = None
    trace_path: str | None = None
    faults_spec: str | None = None
    pool_replicas: int | None = None
    pool_backend: str | None = None
    hypothesis_profile: str = "fast"

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "Settings":
        """Read (and validate the numeric fields of) one snapshot.

        Raises
        ------
        ConfigError
            When a count variable is not a positive integer.
        """
        env = os.environ if environ is None else environ
        num_workers = env.get(NUM_WORKERS_ENV) or None
        pool_replicas = env.get(POOL_REPLICAS_ENV) or None
        return cls(
            num_workers=(_parse_positive_int(NUM_WORKERS_ENV, num_workers)
                         if num_workers is not None else None),
            parallel_backend=env.get(BACKEND_ENV) or None,
            trace_path=env.get(TRACE_ENV) or None,
            faults_spec=env.get(FAULTS_ENV) or None,
            pool_replicas=(_parse_positive_int(POOL_REPLICAS_ENV,
                                               pool_replicas)
                           if pool_replicas is not None else None),
            pool_backend=env.get(POOL_BACKEND_ENV) or None,
            hypothesis_profile=env.get(HYPOTHESIS_PROFILE_ENV) or "fast",
        )


def settings(environ: Mapping[str, str] | None = None) -> Settings:
    """The current environment's :class:`Settings` (read fresh -- see
    the module docstring for why there is no cache)."""
    return Settings.from_env(environ)
