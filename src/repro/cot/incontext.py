"""In-context example conditioning (Section IV-F).

Large foundation models shift their predictions toward evidence in the
prompt; the paper exploits this by retrieving training examples and
placing them before the query.  The simulator models that influence
directly: each in-context example shifts the assessment logit toward
its own label, weighted by how similar its facial-action description is
to the query's.  Similar examples therefore help (their label agrees
with the query's with high probability) while dissimilar / random ones
inject noise -- which is exactly the Table VII finding that random
examples underperform using no examples at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.facs.descriptions import FacialDescription

#: How strongly one fully-similar example sways the assessment.
ICL_GAIN: float = 1.6


@dataclass(frozen=True)
class InContextExample:
    """A retrieved training example placed in the prompt."""

    description: FacialDescription
    label: int


def description_similarity(a: FacialDescription,
                           b: FacialDescription) -> float:
    """Cosine similarity of binary AU vectors, in [0, 1]."""
    va, vb = a.to_vector(), b.to_vector()
    denom = np.linalg.norm(va) * np.linalg.norm(vb)
    if denom == 0:
        return 0.0
    return float(va @ vb / denom)


def incontext_logit_shift(query: FacialDescription,
                          examples: list[InContextExample],
                          gain: float = ICL_GAIN) -> float:
    """Signed logit shift induced by the in-context examples."""
    if not examples:
        return 0.0
    shift = 0.0
    for example in examples:
        direction = 1.0 if example.label == 1 else -1.0
        shift += direction * description_similarity(query, example.description)
    return gain * shift / len(examples)
