"""The Describe -> Assess -> Highlight inference pipeline.

:class:`StressChainPipeline` is the deployment-time entry point of the
library: it runs the paper's reasoning chain over a foundation model,
producing a stress prediction *and* its rationale in a single forward
chain (which is what makes Figure 6's efficiency comparison possible).
Options cover every inference protocol in the evaluation:

- ``use_chain=False`` -- the "w/o Chain" direct query;
- ``retriever`` -- in-context example retrieval (Table VII);
- ``test_time_refine=True`` -- refinement without weight updates, the
  protocol applied to frozen off-the-shelf models in Table VIII.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cot.incontext import incontext_logit_shift
from repro.cot.rationale import Rationale
from repro.deprecation import warn_deprecated
from repro.errors import DeadlineExceededError, ModelError
from repro.facs.descriptions import FacialDescription
from repro.model.foundation import STRESSED, UNSTRESSED, FoundationModel
from repro.model.generation import GREEDY, GenerationConfig
from repro.model.session import DialogueSession
from repro.nn.tensorops import sigmoid
from repro.observability.tracing import span
from repro.reliability.deadlines import Deadline
from repro.rng import derive_seed
from repro.training.verification import verification_score
from repro.video.frame import Video

import numpy as np


@dataclass(frozen=True)
class ChainResult:
    """Everything one chain run produces."""

    description: FacialDescription | None
    label: int
    prob_stressed: float
    rationale: Rationale
    session: DialogueSession
    elapsed_seconds: float
    #: ``True`` when the serving layer answered this request from its
    #: stage caches alone because the circuit breaker was open (the
    #: values are still bitwise-identical to a computed chain run; the
    #: flag only marks *how* they were obtained).
    degraded: bool = False

    @property
    def is_stressed(self) -> bool:
        return self.label == STRESSED


class StressChainPipeline:
    """Runs the reasoning chain for one model.

    Parameters
    ----------
    model:
        A trained :class:`FoundationModel` (or frozen off-the-shelf
        proxy).
    use_chain:
        ``False`` reproduces the "w/o Chain" ablation: a direct
        stress query with no description conditioning (a rationale is
        still produced afterwards via I3, as in Table IV's protocol).
    retriever:
        Optional in-context retriever (see :mod:`repro.retrieval`).
    test_time_refine:
        Apply the Table VIII test-time self-refinement: reflect on the
        description and keep candidates that verify at least as
        faithfully, without any weight update.  Requires
        ``verification_pool``.
    verification_pool:
        Videos used to draw verification negatives from.
    seed:
        Scopes all sampling inside the pipeline.
    """

    def __init__(
        self,
        model: FoundationModel,
        use_chain: bool = True,
        retriever=None,
        test_time_refine: bool = False,
        verification_pool: list[Video] | None = None,
        refine_rounds: int = 2,
        num_verify_trials: int = 3,
        seed: int = 0,
    ):
        if test_time_refine and not verification_pool:
            raise ModelError(
                "test_time_refine needs a verification_pool of videos"
            )
        self.model = model
        self.use_chain = use_chain
        self.retriever = retriever
        self.test_time_refine = test_time_refine
        self.verification_pool = verification_pool or []
        self.refine_rounds = refine_rounds
        self.num_verify_trials = num_verify_trials
        self.seed = seed

    # ------------------------------------------------------------------

    def predict(self, video: Video, *, explain: bool = True,
                deadline_ms: float | None = None) -> ChainResult:
        """Run the chain on one video.

        This is the library's one serial prediction entry point (the
        served twins are :meth:`StressService.predict`/``submit``).
        With the keyword defaults the math is exactly the paper's
        chain -- the golden fixtures and the serving equivalence suite
        pin it bitwise.

        Parameters
        ----------
        video:
            The clip to assess.
        explain:
            ``False`` skips the Highlight stage: the result carries an
            empty rationale (and no I3 dialogue turn) in exchange for
            roughly a third less model work.  Label and probability
            are unchanged.
        deadline_ms:
            Best-effort compute budget, checked at stage boundaries:
            if the budget is exhausted before the result is complete,
            :class:`~repro.errors.DeadlineExceededError` is raised
            rather than burning further model time.  (The serving
            layer's ``deadline_ms`` sheds *queued* requests; this is
            the serial analogue for offline sweeps.)
        """
        deadline = (Deadline.after_ms(deadline_ms)
                    if deadline_ms is not None else None)
        start = time.perf_counter()
        session = DialogueSession()

        description: FacialDescription | None = None
        if self.use_chain:
            with span("chain.describe", refine=self.test_time_refine):
                description = self.model.describe(
                    video, GREEDY, session=session
                )
                if self.test_time_refine:
                    description = self._refine_description(video, description)
            _check_deadline(deadline, "Describe")

        with span("chain.assess", use_chain=self.use_chain):
            logit = self.model.assess_logit(video, description)
            if self.retriever is not None and description is not None:
                examples = self.retriever.retrieve(video, description)
                shift = incontext_logit_shift(description, examples)
                # In-context evidence sways the model where it is unsure;
                # a confident assessment barely moves (the gating mirrors
                # how prompt examples influence a real LFM's decision).
                confidence = abs(
                    2.0 * float(sigmoid(np.array(logit))[()]) - 1.0)
                logit += shift * (1.0 - confidence)
            prob = float(sigmoid(np.array(logit))[()])
            label = STRESSED if logit > 0 else UNSTRESSED
            session.record(
                _assess_instruction(self.use_chain),
                "Stressed" if label == STRESSED else "Unstressed",
            )

        rationale = Rationale(())
        if explain:
            _check_deadline(deadline, "Assess")
            with span("chain.highlight"):
                highlight_desc = description
                if highlight_desc is None:
                    # w/o Chain still answers I3; it reads its greedy AU
                    # estimate off the video when asked to point at cues.
                    highlight_desc = self.model.describe(video, GREEDY)
                rationale = Rationale(self.model.highlight(
                    video, highlight_desc, label, GREEDY, session=session,
                ))

        elapsed = time.perf_counter() - start
        return ChainResult(
            description=description,
            label=label,
            prob_stressed=prob,
            rationale=rationale,
            session=session,
            elapsed_seconds=elapsed,
        )

    def predict_many(self, videos: list[Video], *, batch_size: int = 32,
                     caches=None) -> list[ChainResult]:
        """Run the chain over many videos through the serving batch
        executor: duplicate contents are computed once per batch, and
        the per-stage caches share Describe/Assess work across the
        call.  Results are bitwise-identical to calling
        :meth:`predict` per video, in order.

        Parameters
        ----------
        videos:
            Videos to run, in response order.
        batch_size:
            Executor batch granularity (bounds dedup bookkeeping).
        caches:
            Optional :class:`~repro.serving.cache.StageCaches` to
            reuse across calls (e.g. a service's warm caches); a fresh
            set is created otherwise.
        """
        from repro.errors import ConfigError
        from repro.serving.cache import StageCaches
        from repro.serving.executor import ChainBatchExecutor

        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        executor = ChainBatchExecutor(
            self, caches if caches is not None else StageCaches())
        results: list[ChainResult] = []
        for begin in range(0, len(videos), batch_size):
            outcomes, __ = executor.run_batch(videos[begin:begin + batch_size])
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    raise outcome
                results.append(outcome)
        return results

    # -- deprecated aliases (kept for one release cycle) ----------------

    def run(self, video: Video) -> ChainResult:
        """Deprecated alias of :meth:`predict`."""
        warn_deprecated("StressChainPipeline.run",
                        "StressChainPipeline.predict")
        return self.predict(video)

    def run_many(self, videos: list[Video], batch_size: int = 32,
                 caches=None) -> list[ChainResult]:
        """Deprecated alias of :meth:`predict_many`."""
        warn_deprecated("StressChainPipeline.run_many",
                        "StressChainPipeline.predict_many")
        return self.predict_many(videos, batch_size=batch_size, caches=caches)

    # ------------------------------------------------------------------

    def _refine_description(self, video: Video,
                            description: FacialDescription) -> FacialDescription:
        """Test-time self-refinement (Table VIII): keep reflected
        candidates that verify at least as faithfully; no labels, no
        weight updates."""
        current = description
        current_score = self._verify(video, current, round_index=-1)
        for round_index in range(self.refine_rounds):
            candidate = self.model.reflect_description(
                video, current,
                GenerationConfig(
                    temperature=1.0,
                    seed=derive_seed(self.seed,
                                     f"ttr:{video.video_id}:{round_index}"),
                ),
                true_label=None,
            )
            if candidate == current:
                break
            candidate_score = self._verify(video, candidate, round_index)
            if candidate_score >= current_score:
                current, current_score = candidate, candidate_score
            else:
                break
        return current

    def _verify(self, video: Video, description: FacialDescription,
                round_index: int) -> float:
        return verification_score(
            self.model, video, description, self.verification_pool,
            num_trials=self.num_verify_trials,
            seed=derive_seed(self.seed, f"ttv:{video.video_id}:{round_index}"),
        )


#: The facade name the public API exports: ``repro.StressPipeline`` is
#: the documented way to reach the chain pipeline (the historical
#: ``StressChainPipeline`` name remains valid -- it is the same class).
StressPipeline = StressChainPipeline


def _check_deadline(deadline: Deadline | None, stage: str) -> None:
    if deadline is not None and deadline.expired():
        raise DeadlineExceededError(
            f"predict deadline expired after the {stage} stage; "
            "no further model work was spent")


def _assess_instruction(use_chain: bool):
    from repro.model.instructions import (
        ASSESS_INSTRUCTION,
        DIRECT_ASSESS_INSTRUCTION,
    )

    return ASSESS_INSTRUCTION if use_chain else DIRECT_ASSESS_INSTRUCTION
