"""Chain-of-Thought inference runtime.

:class:`~repro.cot.chain.StressChainPipeline` executes the paper's
Describe -> Assess -> Highlight chain over a trained (or off-the-shelf)
foundation model, optionally with in-context examples
(:mod:`~repro.cot.incontext`) and test-time self-refinement (the
Table VIII protocol).  :mod:`~repro.cot.rationale` grounds highlighted
facial actions to frame segments for the interpretability evaluation.
"""

from repro.cot.chain import ChainResult, StressChainPipeline
from repro.cot.incontext import InContextExample, incontext_logit_shift
from repro.cot.rationale import Rationale

__all__ = [
    "ChainResult",
    "InContextExample",
    "Rationale",
    "StressChainPipeline",
    "incontext_logit_shift",
]
