"""Rationale objects and segment grounding.

A :class:`Rationale` is the importance-ordered tuple of highlighted
action units the model emits at the Highlight step, plus helpers to
ground each highlighted action to the SLIC segments of the
most-expressive frame (Section IV-H: "we locate the segment of each
single facial action using the corresponding facial landmark") so the
rationale is directly comparable to pixel-space explainers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.facs.action_units import au_by_id
from repro.facs.regions import region_for_au
from repro.video.landmarks import segments_for_au


@dataclass(frozen=True)
class Rationale:
    """An importance-ordered highlighted-AU rationale."""

    au_ids: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.au_ids)

    def __iter__(self):
        return iter(self.au_ids)

    def render(self) -> str:
        """Human-readable rationale text."""
        if not self.au_ids:
            return "No single facial expression stands out."
        lines = [
            f"{rank}. {au_by_id(au_id).name.lower()} "
            f"({au_by_id(au_id).region}: {au_by_id(au_id).phrase})"
            for rank, au_id in enumerate(self.au_ids, start=1)
        ]
        return "The critical facial expressions are:\n" + "\n".join(lines)

    def segment_ranking(self, labels: np.ndarray,
                        per_au: int = 1) -> list[int]:
        """Ground the rationale to a ranked list of SLIC segment ids
        using the world landmark (deformation-pattern energy) of each
        highlighted AU.

        For each highlighted AU (in importance order) the ``per_au``
        most evidence-dense segments are appended; duplicates keep
        their first (highest) rank.  The result is what the
        deletion-metric evaluation perturbs as this method's "top-k
        segments".
        """
        ranked: list[int] = []
        for au_id in self.au_ids:
            for segment in segments_for_au(au_id, labels,
                                           max_segments=per_au):
                if segment not in ranked:
                    ranked.append(segment)
        return ranked

    def model_segment_ranking(self, model, labels: np.ndarray,
                              per_au: int = 1) -> list[int]:
        """Ground the rationale through the *model's own* sensitivity
        maps: for each highlighted AU, segments are ranked by how much
        of the model's describe-pathway weight energy for that AU they
        cover, restricted to the AU's facial region.

        This is the self-explanatory grounding the chain pipeline
        reports: "where I looked when I read this action".
        """
        frame_size = labels.shape[0]
        num_labels = int(labels.max()) + 1
        ranked: list[int] = []
        for au_id in self.au_ids:
            sensitivity = _upsample(model.au_patch_sensitivity(au_id),
                                    frame_size)
            region_mask = region_for_au(au_id).mask(frame_size)
            sensitivity = sensitivity * region_mask
            energy = np.bincount(labels.ravel(),
                                 weights=sensitivity.ravel(),
                                 minlength=num_labels)
            order = [int(i) for i in np.argsort(-energy) if energy[i] > 0]
            if not order:
                order = segments_for_au(au_id, labels, max_segments=per_au)
            for segment in order[:per_au]:
                if segment not in ranked:
                    ranked.append(segment)
        return ranked


def _upsample(patch_map: np.ndarray, frame_size: int) -> np.ndarray:
    """Nearest-neighbour upsample of a patch-grid map to pixel space."""
    grid = patch_map.shape[0]
    reps = frame_size // grid
    return np.repeat(np.repeat(patch_map, reps, axis=0), reps, axis=1)
