"""Interpretable video-based stress detection with self-refine chain
reasoning.

A full reproduction of the ICDE 2025 paper on a synthetic substrate
(see DESIGN.md): the Describe -> Assess -> Highlight reasoning chain
over a trainable vision-language foundation-model simulator, the
self-refine DPO learning scheme, eight supervised baselines, three
post-hoc explainers, and a harness regenerating every table and figure
of the paper's evaluation.

Quickstart::

    from repro import (
        generate_uvsd, generate_disfa, build_instruction_pairs,
        train_test_split, train_stress_model, StressChainPipeline,
    )

    dataset = generate_uvsd(num_samples=400, num_subjects=40)
    train, test = train_test_split(dataset)
    pairs = build_instruction_pairs(generate_disfa(num_samples=300))
    model, report = train_stress_model(train, pairs)
    pipeline = StressPipeline(model)
    result = pipeline.predict(test[0].video)
    print(result.label, result.rationale.render())

Every error the library raises derives from :class:`ReproError`; every
``REPRO_*`` environment variable is read through
:func:`~repro.config.settings` (see the README's configuration table).
"""

from repro.config import ENV_VARS, Settings, settings
from repro.cot.chain import (
    ChainResult,
    StressChainPipeline,
    StressPipeline,
)
from repro.cot.rationale import Rationale
from repro.datasets import (
    build_instruction_pairs,
    generate_disfa,
    generate_rsl,
    generate_uvsd,
    kfold_splits,
    train_test_split,
)
from repro.errors import (
    CheckpointError,
    CircuitOpenError,
    ConfigError,
    DatasetError,
    DeadlineExceededError,
    DeploymentError,
    ExperimentError,
    ExplainerError,
    FaultInjectedError,
    GenerationError,
    ModelError,
    PoolError,
    RegistryError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
    TrainingError,
    TransientError,
)
from repro.facs.descriptions import FacialDescription
from repro.metrics.classification import evaluate_predictions
from repro.model.foundation import FoundationModel
from repro.model.pretrained import available_vendors, load_offtheshelf
from repro.model.registry import ModelRegistry
from repro.observability import (
    MetricsRegistry,
    global_metrics,
    install_exporter,
    span,
)
from repro.reliability import (
    BreakerConfig,
    Deadline,
    FaultPlan,
    RetryPolicy,
    injected,
)
from repro.serving import (
    Deployment,
    PoolStatsSnapshot,
    ReplicaPool,
    ServiceConfig,
    StressService,
)
from repro.training.self_refine import SelfRefineConfig
from repro.training.trainer import train_stress_model, variant_config

__version__ = "1.1.0"

__all__ = [
    "BreakerConfig",
    "ChainResult",
    "CheckpointError",
    "CircuitOpenError",
    "ConfigError",
    "DatasetError",
    "Deadline",
    "DeadlineExceededError",
    "Deployment",
    "DeploymentError",
    "ENV_VARS",
    "ExperimentError",
    "ExplainerError",
    "FacialDescription",
    "FaultInjectedError",
    "FaultPlan",
    "FoundationModel",
    "GenerationError",
    "MetricsRegistry",
    "ModelError",
    "ModelRegistry",
    "PoolError",
    "PoolStatsSnapshot",
    "Rationale",
    "RegistryError",
    "ReplicaPool",
    "ReproError",
    "RetryPolicy",
    "SelfRefineConfig",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceOverloadedError",
    "ServingError",
    "Settings",
    "StressChainPipeline",
    "StressPipeline",
    "StressService",
    "TrainingError",
    "TransientError",
    "available_vendors",
    "build_instruction_pairs",
    "evaluate_predictions",
    "generate_disfa",
    "generate_rsl",
    "generate_uvsd",
    "global_metrics",
    "injected",
    "install_exporter",
    "kfold_splits",
    "load_offtheshelf",
    "settings",
    "span",
    "train_stress_model",
    "train_test_split",
    "variant_config",
]
