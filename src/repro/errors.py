"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or split as requested."""


class ModelError(ReproError):
    """A model was used in an unsupported way (e.g. before training)."""


class GenerationError(ModelError):
    """Text/description generation failed or produced an unparsable output."""


class TrainingError(ReproError):
    """A training stage could not run (bad stage ordering, empty data, ...)."""


class ExplainerError(ReproError):
    """An explainer received inputs it cannot attribute."""


class ExperimentError(ReproError):
    """An experiment runner was invoked with an unknown id or bad options."""


class ServingError(ReproError):
    """The serving layer was used in an unsupported way."""


class ServiceClosedError(ServingError):
    """A request was submitted to a service that has shut down."""


class ServiceOverloadedError(ServingError):
    """Backpressure: the request queue is at ``max_queue_depth``."""
