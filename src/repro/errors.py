"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "CheckpointError",
    "CircuitOpenError",
    "ConfigError",
    "DatasetError",
    "DeadlineExceededError",
    "DeploymentError",
    "ExperimentError",
    "ExplainerError",
    "FaultInjectedError",
    "GenerationError",
    "ModelError",
    "PoolError",
    "RegistryError",
    "ReproError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "ServingError",
    "TrainingError",
    "TransientError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or split as requested."""


class ModelError(ReproError):
    """A model was used in an unsupported way (e.g. before training)."""


class GenerationError(ModelError):
    """Text/description generation failed or produced an unparsable output."""


class TrainingError(ReproError):
    """A training stage could not run (bad stage ordering, empty data, ...)."""


class ExplainerError(ReproError):
    """An explainer received inputs it cannot attribute."""


class ExperimentError(ReproError):
    """An experiment runner was invoked with an unknown id or bad options."""


class ServingError(ReproError):
    """The serving layer was used in an unsupported way."""


class ServiceClosedError(ServingError):
    """A request was submitted to a service that has shut down."""


class ServiceOverloadedError(ServingError):
    """Backpressure: the request queue is at ``max_queue_depth``."""


class TransientError(ReproError):
    """A failure that is safe to retry: the operation itself is sound,
    the attempt hit a passing condition (injected fault, transient
    resource hiccup).  The reliability layer's retry/circuit-breaker
    machinery classifies errors as retryable iff they derive from this
    class; everything else in the taxonomy is treated as fatal."""


class FaultInjectedError(TransientError):
    """Raised by an armed :class:`~repro.reliability.faults.FaultPlan`
    at a named fault site.  Retryable by design: injected faults model
    transient infrastructure failures."""


class DeadlineExceededError(ServingError):
    """The request's deadline expired while it was still queued; it was
    shed before any executor work was spent on it."""


class CircuitOpenError(ServingError):
    """The serving circuit breaker is open and the request could not be
    served from cache (degraded mode off or cache miss)."""


class CheckpointError(ReproError):
    """A training checkpoint is missing, corrupt, or belongs to a
    different (config, dataset) fingerprint than the resuming run."""


class PoolError(ServingError):
    """The replica pool was used in an unsupported way (bad replica
    count, closed pool, unknown replica backend)."""


class RegistryError(ModelError):
    """A model-registry artifact is missing, corrupt, or fails its
    recorded integrity digest."""


class DeploymentError(PoolError):
    """A versioned deploy could not complete -- the canary's circuit
    breaker tripped (the canaries were rolled back), or the requested
    version is not loadable on every replica."""
