"""SOBOL attribution (Fel et al., NeurIPS 2021).

Attributes the model output to segments via Sobol total-order
sensitivity indices estimated with the Jansen estimator on
quasi-Monte-Carlo mask sequences:

    ST_i = E[ (f(A) - f(A_B^(i)))^2 ] / (2 * Var(f))

where ``A`` and ``B`` are two QMC mask matrices and ``A_B^(i)`` is
``A`` with column ``i`` taken from ``B``.  Masks are real-valued in
``[0, 1]`` and applied multiplicatively between the frame and a
mid-gray baseline, as in the original method.  Total black-box calls:
``N * (d + 2)`` -- the design-point economy that makes SOBOL the
fastest of the paper's post-hoc baselines.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import qmc

from repro.explainers.base import (
    Explainer,
    PredictFn,
    SegmentAttribution,
    predict_batch,
)
from repro.rng import derive_seed


class SobolExplainer(Explainer):
    """Sobol total-index attribution on QMC masks.

    Parameters
    ----------
    num_designs:
        ``N``, the number of QMC base designs.  Black-box calls are
        ``N * (num_segments + 2)``; the default keeps the budget near
        the paper's ~1000 evaluations for 64 segments.
    baseline:
        Fill value a fully-masked segment fades toward.
    """

    name = "SOBOL"

    def __init__(self, num_designs: int = 16, baseline: float = 0.5):
        if num_designs < 2:
            raise ValueError("num_designs must be at least 2")
        self.num_designs = num_designs
        self.baseline = baseline

    def attribute(self, frame: np.ndarray, labels: np.ndarray,
                  predict_fn: PredictFn, seed: int = 0) -> SegmentAttribution:
        num_segments = self._num_segments(labels)
        sampler = qmc.Sobol(d=2 * num_segments, scramble=True,
                            seed=derive_seed(seed, "sobol"))
        designs = sampler.random(self.num_designs)
        a_masks = designs[:, :num_segments]
        b_masks = designs[:, num_segments:]

        base_eval = predict_batch(
            predict_fn, self._fade(frame, labels, np.vstack([a_masks, b_masks]))
        )
        f_a = base_eval[: self.num_designs]
        f_b = base_eval[self.num_designs:]
        evaluations = 2 * self.num_designs

        # All N*d hybrid design points go through the model in one
        # batch: hybrid block i is A with column i taken from B.
        hybrids = np.repeat(a_masks[np.newaxis, :, :], num_segments, axis=0)
        hybrids[np.arange(num_segments), :, np.arange(num_segments)] = \
            b_masks.T
        f_hybrid = predict_batch(
            predict_fn,
            self._fade(frame, labels,
                       hybrids.reshape(num_segments * self.num_designs,
                                       num_segments)),
        ).reshape(num_segments, self.num_designs)
        evaluations += num_segments * self.num_designs

        total_variance = np.var(np.concatenate([f_a, f_b]))
        scores = np.mean((f_a[np.newaxis, :] - f_hybrid) ** 2, axis=1) / (
            2.0 * total_variance + 1e-12
        )
        return SegmentAttribution(
            scores=scores, num_evaluations=evaluations, explainer=self.name
        )

    def _fade(self, frame: np.ndarray, labels: np.ndarray,
              masks: np.ndarray) -> np.ndarray:
        """Blend each segment toward the baseline by ``1 - mask_i``,
        for a ``(N, S)`` mask matrix -> ``(N, H, W)`` frame stack."""
        alpha = masks[:, labels]
        return self.baseline + alpha * (frame - self.baseline)
