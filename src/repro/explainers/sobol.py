"""SOBOL attribution (Fel et al., NeurIPS 2021).

Attributes the model output to segments via Sobol total-order
sensitivity indices estimated with the Jansen estimator on
quasi-Monte-Carlo mask sequences:

    ST_i = E[ (f(A) - f(A_B^(i)))^2 ] / (2 * Var(f))

where ``A`` and ``B`` are two QMC mask matrices and ``A_B^(i)`` is
``A`` with column ``i`` taken from ``B``.  Masks are real-valued in
``[0, 1]`` and applied multiplicatively between the frame and a
mid-gray baseline, as in the original method.  Total black-box calls:
``N * (d + 2)`` -- the design-point economy that makes SOBOL the
fastest of the paper's post-hoc baselines.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import qmc

from repro.explainers.base import Explainer, PredictFn, SegmentAttribution
from repro.rng import derive_seed


class SobolExplainer(Explainer):
    """Sobol total-index attribution on QMC masks.

    Parameters
    ----------
    num_designs:
        ``N``, the number of QMC base designs.  Black-box calls are
        ``N * (num_segments + 2)``; the default keeps the budget near
        the paper's ~1000 evaluations for 64 segments.
    baseline:
        Fill value a fully-masked segment fades toward.
    """

    name = "SOBOL"

    def __init__(self, num_designs: int = 16, baseline: float = 0.5):
        if num_designs < 2:
            raise ValueError("num_designs must be at least 2")
        self.num_designs = num_designs
        self.baseline = baseline

    def attribute(self, frame: np.ndarray, labels: np.ndarray,
                  predict_fn: PredictFn, seed: int = 0) -> SegmentAttribution:
        num_segments = self._num_segments(labels)
        sampler = qmc.Sobol(d=2 * num_segments, scramble=True,
                            seed=derive_seed(seed, "sobol"))
        designs = sampler.random(self.num_designs)
        a_masks = designs[:, :num_segments]
        b_masks = designs[:, num_segments:]

        def evaluate(mask: np.ndarray) -> float:
            return predict_fn(self._fade(frame, labels, mask))

        f_a = np.array([evaluate(mask) for mask in a_masks])
        f_b = np.array([evaluate(mask) for mask in b_masks])
        evaluations = 2 * self.num_designs

        total_variance = np.var(np.concatenate([f_a, f_b]))
        scores = np.zeros(num_segments)
        for i in range(num_segments):
            hybrid = a_masks.copy()
            hybrid[:, i] = b_masks[:, i]
            f_hybrid = np.array([evaluate(mask) for mask in hybrid])
            evaluations += self.num_designs
            scores[i] = np.mean((f_a - f_hybrid) ** 2) / (
                2.0 * total_variance + 1e-12
            )
        return SegmentAttribution(
            scores=scores, num_evaluations=evaluations, explainer=self.name
        )

    def _fade(self, frame: np.ndarray, labels: np.ndarray,
              mask: np.ndarray) -> np.ndarray:
        """Blend each segment toward the baseline by ``1 - mask_i``."""
        alpha = mask[labels]
        return self.baseline + alpha * (frame - self.baseline)
