"""LIME (Ribeiro et al., 2016) over SLIC superpixels.

For one instance, LIME samples binary keep/drop masks over the
segments, queries the black box on each masked frame, and fits a
locally-weighted ridge regression from masks to predictions; the
linear coefficients are the segment attributions.  Locality weights
use the standard exponential kernel on cosine distance between the
mask and the all-ones (unperturbed) instance.
"""

from __future__ import annotations

import numpy as np

from repro.explainers.base import (
    Explainer,
    PredictFn,
    SegmentAttribution,
    predict_batch,
)
from repro.rng import make_rng
from repro.video.perturb import apply_masks_batch


class LimeExplainer(Explainer):
    """Perturbation-based local linear explainer.

    Parameters
    ----------
    num_samples:
        Number of black-box evaluations (the paper sets 1000).
    keep_prob:
        Probability a segment stays on in a perturbation.
    kernel_width:
        Width of the exponential locality kernel.
    ridge:
        L2 regularisation of the local linear model.
    """

    name = "LIME"

    def __init__(self, num_samples: int = 1000, keep_prob: float = 0.5,
                 kernel_width: float = 0.25, ridge: float = 1e-3):
        if num_samples < 8:
            raise ValueError("num_samples must be at least 8")
        self.num_samples = num_samples
        self.keep_prob = keep_prob
        self.kernel_width = kernel_width
        self.ridge = ridge

    def attribute(self, frame: np.ndarray, labels: np.ndarray,
                  predict_fn: PredictFn, seed: int = 0) -> SegmentAttribution:
        num_segments = self._num_segments(labels)
        rng = make_rng(seed, "lime")
        masks = (rng.random((self.num_samples, num_segments))
                 < self.keep_prob).astype(np.float64)
        masks[0, :] = 1.0  # always include the unperturbed instance
        predictions = predict_batch(
            predict_fn, apply_masks_batch(frame, labels, masks)
        )
        # Cosine distance to the all-ones mask -> locality weights.
        ones = np.ones(num_segments)
        norms = np.linalg.norm(masks, axis=1) * np.linalg.norm(ones)
        cosine = np.divide(masks @ ones, norms,
                           out=np.zeros(len(masks)), where=norms > 0)
        distance = 1.0 - cosine
        weights = np.exp(-(distance**2) / self.kernel_width**2)
        coefs = _weighted_ridge(masks, predictions, weights, self.ridge)
        return SegmentAttribution(
            scores=coefs, num_evaluations=self.num_samples, explainer=self.name
        )


def _weighted_ridge(design: np.ndarray, targets: np.ndarray,
                    weights: np.ndarray, ridge: float) -> np.ndarray:
    """Weighted ridge regression with intercept; returns coefficients
    (without the intercept)."""
    augmented = np.column_stack([design, np.ones(len(design))])
    w_sqrt = np.sqrt(weights)
    a = augmented * w_sqrt[:, np.newaxis]
    b = targets * w_sqrt
    gram = a.T @ a + ridge * np.eye(augmented.shape[1])
    solution = np.linalg.solve(gram, a.T @ b)
    return solution[:-1]
