"""RISE (Petsiuk et al., BMVC 2018): randomized input sampling.

An additional perturbation comparator beyond the paper's three: RISE
estimates saliency as the expected model output conditioned on a
segment being *visible* under random binary masks,

    S_i = E[ f(x * M) | M_i = 1 ] - E[ f(x * M) ],

which needs no regression solve and is robust to correlated segments.
Included as an extension baseline for the deletion-metric harness.
"""

from __future__ import annotations

import numpy as np

from repro.explainers.base import (
    Explainer,
    PredictFn,
    SegmentAttribution,
    predict_batch,
)
from repro.rng import make_rng
from repro.video.perturb import apply_masks_batch


class RiseExplainer(Explainer):
    """Saliency by randomized masking.

    Parameters
    ----------
    num_samples:
        Number of random masks (= black-box calls).
    keep_prob:
        Probability a segment stays visible in a mask.
    """

    name = "RISE"

    def __init__(self, num_samples: int = 1000, keep_prob: float = 0.5):
        if num_samples < 8:
            raise ValueError("num_samples must be at least 8")
        if not 0.0 < keep_prob < 1.0:
            raise ValueError("keep_prob must lie strictly in (0, 1)")
        self.num_samples = num_samples
        self.keep_prob = keep_prob

    def attribute(self, frame: np.ndarray, labels: np.ndarray,
                  predict_fn: PredictFn, seed: int = 0) -> SegmentAttribution:
        num_segments = self._num_segments(labels)
        rng = make_rng(seed, "rise")
        masks = (rng.random((self.num_samples, num_segments))
                 < self.keep_prob).astype(np.float64)
        predictions = predict_batch(
            predict_fn, apply_masks_batch(frame, labels, masks)
        )
        mean_output = predictions.mean()
        visible_counts = masks.sum(axis=0)
        visible_counts[visible_counts == 0] = 1.0
        conditional = (masks * predictions[:, np.newaxis]).sum(axis=0) \
            / visible_counts
        return SegmentAttribution(
            scores=conditional - mean_output,
            num_evaluations=self.num_samples,
            explainer=self.name,
        )
