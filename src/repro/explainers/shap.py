"""KernelSHAP (Lundberg & Lee, 2017) over SLIC superpixels.

KernelSHAP estimates Shapley values by sampling feature coalitions,
querying the black box on each, and solving a weighted least-squares
problem whose weights follow the Shapley kernel

    pi(z) = (M - 1) / ( C(M, |z|) * |z| * (M - |z|) ).

The efficiency constraint (attributions sum to ``f(x) - f(empty)``) is
enforced by eliminating one variable, as in the reference
implementation.
"""

from __future__ import annotations

import numpy as np

from repro.explainers.base import (
    Explainer,
    PredictFn,
    SegmentAttribution,
    predict_batch,
)
from repro.rng import make_rng
from repro.video.perturb import apply_masks_batch


class KernelShapExplainer(Explainer):
    """Sampling-based Shapley value estimator.

    Parameters
    ----------
    num_samples:
        Coalition evaluations, excluding the two deterministic
        endpoints (empty and full coalitions); total black-box calls
        are ``num_samples + 2``.
    ridge:
        Regularisation of the weighted solve (numerical safety).
    """

    name = "SHAP"

    def __init__(self, num_samples: int = 998, ridge: float = 1e-6):
        if num_samples < 8:
            raise ValueError("num_samples must be at least 8")
        self.num_samples = num_samples
        self.ridge = ridge

    def attribute(self, frame: np.ndarray, labels: np.ndarray,
                  predict_fn: PredictFn, seed: int = 0) -> SegmentAttribution:
        num_segments = self._num_segments(labels)
        rng = make_rng(seed, "kernelshap")

        # Coalition sizes are drawn proportionally to the Shapley
        # kernel's size profile 1 / (s * (M - s)).
        sizes = np.arange(1, num_segments)
        size_weights = 1.0 / (sizes * (num_segments - sizes))
        size_probs = size_weights / size_weights.sum()
        masks = np.zeros((self.num_samples, num_segments))
        for i in range(self.num_samples):
            size = int(rng.choice(sizes, p=size_probs))
            on = rng.choice(num_segments, size=size, replace=False)
            masks[i, on] = 1.0

        # The two deterministic endpoints ride along in the same batch
        # as the sampled coalitions: one model pass for everything.
        endpoints = np.vstack([np.zeros(num_segments), np.ones(num_segments)])
        outputs = predict_batch(
            predict_fn,
            apply_masks_batch(frame, labels, np.vstack([endpoints, masks])),
        )
        base, full = float(outputs[0]), float(outputs[1])
        predictions = outputs[2:]

        coalition_sizes = masks.sum(axis=1).astype(int)
        kernel = (num_segments - 1) / (
            _binom(num_segments, coalition_sizes)
            * coalition_sizes * (num_segments - coalition_sizes)
        )

        # Enforce efficiency by eliminating the last feature:
        # phi_last = (full - base) - sum(phi_others).
        targets = predictions - base - masks[:, -1] * (full - base)
        design = masks[:, :-1] - masks[:, [-1]]
        w_sqrt = np.sqrt(kernel)
        a = design * w_sqrt[:, np.newaxis]
        b = targets * w_sqrt
        gram = a.T @ a + self.ridge * np.eye(design.shape[1])
        phi_rest = np.linalg.solve(gram, a.T @ b)
        phi_last = (full - base) - phi_rest.sum()
        scores = np.concatenate([phi_rest, [phi_last]])
        return SegmentAttribution(
            scores=scores,
            num_evaluations=self.num_samples + 2,
            explainer=self.name,
        )


def _binom(n: int, k: np.ndarray) -> np.ndarray:
    """Binomial coefficients C(n, k) for an integer array ``k``."""
    from scipy.special import comb

    return comb(n, k, exact=False)
