"""Post-hoc explainers and the interpretability evaluation protocol.

LIME (:mod:`~repro.explainers.lime`), KernelSHAP
(:mod:`~repro.explainers.shap`) and SOBOL
(:mod:`~repro.explainers.sobol`) are implemented from scratch over SLIC
superpixels, each spending a ~1000-evaluation budget per sample as in
the paper's setup; :mod:`~repro.explainers.evaluation` implements the
top-k deletion metric of Table II and
:mod:`~repro.explainers.timing` the per-sample cost comparison of
Figure 6.
"""

from repro.explainers.base import (
    BatchPredictFn,
    Explainer,
    SegmentAttribution,
    predict_batch,
)
from repro.explainers.evaluation import (
    DeletionResult,
    chain_predict_fn,
    deletion_metric,
    explainer_ranker,
    rationale_ranker,
)
from repro.explainers.lime import LimeExplainer
from repro.explainers.occlusion import OcclusionExplainer
from repro.explainers.rise import RiseExplainer
from repro.explainers.shap import KernelShapExplainer
from repro.explainers.sobol import SobolExplainer
from repro.explainers.timing import time_explainers

__all__ = [
    "BatchPredictFn",
    "DeletionResult",
    "Explainer",
    "KernelShapExplainer",
    "LimeExplainer",
    "OcclusionExplainer",
    "RiseExplainer",
    "SegmentAttribution",
    "SobolExplainer",
    "chain_predict_fn",
    "deletion_metric",
    "explainer_ranker",
    "predict_batch",
    "rationale_ranker",
    "time_explainers",
]
