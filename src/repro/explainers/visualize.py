"""Attribution visualization without plotting dependencies.

Two renderers for attribution maps and rationale groundings:

- :func:`ascii_heatmap` -- a terminal heatmap (coarse blocks, ramp
  characters) for quick inspection inside examples and notebooks;
- :func:`save_pgm` / :func:`attribution_overlay` -- plain-PGM image
  export so figures can be produced in environments without
  matplotlib (PGM opens in any image viewer).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ExplainerError

#: Dark-to-bright ramp for terminal rendering.
_RAMP = " .:-=+*#%@"


def segment_score_map(labels: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """Expand per-segment scores to a per-pixel map."""
    scores = np.asarray(scores, dtype=np.float64)
    num_labels = int(labels.max()) + 1
    if scores.shape != (num_labels,):
        raise ExplainerError(
            f"need one score per segment ({num_labels}), got {scores.shape}"
        )
    return scores[labels]


def ascii_heatmap(values: np.ndarray, width: int = 48) -> str:
    """Render a 2-D array as a terminal heatmap."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ExplainerError("ascii_heatmap expects a 2-D array")
    height = max(1, int(round(values.shape[0] * width
                              / values.shape[1] / 2)))
    row_idx = np.linspace(0, values.shape[0] - 1, height).astype(int)
    col_idx = np.linspace(0, values.shape[1] - 1, width).astype(int)
    small = values[np.ix_(row_idx, col_idx)]
    low, high = small.min(), small.max()
    if high - low < 1e-12:
        normalised = np.zeros_like(small)
    else:
        normalised = (small - low) / (high - low)
    chars = (normalised * (len(_RAMP) - 1)).round().astype(int)
    return "\n".join(
        "".join(_RAMP[c] for c in row) for row in chars
    )


def attribution_overlay(frame: np.ndarray, labels: np.ndarray,
                        scores: np.ndarray, alpha: float = 0.55) -> np.ndarray:
    """Blend an attribution map over a frame, both in [0, 1]."""
    if not 0.0 <= alpha <= 1.0:
        raise ExplainerError("alpha must lie in [0, 1]")
    heat = segment_score_map(labels, scores)
    low, high = heat.min(), heat.max()
    if high - low > 1e-12:
        heat = (heat - low) / (high - low)
    else:
        heat = np.zeros_like(heat)
    return np.clip((1 - alpha) * frame + alpha * heat, 0.0, 1.0)


def save_pgm(image: np.ndarray, path: str | Path) -> None:
    """Write a [0, 1] grayscale image as a binary PGM (P5) file."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ExplainerError("save_pgm expects a 2-D image")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    pixels = np.clip(image * 255.0, 0, 255).astype(np.uint8)
    header = f"P5\n{image.shape[1]} {image.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(pixels.tobytes())


def load_pgm(path: str | Path) -> np.ndarray:
    """Read back a binary PGM written by :func:`save_pgm`."""
    with open(path, "rb") as handle:
        magic = handle.readline().strip()
        if magic != b"P5":
            raise ExplainerError(f"{path} is not a binary PGM file")
        dims = handle.readline().split()
        width, height = int(dims[0]), int(dims[1])
        maxval = int(handle.readline())
        data = np.frombuffer(handle.read(width * height), dtype=np.uint8)
    return data.reshape(height, width).astype(np.float64) / maxval
