"""Per-sample explanation cost (paper Figure 6).

"the average time cost for each testing sample (including describing
facial action, assessing stress level, and highlighting the rationale)
of our method is 3.4 seconds, which is 63x faster than the most
efficient explainer SOBOL".

Absolute seconds differ on this substrate (a numpy simulator is not a
7B VLM on V100s); the reproduced quantity is the *ratio*: our method
pays one forward chain while every post-hoc explainer pays its
evaluation budget in full model calls.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.cot.chain import StressChainPipeline
from repro.datasets.base import Sample
from repro.explainers.base import Explainer
from repro.explainers.evaluation import chain_predict_fn
from repro.rng import derive_seed


@dataclass(frozen=True)
class TimingResult:
    """Mean per-sample wall-clock and model-call budget per method."""

    seconds_per_sample: dict[str, float]
    evaluations_per_sample: dict[str, float]

    def speedup_over(self, method: str, reference: str) -> float:
        """How many times faster ``method`` is than ``reference``."""
        return (self.seconds_per_sample[reference]
                / self.seconds_per_sample[method])


def time_explainers(
    pipeline: StressChainPipeline,
    explainers: Sequence[Explainer],
    samples: Sequence[Sample],
    num_segments: int = 64,
    seed: int = 0,
) -> TimingResult:
    """Measure per-sample explanation cost of ours vs each explainer.

    "Ours" runs the full Describe -> Assess -> Highlight chain (the
    rationale is the explanation); each post-hoc explainer runs its
    attribution over the same black box.
    """
    seconds: dict[str, float] = {}
    evaluations: dict[str, float] = {}

    start = time.perf_counter()
    for sample in samples:
        pipeline.predict(sample.video)
    seconds["Ours"] = (time.perf_counter() - start) / len(samples)
    evaluations["Ours"] = 1.0

    for explainer in explainers:
        start = time.perf_counter()
        total_evals = 0
        for sample in samples:
            expressive, __ = sample.video.keyframes
            # Memoized on the video: every explainer (and the deletion
            # metric) shares one SLIC run per frame.
            labels = sample.video.segmentation(num_segments)
            predict_fn = chain_predict_fn(pipeline, sample)
            attribution = explainer.attribute(
                expressive, labels, predict_fn,
                seed=derive_seed(seed, f"time:{sample.sample_id}"),
            )
            total_evals += attribution.num_evaluations
        seconds[explainer.name] = (time.perf_counter() - start) / len(samples)
        evaluations[explainer.name] = total_evals / len(samples)
    return TimingResult(seconds_per_sample=seconds,
                        evaluations_per_sample=evaluations)
