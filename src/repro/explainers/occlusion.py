"""Single-segment occlusion attribution.

Not one of the paper's comparators, but the natural sanity baseline
for the deletion metric: each segment's attribution is the drop in the
model output when only that segment is blanked.  Costs exactly
``num_segments + 1`` evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.explainers.base import Explainer, PredictFn, SegmentAttribution
from repro.video.perturb import zero_segments


class OcclusionExplainer(Explainer):
    """Leave-one-segment-out attribution."""

    name = "Occlusion"

    def attribute(self, frame: np.ndarray, labels: np.ndarray,
                  predict_fn: PredictFn, seed: int = 0) -> SegmentAttribution:
        num_segments = self._num_segments(labels)
        base = predict_fn(frame)
        scores = np.zeros(num_segments)
        for segment in range(num_segments):
            blanked = zero_segments(frame, labels, [segment])
            scores[segment] = base - predict_fn(blanked)
        # Attribution of evidence *for* the predicted class: flip sign
        # when the model predicts unstressed so "supports the decision"
        # is always positive.
        if base < 0.5:
            scores = -scores
        return SegmentAttribution(
            scores=scores, num_evaluations=num_segments + 1,
            explainer=self.name,
        )
