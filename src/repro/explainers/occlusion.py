"""Single-segment occlusion attribution.

Not one of the paper's comparators, but the natural sanity baseline
for the deletion metric: each segment's attribution is the drop in the
model output when only that segment is blanked.  Costs exactly
``num_segments + 1`` evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.explainers.base import (
    Explainer,
    PredictFn,
    SegmentAttribution,
    predict_batch,
)
from repro.video.perturb import zero_segments_batch


class OcclusionExplainer(Explainer):
    """Leave-one-segment-out attribution."""

    name = "Occlusion"

    def attribute(self, frame: np.ndarray, labels: np.ndarray,
                  predict_fn: PredictFn, seed: int = 0) -> SegmentAttribution:
        num_segments = self._num_segments(labels)
        # The clean frame and every single-segment blank go through the
        # model as one stack.
        stack = np.concatenate([
            frame[np.newaxis, :, :], zero_segments_batch(frame, labels)
        ])
        outputs = predict_batch(predict_fn, stack)
        base = float(outputs[0])
        scores = base - outputs[1:]
        # Attribution of evidence *for* the predicted class: flip sign
        # when the model predicts unstressed so "supports the decision"
        # is always positive.
        if base < 0.5:
            scores = -scores
        return SegmentAttribution(
            scores=scores, num_evaluations=num_segments + 1,
            explainer=self.name,
        )
