"""The top-k deletion metric (paper Table II / IV / VI protocol).

Section IV-H: "we employ the SLIC algorithm to segment f_e into 64
segments, and place gaussian noise on the top scoring segments
highlighted by each method ... evaluating the drop of model accuracy
after disturbing the Top-1, Top-2, and Top-3 scoring segments."

A *ranker* maps one sample to its ranked segment list -- either from a
post-hoc explainer's attributions or from the model's own highlighted
rationale grounded through facial landmarks.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.cot.chain import StressChainPipeline
from repro.datasets.base import Sample
from repro.errors import ExplainerError
from repro.explainers.base import (
    BatchPredictFn,
    Explainer,
    PredictFn,
    predict_batch,
)
from repro.rng import derive_seed, make_rng
from repro.video.perturb import gaussian_perturb_segments

#: A ranker: (sample, expressive_frame, segment_labels, predict_fn,
#: base_prob) -> ranked segment ids (best first).  ``base_prob`` is the
#: model's probability on the clean frame, which the deletion metric
#: has already computed -- rankers reuse it instead of re-querying.
Ranker = Callable[[Sample, np.ndarray, np.ndarray, PredictFn, float],
                  list[int]]


@dataclass(frozen=True)
class DeletionResult:
    """Outcome of one deletion-metric run."""

    base_accuracy: float
    accuracy_after: dict[int, float]
    num_samples: int

    @property
    def drops(self) -> dict[int, float]:
        """Accuracy drop per k (the numbers Table II reports)."""
        return {
            k: self.base_accuracy - acc
            for k, acc in self.accuracy_after.items()
        }


def chain_predict_fn(pipeline: StressChainPipeline,
                     sample: Sample) -> BatchPredictFn:
    """Black-box over the full chain: perturbed expressive frame ->
    re-describe -> assess.  The neutral keyframe stays clean (only
    ``f_e`` is segmented and perturbed in the paper's protocol).

    The returned black box carries both the single-frame path and the
    vectorized ``batch`` path, so explainers score their whole
    perturbation stack in one model pass.
    """
    __, neutral = sample.video.keyframes
    model = pipeline.model

    return BatchPredictFn(
        single=lambda frame: model.chain_prob_from_frames(frame, neutral),
        batch=lambda frames: model.chain_prob_from_frames_batch(frames,
                                                                neutral),
    )


def explainer_ranker(explainer: Explainer, seed: int = 0) -> Ranker:
    """Wrap a post-hoc explainer as a deletion-metric ranker.

    Attribution signs are normalised so the ranking always orders
    segments by support *for the model's decision* (for an unstressed
    prediction, evidence against stress is what gets perturbed).
    """

    def rank(sample: Sample, frame: np.ndarray, labels: np.ndarray,
             predict_fn: PredictFn, base_prob: float) -> list[int]:
        attribution = explainer.attribute(
            frame, labels, predict_fn,
            seed=derive_seed(seed, f"attr:{sample.sample_id}"),
        )
        scores = attribution.scores
        if base_prob < 0.5:
            scores = -scores
        return [int(i) for i in np.argsort(-scores, kind="stable")]

    return rank


def rationale_ranker(pipeline: StressChainPipeline) -> Ranker:
    """Rank segments by the model's own highlighted rationale.

    Highlighted actions are grounded to segments through the facial
    landmarks; if the rationale grounds to fewer than three segments,
    the per-AU segment expansion is widened so Top-3 perturbation is
    well-defined.
    """

    def rank(sample: Sample, frame: np.ndarray, labels: np.ndarray,
             predict_fn: PredictFn, base_prob: float) -> list[int]:
        result = pipeline.predict(sample.video)
        for per_au in (1, 2, 3):
            ranking = result.rationale.model_segment_ranking(
                pipeline.model, labels, per_au=per_au
            )
            if len(ranking) >= 3:
                return ranking
        return ranking

    return rank


def deletion_metric(
    samples: Sequence[Sample],
    ranker: Ranker,
    predict_fn_factory: Callable[[Sample], PredictFn],
    ks: tuple[int, ...] = (1, 2, 3),
    num_segments: int = 64,
    noise_scale: float = 0.35,
    seed: int = 0,
) -> DeletionResult:
    """Run the deletion metric over ``samples``.

    For every sample: segment ``f_e`` with SLIC, rank segments with
    ``ranker``, then for each ``k`` perturb the top-k segments with
    Gaussian noise and re-query the model.  Accuracy is measured
    against the ground-truth stress labels before and after.
    """
    if not samples:
        raise ExplainerError("deletion metric needs at least one sample")
    base_hits = 0
    hits_after = {k: 0 for k in ks}
    for sample in samples:
        expressive, __ = sample.video.keyframes
        labels = sample.video.segmentation(num_segments)
        predict_fn = predict_fn_factory(sample)
        base_prob = float(predict_fn(expressive))
        base_pred = int(base_prob > 0.5)
        base_hits += int(base_pred == sample.label)
        ranking = ranker(sample, expressive, labels, predict_fn, base_prob)
        if not ranking:
            # Nothing highlighted: perturbation is a no-op.
            for k in ks:
                hits_after[k] += int(base_pred == sample.label)
            continue
        rng = make_rng(seed, f"deletion:{sample.sample_id}")
        # One batched model pass over all top-k perturbations of this
        # sample (noise draws stay sequential in k, preserving the
        # serial path's RNG stream bit-for-bit).
        perturbed = np.stack([
            gaussian_perturb_segments(
                expressive, labels, ranking[:k], rng,
                noise_scale=noise_scale,
            )
            for k in ks
        ])
        preds = predict_batch(predict_fn, perturbed) > 0.5
        for k, pred in zip(ks, preds):
            hits_after[k] += int(int(pred) == sample.label)
    count = len(samples)
    return DeletionResult(
        base_accuracy=base_hits / count,
        accuracy_after={k: hits / count for k, hits in hits_after.items()},
        num_samples=count,
    )
