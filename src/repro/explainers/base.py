"""Explainer interface.

An explainer attributes a scalar model output (the stress probability)
to the SLIC segments of the most-expressive frame.  The model is a
black box reached only through ``predict_fn(frame) -> float`` -- the
explainers never see weights, which is the premise of the paper's
efficiency comparison (each perturbation costs a full model call).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ExplainerError

#: A black-box prediction function over (possibly perturbed) frames.
PredictFn = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class SegmentAttribution:
    """Per-segment attribution scores plus bookkeeping."""

    scores: np.ndarray
    num_evaluations: int
    explainer: str

    def ranking(self) -> list[int]:
        """Segment ids sorted by descending attribution."""
        return [int(i) for i in np.argsort(-self.scores, kind="stable")]

    def top_k(self, k: int) -> list[int]:
        return self.ranking()[:k]


class Explainer(ABC):
    """Base class for perturbation explainers."""

    name: str = "explainer"

    @abstractmethod
    def attribute(self, frame: np.ndarray, labels: np.ndarray,
                  predict_fn: PredictFn, seed: int = 0) -> SegmentAttribution:
        """Attribute ``predict_fn``'s output on ``frame`` to segments.

        Parameters
        ----------
        frame:
            The clean most-expressive frame.
        labels:
            SLIC segment label map.
        predict_fn:
            Black-box model probability on a perturbed frame.
        seed:
            Perturbation-sampling seed.
        """

    @staticmethod
    def _num_segments(labels: np.ndarray) -> int:
        num = int(labels.max()) + 1
        if num < 2:
            raise ExplainerError("need at least 2 segments to attribute")
        return num
