"""Explainer interface.

An explainer attributes a scalar model output (the stress probability)
to the SLIC segments of the most-expressive frame.  The model is a
black box reached only through ``predict_fn(frame) -> float`` -- the
explainers never see weights, which is the premise of the paper's
efficiency comparison (each perturbation costs a full model call).

The black box may additionally expose a vectorized ``batch`` method
(:class:`BatchPredictFn`); explainers submit their whole perturbation
stack through :func:`predict_batch`, which uses the vectorized path
when present and falls back to a per-frame loop otherwise, so plain
callables keep working unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ExplainerError

#: A black-box prediction function over (possibly perturbed) frames.
PredictFn = Callable[[np.ndarray], float]


class BatchPredictFn:
    """A black box with both a single-frame and a vectorized path.

    Calling it on one ``(H, W)`` frame returns a float, so it is a
    drop-in :data:`PredictFn`; :meth:`batch` scores a ``(N, H, W)``
    stack in one model pass.  Explainers reach both through
    :func:`predict_batch` and never need to know which they got.
    """

    def __init__(self, single: PredictFn,
                 batch: Callable[[np.ndarray], np.ndarray]):
        self._single = single
        self._batch = batch

    def __call__(self, frame: np.ndarray) -> float:
        return float(self._single(frame))

    def batch(self, frames: np.ndarray) -> np.ndarray:
        return np.asarray(self._batch(frames), dtype=np.float64)


def predict_batch(predict_fn: PredictFn, frames: np.ndarray) -> np.ndarray:
    """Evaluate ``predict_fn`` on a ``(N, H, W)`` frame stack.

    Uses the black box's vectorized ``batch`` method when it has one;
    otherwise loops frame-by-frame (the single-frame fallback adapter,
    so any plain callable remains a valid black box).  Returns a
    float64 vector of length ``N``.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 3:
        raise ExplainerError(
            f"expected a (N, H, W) frame stack, got shape {frames.shape}"
        )
    batch = getattr(predict_fn, "batch", None)
    if batch is not None:
        out = np.asarray(batch(frames), dtype=np.float64)
        if out.shape != (len(frames),):
            raise ExplainerError(
                f"batch predict returned shape {out.shape}, "
                f"expected ({len(frames)},)"
            )
        return out
    return np.array([float(predict_fn(frame)) for frame in frames])


@dataclass(frozen=True)
class SegmentAttribution:
    """Per-segment attribution scores plus bookkeeping."""

    scores: np.ndarray
    num_evaluations: int
    explainer: str

    def ranking(self) -> list[int]:
        """Segment ids sorted by descending attribution."""
        return [int(i) for i in np.argsort(-self.scores, kind="stable")]

    def top_k(self, k: int) -> list[int]:
        return self.ranking()[:k]


class Explainer(ABC):
    """Base class for perturbation explainers."""

    name: str = "explainer"

    @abstractmethod
    def attribute(self, frame: np.ndarray, labels: np.ndarray,
                  predict_fn: PredictFn, seed: int = 0) -> SegmentAttribution:
        """Attribute ``predict_fn``'s output on ``frame`` to segments.

        Parameters
        ----------
        frame:
            The clean most-expressive frame.
        labels:
            SLIC segment label map.
        predict_fn:
            Black-box model probability on a perturbed frame.
        seed:
            Perturbation-sampling seed.
        """

    @staticmethod
    def _num_segments(labels: np.ndarray) -> int:
        num = int(labels.max()) + 1
        if num < 2:
            raise ExplainerError("need at least 2 segments to attribute")
        return num
