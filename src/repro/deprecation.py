"""Once-per-process deprecation warnings.

The public API keeps a few thin aliases alive for one release cycle
(``StressChainPipeline.run`` / ``run_many`` -> ``predict`` /
``predict_many``).  Each alias funnels through :func:`warn_deprecated`,
which emits exactly one :class:`DeprecationWarning` per alias per
process -- loud enough to notice, quiet enough not to spam a serving
loop that calls the alias a million times.

Internal code is *forbidden* from using deprecated aliases: the CI
``api`` job runs the suite with ``-W error::DeprecationWarning``, so
any internal call through an alias fails the build.
"""

from __future__ import annotations

import threading
import warnings

_warned: set[str] = set()
_lock = threading.Lock()


def warn_deprecated(alias: str, replacement: str,
                    removal_hint: str = "a future release") -> None:
    """Emit one :class:`DeprecationWarning` for ``alias`` (per process).

    ``replacement`` names the migration target; subsequent calls for
    the same alias are silent so hot loops are not flooded.
    """
    with _lock:
        if alias in _warned:
            return
        _warned.add(alias)
    warnings.warn(
        f"{alias} is deprecated and will be removed in {removal_hint}; "
        f"use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_warned() -> None:
    """Forget which aliases already warned (test isolation only)."""
    with _lock:
        _warned.clear()
