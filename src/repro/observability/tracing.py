"""Lightweight tracing: spans, a thread-local span stack, exporters.

``span("stage.name", **attrs)`` is the single instrumentation
primitive used across the repo -- the chain stages, the training
stages, the serving hot path, cross-validation folds, and the
experiment runner all wrap their work in one::

    with span("chain.describe", cached=False) as sp:
        ...
        sp.add("model.embed")          # per-span work counter
        sp.set("num_aus", len(ids))    # late attribute

Design constraints (DESIGN.md section 11):

- **Zero cost when disabled.**  Tracing is off unless an exporter is
  installed; ``span(...)`` then returns a shared no-op object without
  allocating a span, touching the clock, or formatting anything.
  Hot-path callers (``Linear.forward``) guard on :func:`enabled`
  instead, which is a single module-global check.
- **No RNG interaction.**  Spans read only monotonic clocks
  (``time.perf_counter``); they never draw randomness, so enabling
  tracing cannot perturb any seeded stream -- the golden chain
  fixtures stay bitwise identical under ``REPRO_TRACE``.
- **Thread-local nesting.**  Each thread keeps its own span stack, so
  the micro-batcher worker, fold worker threads, and forked children
  all trace independently; a span's ``parent`` is whatever span was
  open on the *same* thread.

Exporters are pluggable: :class:`JsonlExporter` appends one JSON
object per finished span (enabled automatically when the
``REPRO_TRACE`` environment variable names a path); tests install a
:class:`ListExporter`.  ``install_exporter`` / ``uninstall_exporter``
swap the active exporter at runtime.
"""

from __future__ import annotations

import atexit
import json
import threading
import time
from typing import Any

from repro.config import TRACE_ENV, env_value

_local = threading.local()

#: The active exporter; ``None`` means tracing is disabled.
_exporter: "SpanExporter | None" = None


def enabled() -> bool:
    """Whether an exporter is installed (the tracing fast-path guard)."""
    return _exporter is not None


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class SpanExporter:
    """Receives one plain-dict record per finished span."""

    def export(self, record: dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; default is a no-op."""


class ListExporter(SpanExporter):
    """Collects span records in memory (tests, ad-hoc inspection)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    def export(self, record: dict[str, Any]) -> None:
        with self._lock:
            self.records.append(record)


class JsonlExporter(SpanExporter):
    """Appends one JSON line per span to a file.

    The file is opened in append mode and every record is written as a
    single ``write`` call, so concurrent writers (threads, or forked
    children inheriting the handle) emit whole lines.  Writes are
    flushed every ``FLUSH_EVERY`` records rather than per record --
    the per-span cost is one ``json.dumps`` plus a buffered write --
    so readers of a live trace may lag by up to a flush interval;
    :meth:`flush` or :meth:`close` drains the buffer.
    """

    FLUSH_EVERY: int = 128

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._pending = 0

    def export(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            self._handle.write(line)
            self._pending += 1
            if self._pending >= self.FLUSH_EVERY:
                self._handle.flush()
                self._pending = 0

    def flush(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
            self._pending = 0

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()
            self._pending = 0


def install_exporter(exporter: SpanExporter) -> SpanExporter | None:
    """Install ``exporter`` as the process-wide span sink; returns the
    previously installed exporter (not closed), or ``None``."""
    global _exporter
    previous = _exporter
    _exporter = exporter
    return previous


def uninstall_exporter() -> SpanExporter | None:
    """Disable tracing; returns the removed exporter (not closed)."""
    global _exporter
    previous = _exporter
    _exporter = None
    return previous


def configure_from_env() -> bool:
    """Install a :class:`JsonlExporter` when ``REPRO_TRACE`` names a
    path; returns whether tracing ended up enabled.

    The exporter buffers; an ``atexit`` hook closes it so the trace
    file is complete when the process exits normally.
    """
    path = env_value(TRACE_ENV)
    if path:
        exporter = JsonlExporter(path)
        install_exporter(exporter)
        atexit.register(exporter.close)
    return enabled()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, key: str, amount: int = 1) -> None:
        pass


_NOOP = _NoopSpan()


class Span:
    """One live timed region.  Use via :func:`span`, not directly."""

    __slots__ = ("name", "attrs", "counters", "start", "_parent_name")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.counters: dict[str, int] = {}
        self.start = 0.0
        self._parent_name: str | None = None

    def __enter__(self) -> "Span":
        stack = _stack()
        self._parent_name = stack[-1].name if stack else None
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self.start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - exiting out of order
            stack.remove(self)
        exporter = _exporter
        if exporter is not None:
            record: dict[str, Any] = {
                "name": self.name,
                "duration_s": duration,
                "thread": threading.current_thread().name,
                "depth": len(stack),
            }
            if self._parent_name is not None:
                record["parent"] = self._parent_name
            if self.attrs:
                record["attrs"] = self.attrs
            if self.counters:
                record["counters"] = self.counters
            if exc_type is not None:
                record["error"] = exc_type.__name__
            exporter.export(record)
        return False

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def add(self, key: str, amount: int = 1) -> None:
        """Bump one per-span work counter."""
        self.counters[key] = self.counters.get(key, 0) + amount


def _stack() -> list[Span]:
    stack = getattr(_local, "spans", None)
    if stack is None:
        stack = _local.spans = []
    return stack


def span(name: str, **attrs: Any) -> Span | _NoopSpan:
    """Open a timed span (use as a context manager).

    When tracing is disabled this returns a shared no-op object; the
    only cost at the call site is the keyword-dict construction, so
    callers on hot paths should pass no attrs (or guard on
    :func:`enabled` before computing any)."""
    if _exporter is None:
        return _NOOP
    return Span(name, attrs)


def current_span() -> Span | None:
    """The innermost open span on this thread, or ``None``."""
    stack = getattr(_local, "spans", None)
    return stack[-1] if stack else None


# Pick up REPRO_TRACE at import so `REPRO_TRACE=t.jsonl python ...`
# traces without any code change.
configure_from_env()
