"""Process-wide metrics: counters, gauges, bounded-window histograms.

One :class:`MetricsRegistry` is the shared reporting surface of the
whole system -- serving (:class:`~repro.serving.stats.ServiceStats`
folds its counters in), training (stage outcomes, DPO pair counts),
and evaluation (fold timings) all publish here, so one
``global_metrics().snapshot()`` shows everything the process did.

Semantics follow the usual time-series conventions:

- a **Counter** only increases (requests served, pairs accepted);
- a **Gauge** is a last-write-wins scalar (queue depth, stage loss);
- a **Histogram** keeps a bounded window of recent observations (the
  most recent ``window`` values) plus lifetime count/sum, so quantiles
  track current behaviour and memory stays constant.

Everything is thread-safe, and :meth:`MetricsRegistry.snapshot` is
**isolated**: it deep-copies all values under the instruments' locks,
so a snapshot never mutates under the reader while recorders keep
hammering the registry (covered by the concurrency tests).

Instruments are cheap enough for hot paths (one lock acquisition), but
unlike tracing they are *always on* -- callers that need true zero
cost when idle should guard on :func:`repro.observability.tracing.enabled`.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field


def nearest_rank_quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample.

    The rank is ``ceil(q * (n - 1))``: a fractional rank always
    resolves *upward*, so on exact ``.5`` boundaries (even windows)
    the upper sample is picked and quantiles never understate latency.
    (Banker's-rounding ``round()`` would pick the lower rank there --
    the bug this rule replaces.)  Edge cases: ``n == 1`` returns the
    only sample; ``q == 0`` the minimum; ``q == 1`` the maximum.
    """
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(q * (len(ordered) - 1))))
    return ordered[rank]


#: Default histogram window (matches the serving latency window).
HISTOGRAM_WINDOW: int = 4096


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True, slots=True)
class HistogramSnapshot:
    """Frozen view of one histogram: lifetime count/sum plus
    window-based order statistics."""

    count: int
    total: float
    p50: float
    p95: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Histogram:
    """Bounded-window histogram of float observations."""

    __slots__ = ("name", "_window", "_count", "_sum", "_lock")

    def __init__(self, name: str, window: int = HISTOGRAM_WINDOW):
        self.name = name
        self._window: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._window.append(value)
            self._count += 1
            self._sum += value

    def observe_many(self, values: list[float]) -> None:
        with self._lock:
            for value in values:
                value = float(value)
                self._window.append(value)
                self._count += 1
                self._sum += value

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            ordered = sorted(self._window)
            return HistogramSnapshot(
                count=self._count,
                total=self._sum,
                p50=nearest_rank_quantile(ordered, 0.50),
                p95=nearest_rank_quantile(ordered, 0.95),
                max=ordered[-1] if ordered else 0.0,
            )


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """A point-in-time, fully-copied view of one registry."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)


class MetricsRegistry:
    """Thread-safe name -> instrument map with get-or-create access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  window: int = HISTOGRAM_WINDOW) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, window)
            return instrument

    def snapshot(self) -> MetricsSnapshot:
        """An isolated copy of every instrument's current value."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return MetricsSnapshot(
            counters={c.name: c.value for c in counters},
            gauges={g.name: g.value for g in gauges},
            histograms={h.name: h.snapshot() for h in histograms},
        )

    def reset(self) -> None:
        """Drop every instrument (tests; never on a live service)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every subsystem publishes into.
_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The shared process-wide :class:`MetricsRegistry`."""
    return _GLOBAL
