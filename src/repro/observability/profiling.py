"""Profiling hooks: model-level work counters attached to spans.

The model and cache layers call :func:`count` at their unit-of-work
sites -- one trunk GEMM, one video embedding, one stage-cache hit --
and the count lands on the innermost open span of the calling thread.
A finished span's record then carries, e.g.::

    {"name": "chain.assess", "duration_s": ..., "counters":
     {"nn.gemm": 1, "model.embed": 1}}

which is how an operator attributes FLOPs and cache behaviour to
pipeline stages without a sampling profiler.

Cost discipline: when tracing is disabled :func:`count` is a single
module-global check and an immediate return -- no span lookup, no
allocation -- so the hooks can sit on the hottest paths
(``Linear.forward`` runs hundreds of thousands of times per training
run).  Counter *names* are interned literals at every call site; no
string is built per call.
"""

from __future__ import annotations

from repro.observability import tracing

#: Canonical counter names (call sites use the literals; listed here
#: so dashboards and tests have one vocabulary to key on).
GEMM = "nn.gemm"
EMBED = "model.embed"
FEATURE_CACHE_HIT = "model.feature_cache_hit"
FEATURE_CACHE_MISS = "model.feature_cache_miss"
STAGE_CACHE_HIT = "serve.stage_cache_hit"
STAGE_CACHE_MISS = "serve.stage_cache_miss"


def enabled() -> bool:
    """Profiling piggybacks on tracing: counts flow only into spans."""
    return tracing.enabled()


def count(name: str, amount: int = 1) -> None:
    """Add ``amount`` units of ``name`` work to the current span.

    No-op (one global check) when tracing is disabled or no span is
    open on this thread.
    """
    if tracing._exporter is None:
        return
    span = tracing.current_span()
    if span is not None:
        span.add(name, amount)
