"""Observability: tracing spans, metrics, and profiling hooks.

Three small facilities with one shared goal -- make the pipeline's
per-stage cost and outcomes visible without perturbing a single
seeded RNG stream (DESIGN.md section 11):

- :mod:`repro.observability.tracing` -- ``span("stage", **attrs)``
  context manager; JSONL export via the ``REPRO_TRACE`` env var;
  zero-cost no-op when disabled.
- :mod:`repro.observability.metrics` -- process-wide
  :class:`MetricsRegistry` of counters/gauges/histograms with an
  isolated ``snapshot()``; serving, training, and evaluation all
  publish here.
- :mod:`repro.observability.profiling` -- per-span work counters
  (GEMMs, embeddings, cache hits) fed by the model and cache layers.
"""

from repro.observability.metrics import (
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    global_metrics,
    nearest_rank_quantile,
)
from repro.observability.tracing import (
    JsonlExporter,
    ListExporter,
    Span,
    SpanExporter,
    configure_from_env,
    current_span,
    enabled,
    install_exporter,
    span,
    uninstall_exporter,
)

__all__ = [
    "HistogramSnapshot",
    "JsonlExporter",
    "ListExporter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "SpanExporter",
    "configure_from_env",
    "current_span",
    "enabled",
    "global_metrics",
    "install_exporter",
    "nearest_rank_quantile",
    "span",
    "uninstall_exporter",
]
