"""Stage 1: instruction tuning on facial-action descriptions (Eq. 2).

"After acquiring the knowledge to identify facial expressions via
instruction tuning with expert annotation, the model will follow the
Describe -> Assess -> Highlight reasoning chain."
"""

from __future__ import annotations

import numpy as np

from repro.datasets.instruction import InstructionPair
from repro.errors import TrainingError
from repro.model.foundation import FoundationModel
from repro.nn.optim import Adam
from repro.observability.metrics import global_metrics
from repro.observability.tracing import span
from repro.rng import make_rng
from repro.training.losses import description_nll


def train_describe(
    model: FoundationModel,
    pairs: list[InstructionPair],
    epochs: int = 150,
    lr: float = 1e-2,
    feature_noise: float = 0.15,
    patch_dropout: float = 0.08,
    seed: int = 0,
) -> list[float]:
    """Fit the trunk + AU description heads on <V, E> pairs.

    Light feature-noise / patch-dropout augmentation (as in
    :func:`train_assess`) keeps the learned AU filters concentrated on
    each action's landmark blob instead of on incidental pixels, so a
    random occluded segment does not spuriously toggle a description.

    Returns the per-epoch loss curve (useful for tests asserting that
    the loss actually decreases).
    """
    if not pairs:
        raise TrainingError("instruction tuning needs at least one pair")
    with span("train.describe_tuning", epochs=epochs,
              num_pairs=len(pairs)) as sp:
        features = model.features_matrix([pair.video for pair in pairs])
        targets = np.stack([pair.description.to_vector() for pair in pairs])
        optimizer = Adam(
            model.trunk.parameters() + model.au_head.parameters(), lr=lr
        )
        noise_rng = make_rng(seed, "describe-feature-noise")
        num_patches = features.shape[1] // 2
        curve: list[float] = []
        for _ in range(epochs):
            optimizer.zero_grad()
            inputs = features
            if feature_noise > 0:
                inputs = features + noise_rng.normal(0.0, feature_noise,
                                                     features.shape)
            if patch_dropout > 0:
                keep = noise_rng.random((inputs.shape[0], num_patches)) >= patch_dropout
                if inputs is features:
                    inputs = features.copy()
                inputs[:, :num_patches] *= keep
                inputs[:, num_patches:] *= keep
            logits = model.au_logits_batch(inputs)
            loss, grad = description_nll(logits, targets)
            model.backward_description_batch(grad)
            optimizer.step()
            curve.append(loss)
        sp.set("final_loss", curve[-1])
    global_metrics().gauge("training.describe_loss").set(curve[-1])
    return curve


def train_assess(
    model: FoundationModel,
    videos: list,
    descriptions: list,
    labels: np.ndarray,
    epochs: int = 200,
    lr: float = 1e-2,
    weight_decay: float = 0.01,
    feature_noise: float = 0.2,
    patch_dropout: float = 0.14,
    seed: int = 0,
    train_au_pathway: bool = False,
) -> list[float]:
    """Fit the assessment head on (V, E, A) triples (Eq. 4).

    ``descriptions[i]`` may be ``None`` (the "w/o Chain" variant, which
    assesses from the video alone).  By default only the assessment
    head is optimized so assessment tuning cannot erode the Describe
    ability acquired in Stage 1; ``train_au_pathway=True`` also adapts
    the shared trunk.

    Three regularizers keep the head faithful to how a large VLM
    behaves: a small weight decay keeps probabilities calibrated
    (saturated outputs would void every downstream faithfulness
    signal); Gaussian *feature-noise* and *patch-dropout* augmentation
    make the vision pathway robust to pixel perturbation and
    single-segment occlusion -- pushing decision influence into the
    description channel, which is what the paper's chain-reasoning
    story (and its "w/o Chain" gap) relies on.
    """
    if len(videos) != len(descriptions) or len(videos) != len(labels):
        raise TrainingError("videos, descriptions and labels must align")
    if not videos:
        raise TrainingError("assessment tuning needs at least one sample")
    with span("train.assess_tuning", epochs=epochs,
              num_samples=len(videos)) as sp:
        curve = _train_assess_epochs(
            model, videos, descriptions, labels, epochs, lr, weight_decay,
            feature_noise, patch_dropout, seed, train_au_pathway,
        )
        sp.set("final_loss", curve[-1])
    global_metrics().gauge("training.assess_loss").set(curve[-1])
    return curve


def _train_assess_epochs(
    model: FoundationModel,
    videos: list,
    descriptions: list,
    labels: np.ndarray,
    epochs: int,
    lr: float,
    weight_decay: float,
    feature_noise: float,
    patch_dropout: float,
    seed: int,
    train_au_pathway: bool,
) -> list[float]:
    num_aus = model.au_head.bias.value.shape[0]
    features = model.features_matrix(videos)
    desc_vectors = np.stack([
        desc.to_vector() if desc is not None else np.zeros(num_aus)
        for desc in descriptions
    ])
    labels = np.asarray(labels, dtype=np.float64)
    params = model.assess_head.parameters()
    if train_au_pathway:
        params = params + model.trunk.parameters()
    optimizer = Adam(params, lr=lr, weight_decay=weight_decay)
    noise_rng = make_rng(seed, "assess-feature-noise")
    num_patches = features.shape[1] // 2
    # Class-balanced sample weights (mean 1): the paper reports macro
    # metrics, and RSL is 70/30 imbalanced -- an unweighted fit would
    # sacrifice stressed-class recall for accuracy.
    positive_rate = float(labels.mean())
    if 0.0 < positive_rate < 1.0:
        weights = np.where(labels > 0.5, 0.5 / positive_rate,
                           0.5 / (1.0 - positive_rate))
    else:
        weights = np.ones_like(labels)
    curve: list[float] = []
    for _ in range(epochs):
        optimizer.zero_grad()
        inputs = features
        if feature_noise > 0:
            inputs = features + noise_rng.normal(0.0, feature_noise,
                                                 features.shape)
        if patch_dropout > 0:
            # Zero both channels of dropped patches, emulating a
            # blanked segment in pixel space.
            keep = noise_rng.random((inputs.shape[0], num_patches)) >= patch_dropout
            if inputs is features:
                inputs = features.copy()
            inputs[:, :num_patches] *= keep
            inputs[:, num_patches:] *= keep
        logits = model.assess_logits_batch(inputs, desc_vectors)
        loss, grad = description_nll(logits[:, np.newaxis],
                                     labels[:, np.newaxis])
        model.backward_assess_batch(grad[:, 0] * weights)
        optimizer.step()
        curve.append(loss)
    return curve
