"""Self-reflection candidate generation.

Thin orchestration over the model's reflective generation methods:
candidate descriptions for the Section III-C description-refinement
loop, and candidate rationales for the Section III-D best/worst
selection.  The ``use_reflection=False`` paths implement the paper's
"w/o reflection" ablation, which "simply samples different
descriptions and rationales from the model using instructions I1 and
I3" instead of reflecting.
"""

from __future__ import annotations

from repro.facs.descriptions import FacialDescription
from repro.model.foundation import FoundationModel
from repro.model.generation import GenerationConfig
from repro.rng import derive_seed
from repro.video.frame import Video


def propose_description(
    model: FoundationModel,
    video: Video,
    previous: FacialDescription,
    round_index: int,
    seed: int,
    true_label: int | None,
    use_reflection: bool = True,
) -> FacialDescription:
    """One candidate description E' for the refinement loop."""
    draw_seed = derive_seed(seed, f"reflectE:{video.video_id}:{round_index}")
    config = GenerationConfig(temperature=1.0, seed=draw_seed)
    if use_reflection:
        return model.reflect_description(video, previous, config,
                                         true_label=true_label)
    return model.describe(video, config)


def propose_rationales(
    model: FoundationModel,
    video: Video,
    description: FacialDescription,
    assessment: int,
    num_candidates: int,
    seed: int,
    use_reflection: bool = True,
) -> list[tuple[int, ...]]:
    """n candidate rationales (Algorithm 1 line 12)."""
    candidates = []
    for index in range(num_candidates):
        draw_seed = derive_seed(seed, f"reflectR:{video.video_id}:{index}")
        config = GenerationConfig(temperature=1.0, seed=draw_seed)
        if use_reflection:
            rationale = model.reflect_rationale(video, description,
                                                assessment, config)
        else:
            rationale = model.highlight(video, description, assessment, config)
        candidates.append(rationale)
    return candidates
