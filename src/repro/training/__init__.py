"""Training stages of the paper's Algorithm 1.

- :mod:`~repro.training.losses` -- Eq. 2 (description NLL), Eq. 4
  (assessment NLL) and the shared DPO objective of Eqs. 3 and 5;
- :mod:`~repro.training.instruction_tuning` -- Stage 1: learn to
  describe facial actions on DISFA+;
- :mod:`~repro.training.helpfulness` / :mod:`~repro.training.verification`
  -- the two description-quality scores (h and f) of Section III-C;
- :mod:`~repro.training.reflection` -- self-reflection candidate
  generation for descriptions and rationales;
- :mod:`~repro.training.faithfulness` -- the flip-count faithfulness
  score of rationales (Section III-D);
- :mod:`~repro.training.dpo` -- Direct Preference Optimization over
  description sets and rationale orderings;
- :mod:`~repro.training.self_refine` -- the full Algorithm-1
  orchestration with every ablation switch the paper evaluates.
"""

from repro.training.dpo import DPOTrainer
from repro.training.faithfulness import rationale_flip_count
from repro.training.helpfulness import helpfulness_score
from repro.training.instruction_tuning import train_describe
from repro.training.losses import (
    assess_nll,
    description_nll,
    dpo_loss,
)
from repro.training.self_refine import SelfRefineConfig, SelfRefineTrainer

__all__ = [
    "DPOTrainer",
    "SelfRefineConfig",
    "SelfRefineTrainer",
    "assess_nll",
    "description_nll",
    "dpo_loss",
    "helpfulness_score",
    "rationale_flip_count",
    "train_describe",
    "verification_score",
]

from repro.training.verification import verification_score  # noqa: E402
