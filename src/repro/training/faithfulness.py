"""Flip-count faithfulness of rationales (Section III-D).

"we remove the facial part reported by the rationale one by one until
the model decision is flipped.  The least inputs removed that can flip
the model decision is recorded as faithfulness score f.  The lower f
is, the more faithful rationale R is."

Removing a "facial part" means destroying the visual evidence of the
highlighted action unit in the most-expressive keyframe: the segment
the action grounds to (through the model's own sensitivity map) is
overwritten, cumulatively, and the *full chain* is re-queried after
every removal -- the model re-reads the perturbed frame, so a removed
action also disappears from the description it assesses with, exactly
as in the paper's mosaic test.
"""

from __future__ import annotations

from repro.facs.descriptions import FacialDescription
from repro.model.foundation import FoundationModel
from repro.video.frame import Video


def rationale_flip_count(
    model: FoundationModel,
    video: Video,
    description: FacialDescription,
    rationale: tuple[int, ...],
    num_segments: int = 64,
    fill: float = 0.5,
) -> int:
    """Number of highlighted facial parts that must be removed (in
    rationale order) before the chain's assessment flips.

    Returns a value in ``[1, len(rationale)]``, or
    ``len(rationale) + 1`` when removing every highlighted part leaves
    the decision unchanged (a maximally unfaithful rationale).  An
    empty rationale scores ``1`` by convention (nothing claimed,
    nothing to falsify).
    """
    if not rationale:
        return 1
    from repro.cot.rationale import Rationale

    expressive, neutral = video.keyframes
    labels = video.segmentation(num_segments)
    base_label = model.chain_prob_from_frames(expressive, neutral) > 0.5
    frame = expressive.copy()
    for count, au_id in enumerate(rationale, start=1):
        segments = Rationale((au_id,)).model_segment_ranking(
            model, labels, per_au=1
        )
        frame[labels == segments[0]] = fill
        prob = model.chain_prob_from_frames(frame, neutral)
        if (prob > 0.5) != base_label:
            return count
    return len(rationale) + 1
