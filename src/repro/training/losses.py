"""Loss functions of Algorithm 1.

``description_nll`` is Eq. 2, ``assess_nll`` Eq. 4, and ``dpo_loss``
the shared Direct Preference Optimization objective of Eqs. 3 and 5:

    L = -log sigmoid( beta * [ (log pi(w) - log ref(w))
                             - (log pi(l) - log ref(l)) ] )

``dpo_loss`` also returns the gradient of L w.r.t. the *policy*
log-probabilities, which the trainers chain through the model's
backward hooks (the reference model is frozen, so its terms carry no
gradient).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensorops import (
    binary_cross_entropy_with_logits,
    log_sigmoid,
    sigmoid,
)


def description_nll(logits: np.ndarray, targets: np.ndarray
                    ) -> tuple[float, np.ndarray]:
    """Eq. 2: negative log-likelihood of target AU descriptions.

    ``logits``/``targets`` are ``(N, 12)``.  Returns (loss, grad).
    """
    return binary_cross_entropy_with_logits(logits, targets)


def assess_nll(logits: np.ndarray, labels: np.ndarray
               ) -> tuple[float, np.ndarray]:
    """Eq. 4: negative log-likelihood of stress labels.

    ``logits``/``labels`` are ``(N,)``.  Returns (loss, grad).
    """
    return binary_cross_entropy_with_logits(logits, labels)


def dpo_loss(
    policy_winner_logprob: float,
    policy_loser_logprob: float,
    ref_winner_logprob: float,
    ref_loser_logprob: float,
    beta: float = 0.1,
) -> tuple[float, float, float]:
    """The DPO objective for one preference pair.

    Returns ``(loss, grad_winner, grad_loser)`` where the gradients are
    w.r.t. the policy log-probabilities of the winner and loser.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    margin = beta * (
        (policy_winner_logprob - ref_winner_logprob)
        - (policy_loser_logprob - ref_loser_logprob)
    )
    loss = -float(log_sigmoid(np.array(margin))[()])
    # dL/dmargin = -sigmoid(-margin); chain through beta.
    coeff = -float(sigmoid(np.array(-margin))[()]) * beta
    return loss, coeff, -coeff
