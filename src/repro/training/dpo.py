"""Direct Preference Optimization over descriptions and rationales.

Implements Eqs. 3 and 5 against a frozen reference copy of the model
("ref denotes the initial parameter of model F before training to
avoid over-optimization").  Description preferences are pairs of AU
sets scored by the Bernoulli description heads; rationale preferences
are pairs of AU orderings scored by the Plackett-Luce highlight
distribution.  Both generation channels expose exact log-probabilities
and gradients, so these updates are genuine preference optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.facs.descriptions import FacialDescription
from repro.model.foundation import FoundationModel
from repro.nn.optim import Adam
from repro.nn.tensorops import sigmoid
from repro.training.losses import dpo_loss
from repro.video.frame import Video


@dataclass(frozen=True)
class DescriptionPreference:
    """One Eq.-3 pair: the refined description beats the original."""

    video: Video
    winner: FacialDescription
    loser: FacialDescription


@dataclass(frozen=True)
class RationalePreference:
    """One Eq.-5 pair: the most faithful rationale beats the least."""

    video: Video
    description: FacialDescription
    assessment: int
    winner: tuple[int, ...]
    loser: tuple[int, ...]


class DPOTrainer:
    """Runs DPO epochs for either preference type.

    Parameters
    ----------
    model:
        The policy being optimized.
    beta:
        DPO inverse-temperature (the paper uses 0.1).
    lr:
        Adam learning rate.
    """

    def __init__(self, model: FoundationModel, beta: float = 0.1,
                 lr: float = 2e-3):
        if beta <= 0:
            raise TrainingError("beta must be positive")
        self.model = model
        self.beta = beta
        self.lr = lr
        self.reference = model.clone()
        self.reference.frozen = True

    # -- descriptions (Eq. 3) -------------------------------------------

    def train_descriptions(self, preferences: list[DescriptionPreference],
                           epochs: int = 5) -> list[float]:
        """Optimize the description heads on Eq.-3 pairs; returns the
        per-epoch mean loss curve.

        Only the AU heads move: the shared visual trunk is frozen
        during preference optimization so a few hundred preference
        pairs cannot overwrite the Stage-1 visual representation (the
        analog of LoRA-style limited-capacity DPO on a large VLM).
        """
        if not preferences:
            return []
        optimizer = Adam(self.model.au_head.parameters(), lr=self.lr)
        curve = []
        for _ in range(epochs):
            optimizer.zero_grad()
            total = 0.0
            for pref in preferences:
                total += self._description_pair_step(pref, len(preferences))
            optimizer.step()
            curve.append(total / len(preferences))
        return curve

    def _description_pair_step(self, pref: DescriptionPreference,
                               num_pairs: int) -> float:
        winner_vec = pref.winner.to_vector()
        loser_vec = pref.loser.to_vector()
        ref_logits = self.reference.au_logits(pref.video)
        ref_w = _bernoulli_logprob(ref_logits, winner_vec)
        ref_l = _bernoulli_logprob(ref_logits, loser_vec)

        logits = self.model.au_logits(pref.video)
        pol_w = _bernoulli_logprob(logits, winner_vec)
        pol_l = _bernoulli_logprob(logits, loser_vec)
        loss, grad_w, grad_l = dpo_loss(pol_w, pol_l, ref_w, ref_l, self.beta)
        # d logprob / d logits for a Bernoulli set is (outcome - prob).
        probs = sigmoid(logits)
        grad_logits = (grad_w * (winner_vec - probs)
                       + grad_l * (loser_vec - probs)) / num_pairs
        self.model.backward_description(grad_logits)
        return loss

    # -- rationales (Eq. 5) ---------------------------------------------

    def train_rationales(self, preferences: list[RationalePreference],
                         epochs: int = 5) -> list[float]:
        """Optimize the highlight pathway on Eq.-5 pairs; returns the
        per-epoch mean loss curve."""
        if not preferences:
            return []
        optimizer = Adam(
            self.model.highlight_proj.parameters()
            + [self.model.highlight_bias, self.model.highlight_assess],
            lr=self.lr,
        )
        curve = []
        for _ in range(epochs):
            optimizer.zero_grad()
            total = 0.0
            for pref in preferences:
                total += self._rationale_pair_step(pref, len(preferences))
            optimizer.step()
            curve.append(total / len(preferences))
        return curve

    def _rationale_pair_step(self, pref: RationalePreference,
                             num_pairs: int) -> float:
        if pref.winner == pref.loser:
            return 0.0
        ref_w = self.reference.rationale_logprob(
            pref.video, pref.description, pref.winner, pref.assessment
        )
        ref_l = self.reference.rationale_logprob(
            pref.video, pref.description, pref.loser, pref.assessment
        )
        pol_w = self.model.rationale_logprob(
            pref.video, pref.description, pref.winner, pref.assessment
        )
        pol_l = self.model.rationale_logprob(
            pref.video, pref.description, pref.loser, pref.assessment
        )
        loss, grad_w, grad_l = dpo_loss(pol_w, pol_l, ref_w, ref_l, self.beta)
        self.model.backward_rationale(pref.video, pref.description,
                                      pref.winner, pref.assessment,
                                      grad_w / num_pairs)
        self.model.backward_rationale(pref.video, pref.description,
                                      pref.loser, pref.assessment,
                                      grad_l / num_pairs)
        return loss


def _bernoulli_logprob(logits: np.ndarray, outcome: np.ndarray) -> float:
    from repro.model.generation import bernoulli_set_logprob

    return bernoulli_set_logprob(logits, outcome)
