"""Algorithm 1: the full self-refine chain-reasoning learning process.

Stages (matching the paper's Algorithm 1, run stage-wise over the
training set rather than per-sample for tractability -- the losses are
expectations over D, so the optimum is unchanged):

1. *Learn to describe* on DISFA+ instruction pairs (Eq. 2).
2. Generate an initial description ``E_o`` per training sample and
   bootstrap the assessment head (Eq. 4) so helpfulness scoring is
   meaningful.
3. *Description refinement loop*: reflect, score helpfulness ``h`` and
   verification faithfulness ``f``, accept ``E'`` only when both are
   at least as good, repeat until no candidate is accepted; learn the
   accepted preferences via DPO (Eq. 3).
4. Re-train the assessment head on the refined descriptions (Eq. 4).
5. *Rationale refinement*: generate a rationale, reflect ``n``
   alternatives, rank them by flip-count faithfulness, and learn the
   best-vs-worst preference via DPO (Eq. 5).

Every ablation in the paper's Tables III-VI is a switch here:
``use_chain=False`` ("w/o Chain"), ``learn_describe=False``
("w/o learn des."), ``use_refinement=False`` ("w/o Refine") and
``use_reflection=False`` ("w/o Reflection").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.datasets.base import Sample, StressDataset
from repro.datasets.instruction import InstructionPair
from repro.errors import TrainingError
from repro.reliability.checkpoint import (
    TrainingCheckpointer,
    training_fingerprint,
)
from repro.facs.descriptions import FacialDescription
from repro.model.foundation import FoundationModel
from repro.model.generation import GREEDY, GenerationConfig
from repro.observability import profiling
from repro.observability.metrics import global_metrics
from repro.observability.tracing import span
from repro.rng import derive_seed
from repro.training.dpo import (
    DescriptionPreference,
    DPOTrainer,
    RationalePreference,
)
from repro.training.faithfulness import rationale_flip_count
from repro.training.helpfulness import helpfulness_score
from repro.training.instruction_tuning import train_assess, train_describe
from repro.training.reflection import propose_description, propose_rationales
from repro.training.verification import verification_score


@dataclass(frozen=True)
class SelfRefineConfig:
    """Hyper-parameters and ablation switches of Algorithm 1.

    Defaults follow Section IV-H: DPO beta 0.1, K = 5 scoring trials,
    n = 4 reflected rationales.
    """

    use_chain: bool = True
    learn_describe: bool = True
    use_refinement: bool = True
    use_reflection: bool = True
    num_trials: int = 5                 # K
    num_rationale_candidates: int = 4   # n
    max_reflection_rounds: int = 3
    beta: float = 0.1
    describe_epochs: int = 150
    assess_epochs: int = 200
    dpo_desc_epochs: int = 5
    dpo_desc_lr: float = 2e-3
    dpo_rationale_epochs: int = 12
    dpo_rationale_lr: float = 4e-3
    refine_sample_limit: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_trials < 1 or self.num_rationale_candidates < 1:
            raise TrainingError("K and n must be positive")
        if self.max_reflection_rounds < 1:
            raise TrainingError("max_reflection_rounds must be positive")


@dataclass
class TrainingReport:
    """What happened during one :meth:`SelfRefineTrainer.fit` run."""

    describe_curve: list[float] = field(default_factory=list)
    assess_curve_bootstrap: list[float] = field(default_factory=list)
    assess_curve_final: list[float] = field(default_factory=list)
    dpo_description_curve: list[float] = field(default_factory=list)
    dpo_rationale_curve: list[float] = field(default_factory=list)
    num_description_pairs: int = 0
    num_rationale_pairs: int = 0
    num_reflection_rounds: int = 0


class SelfRefineTrainer:
    """Trains a :class:`FoundationModel` per Algorithm 1."""

    def __init__(self, model: FoundationModel, config: SelfRefineConfig):
        self.model = model
        self.config = config

    # ------------------------------------------------------------------

    def fit(self, train_data: StressDataset,
            instruction_pairs: list[InstructionPair],
            checkpoint_dir: str | Path | None = None) -> TrainingReport:
        """Run all stages on ``train_data``; returns a report.

        With ``checkpoint_dir`` set, a checkpoint (model parameters,
        partial report, per-sample descriptions) is written after every
        completed stage, and a later ``fit`` against the same
        directory, config, and data resumes from the last completed
        stage -- producing a final model and report **bitwise
        identical** to an uninterrupted run.  Bitwise identity holds
        because no RNG state crosses a stage boundary: every stream is
        freshly derived from ``config.seed`` at its point of use (see
        :mod:`repro.reliability.checkpoint`).  A checkpoint written by
        a different config or dataset is rejected with
        :class:`~repro.errors.CheckpointError`.
        """
        config = self.config
        report = TrainingReport()
        checkpointer: TrainingCheckpointer | None = None
        completed = -1
        descriptions: list[FacialDescription | None] = []
        if checkpoint_dir is not None:
            checkpointer = TrainingCheckpointer(
                checkpoint_dir,
                training_fingerprint(config, train_data, instruction_pairs),
                seed=config.seed,
            )
            latest = checkpointer.latest_stage()
            if latest is not None:
                restored = checkpointer.load_stage(latest, self.model, report)
                if restored is not None:
                    descriptions = restored
                completed = latest

        samples = list(train_data)
        labels = np.array([s.label for s in samples], dtype=np.float64)
        videos = [s.video for s in samples]

        def save(stage_index: int) -> None:
            if checkpointer is not None:
                checkpointer.save_stage(stage_index, self.model, report,
                                        descriptions)

        # Stage 1: learn to describe facial actions (Eq. 2).
        if completed < 0 and config.use_chain and config.learn_describe:
            report.describe_curve = train_describe(
                self.model, instruction_pairs, epochs=config.describe_epochs
            )
            save(0)

        # Stage 2: initial descriptions + bootstrap assessment head.
        if completed < 1:
            descriptions = self._initial_descriptions(samples)
            report.assess_curve_bootstrap = train_assess(
                self.model, videos, descriptions, labels,
                epochs=config.assess_epochs,
            )
            save(1)

        # Stages 3-4: description refinement + DPO + assess re-train.
        if config.use_chain and config.use_refinement:
            if completed < 2:
                with span("train.description_refinement") as sp:
                    descriptions, pairs, rounds = self._refine_descriptions(
                        samples, descriptions, train_data
                    )
                    report.num_description_pairs = len(pairs)
                    report.num_reflection_rounds = rounds
                    sp.set("accepted_pairs", len(pairs))
                    sp.set("reflection_rounds", rounds)
                    if pairs:
                        dpo = DPOTrainer(self.model, beta=config.beta,
                                         lr=config.dpo_desc_lr)
                        report.dpo_description_curve = dpo.train_descriptions(
                            pairs, epochs=config.dpo_desc_epochs
                        )
                metrics = global_metrics()
                metrics.counter("training.description_pairs").inc(len(pairs))
                metrics.counter("training.reflection_rounds").inc(rounds)
                save(2)
            if completed < 3:
                # The re-train condition survives a resume through the
                # report: num_description_pairs is exactly len(pairs).
                if report.num_description_pairs:
                    # The assess re-train emits its own
                    # train.assess_tuning span, so it stays outside the
                    # refinement span.
                    report.assess_curve_final = train_assess(
                        self.model, videos, descriptions, labels,
                        epochs=config.assess_epochs,
                    )
                save(3)

        # Stage 5: rationale refinement + DPO.
        if config.use_refinement and completed < 4:
            with span("train.rationale_refinement") as sp:
                rationale_pairs = self._refine_rationales(samples,
                                                          descriptions)
                report.num_rationale_pairs = len(rationale_pairs)
                sp.set("pairs", len(rationale_pairs))
                if rationale_pairs:
                    dpo = DPOTrainer(self.model, beta=config.beta,
                                     lr=config.dpo_rationale_lr)
                    report.dpo_rationale_curve = dpo.train_rationales(
                        rationale_pairs, epochs=config.dpo_rationale_epochs
                    )
            global_metrics().counter("training.rationale_pairs").inc(
                len(rationale_pairs))
            save(4)
        return report

    # ------------------------------------------------------------------
    # Stage helpers
    # ------------------------------------------------------------------

    def _initial_descriptions(
        self, samples: list[Sample]
    ) -> list[FacialDescription | None]:
        """Sampled E_o per sample; ``None`` for the w/o-Chain variant."""
        if not self.config.use_chain:
            return [None] * len(samples)
        descriptions = []
        for sample in samples:
            config = GenerationConfig(
                temperature=1.0,
                seed=derive_seed(self.config.seed,
                                 f"describe:{sample.sample_id}"),
            )
            descriptions.append(self.model.describe(sample.video, config))
        return descriptions

    def _refine_limit(self, total: int) -> int:
        limit = self.config.refine_sample_limit
        return total if limit is None else min(limit, total)

    def _refine_descriptions(
        self,
        samples: list[Sample],
        descriptions: list[FacialDescription | None],
        train_data: StressDataset,
    ) -> tuple[list[FacialDescription | None],
               list[DescriptionPreference], int]:
        """The do-while reflection loop of Algorithm 1 (lines 4-9)."""
        config = self.config
        pool = [s.video for s in train_data]
        refined = list(descriptions)
        pairs: list[DescriptionPreference] = []
        total_rounds = 0
        accepted = rejected_helpfulness = rejected_verification = 0
        limit = self._refine_limit(len(samples))
        for index in range(limit):
            sample = samples[index]
            original = refined[index]
            if original is None:
                continue
            current = original
            score_seed = derive_seed(config.seed, f"score:{sample.sample_id}")
            current_h = helpfulness_score(
                self.model, sample.video, current, sample.label,
                num_trials=config.num_trials, seed=score_seed,
            )
            current_f = verification_score(
                self.model, sample.video, current, pool,
                num_trials=config.num_trials, seed=score_seed,
            )
            for round_index in range(config.max_reflection_rounds):
                total_rounds += 1
                candidate = propose_description(
                    self.model, sample.video, current, round_index,
                    config.seed, true_label=sample.label,
                    use_reflection=config.use_reflection,
                )
                if candidate == current:
                    break
                cand_seed = derive_seed(
                    score_seed, f"cand:{round_index}"
                )
                cand_h = helpfulness_score(
                    self.model, sample.video, candidate, sample.label,
                    num_trials=config.num_trials, seed=cand_seed,
                )
                cand_f = verification_score(
                    self.model, sample.video, candidate, pool,
                    num_trials=config.num_trials, seed=cand_seed,
                )
                if cand_h >= current_h and cand_f >= current_f:
                    accepted += 1
                    current, current_h, current_f = candidate, cand_h, cand_f
                else:
                    # A candidate may fail either gate (or both); the
                    # split tells an operator *which* signal is doing
                    # the rejecting on this dataset.
                    if cand_h < current_h:
                        rejected_helpfulness += 1
                    if cand_f < current_f:
                        rejected_verification += 1
                    break
            if current != original:
                refined[index] = current
                pairs.append(DescriptionPreference(
                    video=sample.video, winner=current, loser=original,
                ))
        metrics = global_metrics()
        metrics.counter("training.refine_accepted").inc(accepted)
        metrics.counter(
            "training.refine_rejected_helpfulness").inc(rejected_helpfulness)
        metrics.counter(
            "training.refine_rejected_verification").inc(rejected_verification)
        profiling.count("refine.accepted", accepted)
        profiling.count("refine.rejected_helpfulness", rejected_helpfulness)
        profiling.count("refine.rejected_verification", rejected_verification)
        return refined, pairs, total_rounds

    def _refine_rationales(
        self,
        samples: list[Sample],
        descriptions: list[FacialDescription | None],
    ) -> list[RationalePreference]:
        """Best/worst rationale selection (Algorithm 1 lines 11-14)."""
        config = self.config
        pairs: list[RationalePreference] = []
        limit = self._refine_limit(len(samples))
        for index in range(limit):
            sample = samples[index]
            description = descriptions[index]
            if description is None:
                # w/o Chain still highlights: it reads its own greedy AU
                # estimate off the video at rationale time.
                description = self.model.describe(sample.video, GREEDY)
            if not description.au_ids:
                continue
            assessment, __ = self.model.assess(sample.video, description)
            base_config = GenerationConfig(
                temperature=1.0,
                seed=derive_seed(config.seed,
                                 f"rationale:{sample.sample_id}"),
            )
            base = self.model.highlight(sample.video, description,
                                        assessment, base_config)
            candidates = [base] + propose_rationales(
                self.model, sample.video, description, assessment,
                config.num_rationale_candidates, config.seed,
                use_reflection=config.use_reflection,
            )
            unique = list(dict.fromkeys(candidates))
            if len(unique) < 2:
                continue
            flips = [
                rationale_flip_count(self.model, sample.video, description,
                                     rationale)
                for rationale in unique
            ]
            best = unique[int(np.argmin(flips))]
            worst = unique[int(np.argmax(flips))]
            if best != worst and min(flips) < max(flips):
                pairs.append(RationalePreference(
                    video=sample.video, description=description,
                    assessment=assessment, winner=best, loser=worst,
                ))
        return pairs
