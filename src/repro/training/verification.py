"""Self-verification of facial descriptions (Section III-C, Figure 4).

"we also randomly select 3 video samples from other subjects as
negative samples, and prompt the model to select the correct sample
that E describes out of the 4 videos ... the self-verification is
started in another dialogue session."
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.facs.descriptions import FacialDescription
from repro.model.foundation import FoundationModel
from repro.model.generation import GenerationConfig
from repro.model.session import DialogueSession
from repro.rng import derive_seed, make_rng
from repro.video.frame import Video

#: Temperature of the verification choice; positive so K repetitions
#: measure confidence rather than a single argmax.
VERIFY_TEMPERATURE: float = 1.0


def verification_score(
    model: FoundationModel,
    video: Video,
    description: FacialDescription,
    pool: list[Video],
    num_trials: int = 5,
    num_negatives: int = 3,
    seed: int = 0,
) -> float:
    """Fraction of K multiple-choice trials where the model picks the
    described video out of ``1 + num_negatives`` candidates.

    Negatives are drawn (per trial) from pool videos of *other*
    subjects; every trial runs in a fresh dialogue session.
    """
    candidates_pool = [
        v for v in pool
        if v.subject_id != video.subject_id and v.video_id != video.video_id
    ]
    if len(candidates_pool) < num_negatives:
        raise TrainingError(
            f"need at least {num_negatives} other-subject videos for "
            f"verification, got {len(candidates_pool)}"
        )
    hits = 0
    for trial in range(num_trials):
        trial_seed = derive_seed(seed, f"verify:{video.video_id}:{trial}")
        rng = make_rng(trial_seed, "negatives")
        negatives = [
            candidates_pool[i]
            for i in rng.choice(len(candidates_pool), size=num_negatives,
                                replace=False)
        ]
        candidates = negatives + [video]
        order = rng.permutation(len(candidates))
        shuffled = [candidates[i] for i in order]
        target = int(np.where(order == len(candidates) - 1)[0][0])
        session = DialogueSession()
        choice = model.verify(
            description, shuffled,
            GenerationConfig(temperature=VERIFY_TEMPERATURE, seed=trial_seed),
            session,
        )
        hits += int(choice == target)
    return hits / num_trials
