"""Helpfulness scoring of facial descriptions (Section III-C).

"helpfulness evaluates whether model F can accurately predict the
stress level A with E ... We prompt the model to answer I2 based on E
[...] K times with different random seeds, and obtain accuracy scores
h and h'."
"""

from __future__ import annotations

from repro.facs.descriptions import FacialDescription
from repro.model.foundation import FoundationModel
from repro.model.generation import GenerationConfig
from repro.rng import derive_seed
from repro.video.frame import Video

#: Sampling temperature of the repeated assessments; positive so the K
#: draws genuinely differ, moderate so the score reflects confidence.
ASSESS_TEMPERATURE: float = 0.7


def helpfulness_score(
    model: FoundationModel,
    video: Video,
    description: FacialDescription,
    true_label: int,
    num_trials: int = 5,
    seed: int = 0,
) -> float:
    """Fraction of K tempered assessments that hit the true label."""
    if num_trials < 1:
        raise ValueError("num_trials must be positive")
    hits = 0
    for trial in range(num_trials):
        config = GenerationConfig(
            temperature=ASSESS_TEMPERATURE,
            seed=derive_seed(seed, f"helpfulness:{video.video_id}:{trial}"),
        )
        label, __ = model.assess(video, description, config)
        hits += int(label == true_label)
    return hits / num_trials
