"""High-level training entry points and the paper's ablation variants.

``train_stress_model`` runs the full pipeline on one train split and
returns the trained model; ``VARIANTS`` maps the names used in
Tables III-VI to their :class:`SelfRefineConfig` switches.
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.base import StressDataset
from repro.datasets.instruction import InstructionPair
from repro.errors import TrainingError
from repro.model.foundation import FoundationModel
from repro.rng import make_rng
from repro.training.self_refine import (
    SelfRefineConfig,
    SelfRefineTrainer,
    TrainingReport,
)

#: Ablation variants evaluated in the paper, as config transformers.
VARIANTS: dict[str, dict[str, bool]] = {
    "ours": {},
    "wo_chain": {"use_chain": False},
    "wo_learn_des": {"learn_describe": False},
    "wo_refine": {"use_refinement": False},
    "wo_reflection": {"use_reflection": False},
}


def variant_config(name: str,
                   base: SelfRefineConfig | None = None) -> SelfRefineConfig:
    """The :class:`SelfRefineConfig` for a named paper variant."""
    if name not in VARIANTS:
        raise TrainingError(
            f"unknown variant {name!r}; known: {sorted(VARIANTS)}"
        )
    base = base or SelfRefineConfig()
    return replace(base, **VARIANTS[name])


def train_stress_model(
    train_data: StressDataset,
    instruction_pairs: list[InstructionPair],
    config: SelfRefineConfig | None = None,
    seed: int = 0,
) -> tuple[FoundationModel, TrainingReport]:
    """Initialise and train one model on ``train_data``.

    Returns the trained model and the stage-by-stage report.
    """
    config = config or SelfRefineConfig(seed=seed)
    model = FoundationModel(make_rng(seed, "foundation-model"))
    trainer = SelfRefineTrainer(model, config)
    report = trainer.fit(train_data, instruction_pairs)
    return model, report
