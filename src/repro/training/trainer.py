"""High-level training entry points and the paper's ablation variants.

``train_stress_model`` runs the full pipeline on one train split and
returns the trained model; ``VARIANTS`` maps the names used in
Tables III-VI to their :class:`SelfRefineConfig` switches.
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.base import StressDataset
from repro.datasets.instruction import InstructionPair
from repro.errors import TrainingError
from repro.model.foundation import FoundationModel
from repro.observability.tracing import span
from repro.rng import make_rng
from repro.training.self_refine import (
    SelfRefineConfig,
    SelfRefineTrainer,
    TrainingReport,
)

#: Ablation variants evaluated in the paper, as config transformers.
VARIANTS: dict[str, dict[str, bool]] = {
    "ours": {},
    "wo_chain": {"use_chain": False},
    "wo_learn_des": {"learn_describe": False},
    "wo_refine": {"use_refinement": False},
    "wo_reflection": {"use_reflection": False},
}


def variant_config(name: str,
                   base: SelfRefineConfig | None = None) -> SelfRefineConfig:
    """The :class:`SelfRefineConfig` for a named paper variant."""
    if name not in VARIANTS:
        raise TrainingError(
            f"unknown variant {name!r}; known: {sorted(VARIANTS)}"
        )
    base = base or SelfRefineConfig()
    return replace(base, **VARIANTS[name])


def train_stress_model(
    train_data: StressDataset,
    instruction_pairs: list[InstructionPair],
    config: SelfRefineConfig | None = None,
    seed: int | None = None,
    checkpoint_dir: str | None = None,
) -> tuple[FoundationModel, TrainingReport]:
    """Initialise and train one model on ``train_data``.

    Returns the trained model and the stage-by-stage report.

    Seed precedence: exactly one root seed drives both the model's
    weight initialisation and every training-stage stream.  An
    explicit ``seed`` wins -- when a ``config`` is also given with a
    different ``config.seed``, the config is re-rooted via
    ``replace(config, seed=seed)``.  With ``seed=None`` (the default)
    the config's own seed is used.  (Previously the model RNG used
    ``seed`` while training used ``config.seed``, so the two could
    silently diverge.)

    ``checkpoint_dir`` enables stage-boundary checkpoint/resume (see
    :meth:`SelfRefineTrainer.fit`): rerunning after a crash with the
    same directory, config, and data resumes at the last completed
    stage and yields a bitwise-identical model and report.
    """
    if config is None:
        config = SelfRefineConfig(seed=0 if seed is None else seed)
    elif seed is not None and seed != config.seed:
        config = replace(config, seed=seed)
    model = FoundationModel(make_rng(config.seed, "foundation-model"))
    with span("train.fit", seed=config.seed, num_samples=len(train_data)):
        trainer = SelfRefineTrainer(model, config)
        report = trainer.fit(train_data, instruction_pairs,
                             checkpoint_dir=checkpoint_dir)
    return model, report
