"""Parallel execution backends for the evaluation stack.

The cross-validation harness fans independent folds out over a
configurable executor.  Three backends are provided:

- ``"serial"`` -- a plain loop (the reference path);
- ``"thread"`` -- a :class:`~concurrent.futures.ThreadPoolExecutor`,
  useful when the fold work releases the GIL (NumPy kernels) or shares
  large read-only state such as a frozen off-the-shelf model;
- ``"process"`` -- a fork-based pool (POSIX only).  Children inherit
  the parent's memory image, so arbitrary closures -- the fit
  functions in :mod:`repro.evaluation.protocol` are closures -- run
  without being picklable; only *results* cross the process boundary.

Every backend evaluates exactly the same per-item computation and
returns results in submission order, so outputs are bitwise-identical
across backends and worker counts: parallelism changes *when* a fold
runs, never *what* it computes.  Each fold derives its own seeds from
its fold index, so no stream is shared across concurrently-running
items.

Worker count resolution: an explicit ``num_workers`` argument wins,
then the ``REPRO_NUM_WORKERS`` environment variable (read through
:func:`repro.config.settings`), then the machine's CPU count.  The
default backend may likewise be set with ``REPRO_PARALLEL_BACKEND``.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import traceback
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any, TypeVar

from repro.config import BACKEND_ENV, NUM_WORKERS_ENV, settings
from repro.errors import ConfigError

T = TypeVar("T")

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "NUM_WORKERS_ENV",
    "parallel_map",
    "resolve_backend",
    "resolve_num_workers",
]

#: Recognised backend names.
BACKENDS = ("serial", "thread", "process")


def resolve_backend(backend: str | None = None) -> str:
    """Pick the execution backend: explicit argument, then the
    ``REPRO_PARALLEL_BACKEND`` environment variable, then serial."""
    if backend is None:
        backend = settings().parallel_backend or "serial"
    if backend not in BACKENDS:
        raise ConfigError(
            f"unknown parallel backend {backend!r}; known: {BACKENDS}"
        )
    if backend == "process" and not hasattr(os, "fork"):
        # Fork is the mechanism that lets closures cross into workers;
        # without it the honest fallback is threads.
        return "thread"
    return backend


def resolve_num_workers(num_workers: int | None = None) -> int:
    """Pick the worker count: explicit argument, then the
    ``REPRO_NUM_WORKERS`` environment variable, then the CPU count."""
    if num_workers is None:
        num_workers = settings().num_workers
        if num_workers is None:
            num_workers = os.cpu_count() or 1
    if num_workers < 1:
        raise ConfigError(f"num_workers must be positive, got {num_workers}")
    return num_workers


def parallel_map(
    fn: Callable[[Any], T],
    items: Sequence[Any],
    backend: str | None = None,
    num_workers: int | None = None,
) -> list[T]:
    """Apply ``fn`` to every item, possibly concurrently.

    Results come back in item order regardless of completion order.
    A worker exception is re-raised in the caller (for the process
    backend, with the child's traceback attached).
    """
    backend = resolve_backend(backend)
    items = list(items)
    if not items:
        return []
    workers = min(resolve_num_workers(num_workers), len(items))
    if backend == "serial" or workers == 1:
        return [fn(item) for item in items]
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    return _fork_map(fn, items, workers)


def _fork_map(fn: Callable[[Any], T], items: list[Any],
              num_workers: int) -> list[T]:
    """Fork-based process map.

    Items are dealt round-robin to ``num_workers`` forked children.
    Each child inherits the full parent image (so ``fn`` may be any
    closure), computes its share, and pickles the results to a
    temporary file the parent reads back after ``waitpid``.  Files
    rather than pipes, so result size never deadlocks on a pipe
    buffer.
    """
    shares = [list(range(w, len(items), num_workers))
              for w in range(num_workers)]
    workers: list[tuple[int, str, list[int]]] = []
    try:
        for share in shares:
            fd, path = tempfile.mkstemp(prefix="repro-fork-", suffix=".pkl")
            os.close(fd)
            pid = os.fork()
            if pid == 0:  # child
                status = 1
                try:
                    payload: tuple[bool, Any]
                    try:
                        payload = (True, [fn(items[i]) for i in share])
                        status = 0
                    except BaseException:
                        payload = (False, traceback.format_exc())
                    with open(path, "wb") as handle:
                        pickle.dump(payload, handle)
                finally:
                    # Never run parent cleanup (atexit, finally blocks
                    # up-stack) inside the child.
                    os._exit(status)
            workers.append((pid, path, share))

        results: list[T | None] = [None] * len(items)
        failures: list[str] = []
        for pid, path, share in workers:
            __, status = os.waitpid(pid, 0)
            try:
                with open(path, "rb") as handle:
                    ok, payload = pickle.load(handle)
            except (EOFError, pickle.UnpicklingError):
                failures.append(
                    f"worker {pid} died without writing results "
                    f"(exit status {status})"
                )
                continue
            if ok:
                for index, result in zip(share, payload):
                    results[index] = result
            else:
                failures.append(payload)
        if failures:
            raise RuntimeError(
                "parallel worker failed:\n" + "\n".join(failures)
            )
        return results  # type: ignore[return-value]
    finally:
        for __, path, __ in workers:
            try:
                os.unlink(path)
            except OSError:
                pass
