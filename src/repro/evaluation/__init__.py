"""Cross-validation harness and per-method evaluation protocols."""

from repro.evaluation.cross_validation import cross_validate
from repro.evaluation.parallel import (
    parallel_map,
    resolve_backend,
    resolve_num_workers,
)
from repro.evaluation.protocol import (
    evaluate_baseline,
    evaluate_offtheshelf,
    evaluate_ours,
)

__all__ = [
    "cross_validate",
    "evaluate_baseline",
    "evaluate_offtheshelf",
    "evaluate_ours",
    "parallel_map",
    "resolve_backend",
    "resolve_num_workers",
]
