"""Per-method evaluation protocols for the paper's tables.

Three method families appear in Table I, each with its own protocol:

- *off-the-shelf LFMs* are frozen; they answer the direct stress query
  with no training (:func:`evaluate_offtheshelf`);
- *supervised baselines* are fitted per fold
  (:func:`evaluate_baseline`);
- *ours* runs the full Algorithm-1 training per fold and predicts
  through the reasoning chain (:func:`evaluate_ours`).
"""

from __future__ import annotations

from repro.baselines.zoo import make_baseline
from repro.cot.chain import StressChainPipeline
from repro.datasets.base import StressDataset
from repro.datasets.instruction import InstructionPair
from repro.evaluation.cross_validation import cross_validate
from repro.metrics.classification import ClassificationMetrics
from repro.model.pretrained import load_offtheshelf
from repro.rng import derive_seed
from repro.training.self_refine import SelfRefineConfig
from repro.training.trainer import train_stress_model, variant_config


def evaluate_offtheshelf(
    vendor: str,
    dataset: StressDataset,
    num_folds: int = 10,
    seed: int = 0,
    use_chain: bool = False,
    test_time_refine: bool = False,
    backend: str | None = None,
    num_workers: int | None = None,
) -> ClassificationMetrics:
    """Zero-shot LFM evaluation (Table I rows 1-3; Table VIII with
    ``use_chain`` / ``test_time_refine``).

    The proxy never trains, but the CV harness is reused so the test
    partitioning matches the supervised methods exactly.
    """
    model = load_offtheshelf(vendor, seed=derive_seed(seed, "offtheshelf"))

    def fit(train: StressDataset, fold_index: int):
        pool = [sample.video for sample in train] if test_time_refine else None
        pipeline = StressChainPipeline(
            model,
            use_chain=use_chain,
            test_time_refine=test_time_refine,
            verification_pool=pool,
            seed=derive_seed(seed, f"ots:{vendor}:{fold_index}"),
        )
        return lambda sample: pipeline.predict(sample.video).label

    mean, __ = cross_validate(fit, dataset, num_folds, seed,
                              backend=backend, num_workers=num_workers)
    return mean


def evaluate_baseline(
    key: str,
    dataset: StressDataset,
    num_folds: int = 10,
    seed: int = 0,
    backend: str | None = None,
    num_workers: int | None = None,
) -> ClassificationMetrics:
    """Supervised-baseline evaluation (Table I middle block)."""

    def fit(train: StressDataset, fold_index: int):
        baseline = make_baseline(key)
        baseline.fit(train, seed=derive_seed(seed, f"{key}:{fold_index}"))
        return lambda sample: baseline.predict(sample.video)

    mean, __ = cross_validate(fit, dataset, num_folds, seed,
                              backend=backend, num_workers=num_workers)
    return mean


def evaluate_ours(
    dataset: StressDataset,
    instruction_pairs: list[InstructionPair],
    variant: str = "ours",
    num_folds: int = 10,
    seed: int = 0,
    config: SelfRefineConfig | None = None,
    backend: str | None = None,
    num_workers: int | None = None,
) -> ClassificationMetrics:
    """Full-pipeline evaluation (Table I last row; Tables III/V
    variants via ``variant``)."""
    base_config = variant_config(variant, config)

    def fit(train: StressDataset, fold_index: int):
        fold_seed = derive_seed(seed, f"ours:{variant}:{fold_index}")
        model, __ = train_stress_model(
            train, instruction_pairs,
            config=base_config, seed=fold_seed,
        )
        pipeline = StressChainPipeline(
            model, use_chain=base_config.use_chain, seed=fold_seed
        )
        return lambda sample: pipeline.predict(sample.video).label

    mean, __ = cross_validate(fit, dataset, num_folds, seed,
                              backend=backend, num_workers=num_workers)
    return mean
