"""Generic subject-aware k-fold cross-validation.

The paper reports 10-fold cross-validated means for every method; this
module runs any fit/predict pair over the folds produced by
:func:`repro.datasets.base.kfold_splits` and averages the macro
metrics.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.datasets.base import StressDataset, kfold_splits
from repro.metrics.classification import (
    ClassificationMetrics,
    evaluate_predictions,
    mean_metrics,
)

#: fit(train_dataset, fold_index) -> predictor;
#: the predictor maps a Sample to a hard label.
FitFn = Callable[[StressDataset, int], Callable]


def cross_validate(
    fit: FitFn,
    dataset: StressDataset,
    num_folds: int = 10,
    seed: int = 0,
) -> tuple[ClassificationMetrics, list[ClassificationMetrics]]:
    """Run k-fold CV; returns (mean metrics, per-fold metrics)."""
    per_fold: list[ClassificationMetrics] = []
    for fold_index, (train_idx, test_idx) in enumerate(
        kfold_splits(dataset, num_folds, seed)
    ):
        train = dataset.subset(train_idx, f"{dataset.name}-fold{fold_index}-train")
        test = dataset.subset(test_idx, f"{dataset.name}-fold{fold_index}-test")
        predictor = fit(train, fold_index)
        predictions = np.array([predictor(sample) for sample in test])
        per_fold.append(evaluate_predictions(test.labels, predictions))
    return mean_metrics(per_fold), per_fold
