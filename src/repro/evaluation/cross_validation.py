"""Generic subject-aware k-fold cross-validation.

The paper reports 10-fold cross-validated means for every method; this
module runs any fit/predict pair over the folds produced by
:func:`repro.datasets.base.kfold_splits` and averages the macro
metrics.

Folds are mutually independent -- each derives its own seeds from its
fold index -- so they can run concurrently on any
:mod:`repro.evaluation.parallel` backend.  The parallel path executes
exactly the per-fold computation the serial loop would, in the same
fold order, so the returned metrics are bitwise-identical whatever the
backend or worker count.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.datasets.base import StressDataset, kfold_splits
from repro.evaluation.parallel import parallel_map
from repro.observability.metrics import global_metrics
from repro.observability.tracing import span
from repro.reliability.faults import fault_point
from repro.metrics.classification import (
    ClassificationMetrics,
    evaluate_predictions,
    mean_metrics,
)

#: fit(train_dataset, fold_index) -> predictor;
#: the predictor maps a Sample to a hard label.
FitFn = Callable[[StressDataset, int], Callable]


def cross_validate(
    fit: FitFn,
    dataset: StressDataset,
    num_folds: int = 10,
    seed: int = 0,
    backend: str | None = None,
    num_workers: int | None = None,
) -> tuple[ClassificationMetrics, list[ClassificationMetrics]]:
    """Run k-fold CV; returns (mean metrics, per-fold metrics).

    ``backend`` selects the fold executor (``"serial"``, ``"thread"``
    or ``"process"``; default from ``REPRO_PARALLEL_BACKEND``, else
    serial) and ``num_workers`` the concurrency (default from
    ``REPRO_NUM_WORKERS``, else the CPU count).
    """
    splits = kfold_splits(dataset, num_folds, seed)

    def run_fold(fold_index: int) -> ClassificationMetrics:
        # The span nests under eval.cross_validate on the serial
        # backend and roots its own trace on worker threads/processes.
        with span("eval.fold", fold=fold_index, dataset=dataset.name):
            # The cv.fold fault site: chaos tests fail a chosen fold to
            # verify a fold error surfaces instead of corrupting means.
            fault_point("cv.fold")
            train_idx, test_idx = splits[fold_index]
            train = dataset.subset(train_idx,
                                   f"{dataset.name}-fold{fold_index}-train")
            test = dataset.subset(test_idx,
                                  f"{dataset.name}-fold{fold_index}-test")
            predictor = fit(train, fold_index)
            predictions = np.array([predictor(sample) for sample in test])
            return evaluate_predictions(test.labels, predictions)

    with span("eval.cross_validate", dataset=dataset.name,
              folds=len(splits)):
        per_fold = parallel_map(run_fold, range(len(splits)),
                                backend=backend, num_workers=num_workers)
    global_metrics().counter("evaluation.folds").inc(len(splits))
    return mean_metrics(per_fold), per_fold
