"""Versioned model artifacts: the registry behind hot-swap deploys.

A :class:`ModelRegistry` is a directory of immutable, named pipeline
versions::

    registry/
        v1/
            pipeline.npz      # the persistence-layer archive
            manifest.json     # integrity digest + format metadata
        v2/
            ...

Each version is published atomically (archive written to a temp name,
digest recorded, then renamed into place), is refused on load when its
SHA-256 digest no longer matches the manifest, and is never mutated --
"deploy v2" means loading a different directory, not rewriting files a
live replica may be reading.  That immutability is what makes
:meth:`ReplicaPool.deploy <repro.serving.pool.ReplicaPool.deploy>`
safe: a rollback is just a re-load of the previous version's artifact.

Version names order *naturally* (``v2`` before ``v10``), so
:meth:`ModelRegistry.latest` does what a deploy script expects.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import RegistryError

if TYPE_CHECKING:  # pragma: no cover - import cycle: chain -> model pkg
    from repro.cot.chain import StressChainPipeline

#: Manifest layout version (bump on layout changes).
MANIFEST_VERSION: int = 1

#: Archive filename inside each version directory.
ARTIFACT_NAME = "pipeline.npz"

#: Manifest filename inside each version directory.
MANIFEST_NAME = "manifest.json"

_VERSION_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _natural_key(version: str) -> tuple:
    """Sort key splitting digit runs, so ``v10`` follows ``v9``."""
    return tuple(int(part) if part.isdigit() else part
                 for part in re.split(r"(\d+)", version) if part)


class ModelRegistry:
    """A directory of versioned, integrity-checked pipeline artifacts.

    Parameters
    ----------
    root:
        Registry directory (created on first publish).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- publishing ----------------------------------------------------

    def publish(self, version: str, pipeline: StressChainPipeline) -> Path:
        """Save ``pipeline`` as ``version``; returns the artifact path.

        Versions are immutable: publishing an existing version raises
        :class:`RegistryError` instead of overwriting files a live
        replica may currently be serving from.
        """
        self._check_version_name(version)
        directory = self.root / version
        if (directory / MANIFEST_NAME).exists():
            raise RegistryError(
                f"version {version!r} already exists in {self.root}; "
                "registry versions are immutable -- publish a new version")
        from repro.model.persistence import file_digest, save_pipeline

        directory.mkdir(parents=True, exist_ok=True)
        artifact = directory / ARTIFACT_NAME
        # np.savez appends ".npz" to names missing it, so the staging
        # name must already end with the suffix for replace() to see
        # the actual file written.
        staging = directory / ("staging." + ARTIFACT_NAME)
        save_pipeline(pipeline, staging)
        digest = file_digest(staging)
        staging.replace(artifact)
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "version": version,
            "artifact": ARTIFACT_NAME,
            "sha256": digest,
            "model_fingerprint": pipeline.model.fingerprint(),
        }
        manifest_staging = directory / (MANIFEST_NAME + ".tmp")
        manifest_staging.write_text(json.dumps(manifest, indent=2) + "\n",
                                    encoding="utf-8")
        manifest_staging.replace(directory / MANIFEST_NAME)
        return artifact

    # -- loading -------------------------------------------------------

    def load(self, version: str) -> StressChainPipeline:
        """Reconstruct the pipeline published as ``version``.

        Raises
        ------
        RegistryError
            Unknown version, unreadable manifest, or an artifact whose
            bytes no longer match the published digest.
        """
        from repro.model.persistence import load_pipeline

        return load_pipeline(self.verified_artifact(version))

    def verified_artifact(self, version: str) -> Path:
        """The artifact path of ``version`` after an integrity check.

        Fork-process replicas ship this *path* to the child instead of
        pickling model weights across the pipe; the child re-loads the
        archive itself.
        """
        from repro.model.persistence import file_digest

        manifest = self.manifest(version)
        artifact = self.root / version / manifest["artifact"]
        if not artifact.exists():
            raise RegistryError(
                f"version {version!r} manifest names a missing artifact "
                f"{manifest['artifact']!r}")
        digest = file_digest(artifact)
        if digest != manifest["sha256"]:
            raise RegistryError(
                f"artifact for version {version!r} fails its integrity "
                f"check (recorded {manifest['sha256'][:12]}..., "
                f"found {digest[:12]}...); refusing to load")
        return artifact

    def manifest(self, version: str) -> dict:
        """The parsed manifest of ``version``."""
        self._check_version_name(version)
        path = self.root / version / MANIFEST_NAME
        if not path.exists():
            raise RegistryError(
                f"unknown version {version!r} in registry {self.root} "
                f"(known: {self.versions() or 'none'})")
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as exc:
            raise RegistryError(
                f"manifest for version {version!r} is unreadable: {exc}"
            ) from exc
        if (not isinstance(manifest, dict)
                or manifest.get("manifest_version") != MANIFEST_VERSION
                or "sha256" not in manifest or "artifact" not in manifest):
            raise RegistryError(
                f"manifest for version {version!r} has an unsupported "
                "layout; re-publish the version")
        return manifest

    # -- enumeration ---------------------------------------------------

    def versions(self) -> list[str]:
        """Published versions in natural order (``v2`` < ``v10``)."""
        if not self.root.exists():
            return []
        found = [
            entry.name for entry in self.root.iterdir()
            if entry.is_dir() and (entry / MANIFEST_NAME).exists()
        ]
        return sorted(found, key=_natural_key)

    def latest(self) -> str | None:
        """The naturally-last published version, or ``None``."""
        versions = self.versions()
        return versions[-1] if versions else None

    def has(self, version: str) -> bool:
        return (self.root / version / MANIFEST_NAME).exists()

    # ------------------------------------------------------------------

    @staticmethod
    def _check_version_name(version: str) -> None:
        if not _VERSION_RE.match(version):
            raise RegistryError(
                f"bad version name {version!r}: use letters, digits, "
                "dots, underscores, and dashes (leading alphanumeric)")
