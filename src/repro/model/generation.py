"""Sampling utilities for structured generation.

Description generation samples an AU subset from independent Bernoulli
heads; rationale generation samples an AU *ordering* from a
Plackett-Luce distribution over attribution scores.  Both admit exact
log-probabilities, which is what makes the DPO losses in
:mod:`repro.training.losses` real optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GenerationError
from repro.nn.tensorops import log_sigmoid, softmax


@dataclass(frozen=True, slots=True)
class GenerationConfig:
    """Sampling knobs.

    ``temperature = 0`` is greedy decoding; larger values flatten the
    per-AU Bernoulli probabilities / Plackett-Luce scores.  ``seed``
    scopes the draw -- the paper's "prompt the model K times with
    different random seeds" is K configs with distinct seeds.
    """

    temperature: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.temperature < 0:
            raise GenerationError("temperature must be non-negative")


#: Shared greedy-decoding config.  :class:`GenerationConfig` is frozen,
#: so one instance serves every call site that would otherwise build a
#: fresh ``GenerationConfig(temperature=0.0)`` inside a hot loop.
GREEDY = GenerationConfig(temperature=0.0)


def sample_bernoulli_set(logits: np.ndarray,
                         config: GenerationConfig) -> np.ndarray:
    """Sample a binary vector from per-element Bernoulli(sigmoid(logit)).

    Greedy decoding (temperature 0) thresholds the logits at zero.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if config.temperature == 0.0:
        return (logits > 0).astype(np.float64)
    rng = np.random.default_rng(config.seed)
    probs = 1.0 / (1.0 + np.exp(-logits / config.temperature))
    return (rng.random(logits.shape) < probs).astype(np.float64)


def bernoulli_set_logprob(logits: np.ndarray, outcome: np.ndarray) -> float:
    """Exact log-probability of a binary ``outcome`` under the heads
    (at temperature 1, which is the model's true distribution)."""
    logits = np.asarray(logits, dtype=np.float64)
    outcome = np.asarray(outcome, dtype=np.float64)
    if logits.shape != outcome.shape:
        raise GenerationError("logits and outcome shapes differ")
    return float(
        (outcome * log_sigmoid(logits)
         + (1.0 - outcome) * log_sigmoid(-logits)).sum()
    )


def sample_plackett_luce(scores: np.ndarray, config: GenerationConfig,
                         top_k: int | None = None) -> tuple[int, ...]:
    """Sample an ordering (or top-k prefix) of indices via Plackett-Luce.

    Uses the Gumbel-max construction: perturb scores with Gumbel noise
    and sort.  Greedy decoding sorts the raw scores.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise GenerationError("scores must be a vector")
    if scores.size == 0:
        return ()
    if config.temperature == 0.0:
        order = np.argsort(-scores, kind="stable")
    else:
        rng = np.random.default_rng(config.seed)
        gumbel = -np.log(-np.log(rng.random(scores.shape)))
        order = np.argsort(-(scores / config.temperature + gumbel),
                           kind="stable")
    if top_k is not None:
        order = order[:top_k]
    return tuple(int(i) for i in order)


def plackett_luce_logprob(scores: np.ndarray,
                          ordering: tuple[int, ...]) -> float:
    """Exact log-probability of a (possibly partial) ordering under
    Plackett-Luce at temperature 1.

    Tracks the not-yet-chosen items with a boolean mask instead of a
    Python list, so each step costs one vectorized pass rather than the
    ``list.index``/``list.remove`` scans of the naive implementation.
    The masked view preserves ascending index order, so the per-step
    softmax sees exactly the arrays the list version would -- the
    result is numerically identical.
    """
    scores = np.asarray(scores, dtype=np.float64)
    alive = np.ones(scores.size, dtype=bool)
    total = 0.0
    for index in ordering:
        if not 0 <= index < scores.size or not alive[index]:
            raise GenerationError(
                f"index {index} repeated or out of range in ordering"
            )
        weights = softmax(scores[alive])
        position = int(np.count_nonzero(alive[:index]))
        total += float(np.log(weights[position] + 1e-300))
        alive[index] = False
    return total


def plackett_luce_logprob_grad(scores: np.ndarray,
                               ordering: tuple[int, ...]) -> np.ndarray:
    """Gradient of :func:`plackett_luce_logprob` w.r.t. the scores."""
    scores = np.asarray(scores, dtype=np.float64)
    grad = np.zeros_like(scores)
    alive = np.ones(scores.size, dtype=bool)
    for index in ordering:
        if not 0 <= index < scores.size or not alive[index]:
            raise GenerationError(
                f"index {index} repeated or out of range in ordering"
            )
        grad[alive] -= softmax(scores[alive])
        grad[index] += 1.0
        alive[index] = False
    return grad
