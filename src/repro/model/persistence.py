"""Persisting trained models and pipelines.

A trained :class:`~repro.model.foundation.FoundationModel` is its
parameter arrays plus two architecture integers; a pipeline adds a few
inference options.  Everything round-trips through a single ``.npz``
archive so a trained detector can be shipped and reloaded without any
pickle security surface.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.cot.chain import StressChainPipeline
from repro.errors import ModelError
from repro.model.foundation import FoundationModel
from repro.reliability.faults import fault_point
from repro.rng import make_rng

#: Archive format version (bump on layout changes).
FORMAT_VERSION: int = 1


def file_digest(path: str | Path) -> str:
    """Streaming SHA-256 hex digest of an artifact file.

    The model registry records this at publish time and re-checks it at
    load time, so a truncated or bit-flipped archive is refused instead
    of silently deserialized into wrong weights.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def save_model(model: FoundationModel, path: str | Path) -> None:
    """Save a model's parameters and architecture to ``path``."""
    fault_point("persistence.io")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {f"param/{k}": v for k, v in model.state_dict().items()}
    payload["meta/version"] = np.array(FORMAT_VERSION)
    payload["meta/embed_dim"] = np.array(model.embed_dim)
    payload["meta/grid"] = np.array(model.grid)
    payload["meta/frozen"] = np.array(int(model.frozen))
    np.savez_compressed(path, **payload)


def load_model(path: str | Path) -> FoundationModel:
    """Reconstruct a model saved by :func:`save_model`."""
    fault_point("persistence.io")
    path = Path(path)
    with np.load(path) as archive:
        names = set(archive.files)
        if "meta/version" not in names:
            raise ModelError(f"{path} is not a saved FoundationModel")
        version = int(archive["meta/version"])
        if version != FORMAT_VERSION:
            raise ModelError(
                f"unsupported model format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        embed_dim = int(archive["meta/embed_dim"])
        grid = int(archive["meta/grid"])
        state = {
            name[len("param/"):]: archive[name]
            for name in names if name.startswith("param/")
        }
        frozen = bool(int(archive["meta/frozen"]))
    model = FoundationModel(make_rng(0, "load-model"), embed_dim=embed_dim,
                            grid=grid)
    model.load_state_dict(state)
    model.frozen = frozen
    return model


def save_pipeline(pipeline: StressChainPipeline, path: str | Path) -> None:
    """Save a pipeline's model + inference options.

    Retrievers and verification pools are dataset-bound and are not
    persisted; re-attach them after loading if needed.
    """
    fault_point("persistence.io")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        f"param/{k}": v for k, v in pipeline.model.state_dict().items()
    }
    payload["meta/version"] = np.array(FORMAT_VERSION)
    payload["meta/embed_dim"] = np.array(pipeline.model.embed_dim)
    payload["meta/grid"] = np.array(pipeline.model.grid)
    payload["meta/frozen"] = np.array(int(pipeline.model.frozen))
    payload["pipeline/use_chain"] = np.array(int(pipeline.use_chain))
    payload["pipeline/seed"] = np.array(pipeline.seed)
    np.savez_compressed(path, **payload)


def load_pipeline(path: str | Path) -> StressChainPipeline:
    """Reconstruct a pipeline saved by :func:`save_pipeline`."""
    model = load_model(path)
    with np.load(Path(path)) as archive:
        if "pipeline/use_chain" not in archive.files:
            raise ModelError(f"{path} holds a bare model, not a pipeline")
        use_chain = bool(int(archive["pipeline/use_chain"]))
        seed = int(archive["pipeline/seed"])
    return StressChainPipeline(model, use_chain=use_chain, seed=seed)
