"""Instruction objects for the reasoning chain.

The paper drives its model with three chain instructions (``I1`` =
Describe, ``I2`` = Assess, ``I3`` = Highlight) plus the self-reflection
prompts of Figures 3 and 5 and the self-verification prompt of
Figure 4.  An :class:`Instruction` couples the natural-language prompt
(kept verbatim for interpretability of transcripts) with a stable key
the simulator dispatches on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Instruction:
    """A named instruction with its natural-language prompt."""

    key: str
    prompt: str

    def __str__(self) -> str:
        return self.prompt


DESCRIBE_INSTRUCTION = Instruction(
    "describe",
    "Please watch the video and describe the subject's facial "
    "expressions, covering the movements of the eyebrows, eyelids, "
    "cheeks, nose, lips, chin and jaw.",
)

ASSESS_INSTRUCTION = Instruction(
    "assess",
    "Based on the video and the facial expressions described above, "
    "is the subject under stress? Answer Stressed or Unstressed.",
)

HIGHLIGHT_INSTRUCTION = Instruction(
    "highlight",
    "Which of the described facial expressions most influenced your "
    "stress assessment? List the critical expressions in order of "
    "importance.",
)

DIRECT_ASSESS_INSTRUCTION = Instruction(
    "direct_assess",
    "Is the subject in this video stressed? Yes or No?",
)

REFLECT_DESCRIPTION_INSTRUCTION = Instruction(
    "reflect_description",
    "The subject in the video is actually {label}. Reflect on your "
    "previous description of the facial expressions: did you miss or "
    "misreport any facial action? Watch the video again carefully and "
    "provide an improved description.",
)

REFLECT_RATIONALE_INSTRUCTION = Instruction(
    "reflect_rationale",
    "Do the facial expressions you highlighted really matter to your "
    "assessment? Reflect on your rationale and provide a different "
    "ordering of the critical expressions, faithfully reporting what "
    "influenced your decision.",
)

VERIFY_INSTRUCTION = Instruction(
    "verify",
    "Here are {num_candidates} videos. The following description was "
    "written about exactly one of them:\n{description}\nWhich video "
    "does the description refer to? Answer with the video index.",
)

#: All instructions, keyed for lookup.
ALL_INSTRUCTIONS: dict[str, Instruction] = {
    inst.key: inst
    for inst in (
        DESCRIBE_INSTRUCTION,
        ASSESS_INSTRUCTION,
        HIGHLIGHT_INSTRUCTION,
        DIRECT_ASSESS_INSTRUCTION,
        REFLECT_DESCRIPTION_INSTRUCTION,
        REFLECT_RATIONALE_INSTRUCTION,
        VERIFY_INSTRUCTION,
    )
}
