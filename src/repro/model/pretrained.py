"""Frozen "off-the-shelf" foundation-model proxies.

The paper queries GPT-4o, Claude-3.5 Sonnet and Gemini-1.5 Pro through
their APIs, without any task training.  The proxies here reproduce
that setting: each vendor is a :class:`FoundationModel` *pre-trained on
a generic synthetic emotion corpus* -- broad world knowledge about
facial actions and their link to stress, but never the target datasets
-- then frozen.  Vendors differ in pre-training budget (capability) and
a deterministic per-query logit noise (API-grade variability), which
yields the paper's zero-shot ordering GPT-4o > Claude-3.5 ~ Gemini-1.5,
well below every supervised method.

Because the proxies are frozen, the Table VIII protocol (chain
reasoning + *test-time* self-refinement, no weight updates) applies to
them exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ModelError
from repro.facs.stress_priors import default_stress_prior
from repro.model.foundation import FoundationModel
from repro.nn.optim import Adam
from repro.nn.tensorops import binary_cross_entropy_with_logits
from repro.rng import derive_seed, make_rng
from repro.video.frame import Video


@dataclass(frozen=True)
class VendorProfile:
    """Capability profile of one API vendor."""

    name: str
    au_corpus_size: int        # generic facial-action pre-training budget
    stress_corpus_size: int    # generic stress-knowledge budget
    assess_noise: float        # per-query stress-logit noise
    describe_noise: float      # per-query AU-logit noise


_VENDORS: dict[str, VendorProfile] = {
    "gpt-4o": VendorProfile("gpt-4o", 2400, 1000, 1.7, 1.1),
    "claude-3.5": VendorProfile("claude-3.5", 1200, 600, 1.9, 1.5),
    "gemini-1.5": VendorProfile("gemini-1.5", 1000, 550, 1.85, 1.55),
}


def available_vendors() -> tuple[str, ...]:
    """Vendor keys accepted by :func:`load_offtheshelf`."""
    return tuple(_VENDORS)


class OffTheShelfModel(FoundationModel):
    """A frozen vendor proxy.

    Inference adds deterministic per-(vendor, video) logit noise so
    repeated evaluation is reproducible while capturing the capability
    gap to a supervised model.  All training entry points raise.
    """

    def __init__(self, profile: VendorProfile, seed: int):
        rng = make_rng(seed, f"offtheshelf:{profile.name}")
        super().__init__(rng)
        self.profile = profile
        self._noise_seed = derive_seed(seed, f"noise:{profile.name}")

    def _query_noise(self, kind: str, video: Video, size: int,
                     query_seed: int = 0) -> np.ndarray:
        scope = f"{kind}:{video.video_id}:{video.spec.seed}:{query_seed}"
        return make_rng(self._noise_seed, scope).standard_normal(size)

    def au_logits(self, video: Video) -> np.ndarray:
        logits = super().au_logits(video)
        noise = self._query_noise("describe", video, logits.size)
        return logits + self.profile.describe_noise * noise

    def describe(self, video: Video, config=None, session=None):
        """Each API query re-draws its noise: re-asking an off-the-shelf
        model to describe the same video yields a differently-wrong
        answer, which is exactly what the paper's test-time
        self-refinement exploits (repeated reflection + verification
        averages the noise out)."""
        from repro.facs.descriptions import FacialDescription
        from repro.model.generation import GenerationConfig, sample_bernoulli_set
        from repro.model.instructions import DESCRIBE_INSTRUCTION

        config = config or GenerationConfig()
        logits = FoundationModel.au_logits(self, video)
        logits = logits + self.profile.describe_noise * self._query_noise(
            "describe", video, logits.size, query_seed=config.seed
        )
        outcome = sample_bernoulli_set(logits, config)
        description = FacialDescription.from_vector(outcome)
        if session is not None:
            session.record(DESCRIBE_INSTRUCTION, description.render())
        return description

    def reflect_description(self, video: Video, previous, config,
                            true_label=None, session=None):
        """Reflection re-queries the API: fresh noise per reflection
        round, decoded at the careful (lower) reflection temperature."""
        from repro.facs.descriptions import FacialDescription
        from repro.model.foundation import (
            _REFLECT_LABEL_GAIN,
            _REFLECT_TEMPERATURE,
            STRESSED,
        )
        from repro.model.generation import GenerationConfig, sample_bernoulli_set

        logits = FoundationModel.au_logits(self, video)
        logits = logits + self.profile.describe_noise * self._query_noise(
            "describe", video, logits.size, query_seed=config.seed
        )
        if true_label is not None:
            direction = 1.0 if true_label == STRESSED else -1.0
            logits = logits + (_REFLECT_LABEL_GAIN * direction
                               * self.assess_au_weights())
        reflect_config = GenerationConfig(
            temperature=_REFLECT_TEMPERATURE * max(config.temperature, 0.1),
            seed=config.seed,
        )
        return FacialDescription.from_vector(
            sample_bernoulli_set(logits, reflect_config)
        )

    def assess_logit(self, video, description) -> float:
        logit = super().assess_logit(video, description)
        noise = float(self._query_noise("assess", video, 1)[0])
        return logit + self.profile.assess_noise * noise


def _fit_describe(model: FoundationModel, videos: list[Video],
                  targets: np.ndarray, epochs: int = 120,
                  lr: float = 1e-2) -> None:
    """Plain BCE fit of trunk + AU heads (generic pre-training)."""
    optimizer = Adam(model.trunk.parameters() + model.au_head.parameters(),
                     lr=lr)
    features = model.features_matrix(videos)
    for _ in range(epochs):
        optimizer.zero_grad()
        logits = model.au_logits_batch(features)
        __, grad = binary_cross_entropy_with_logits(logits, targets)
        model.backward_description_batch(grad)
        optimizer.step()


def _fit_assess(model: FoundationModel, videos: list[Video],
                descriptions: list, labels: np.ndarray,
                epochs: int = 150, lr: float = 1e-2) -> None:
    """BCE fit of the assessment head on (V, E?, A) triples.

    Most triples carry a description -- a language model's stress
    knowledge is anchored in verbal descriptions of behaviour -- so
    the chain pathway is the proxy's strong mode and the direct
    "Is the subject stressed?" query (its Table I protocol) is the
    weaker, out-of-habit mode, as the paper observes.
    """
    optimizer = Adam(model.assess_head.parameters(), lr=lr)
    features = model.features_matrix(videos)
    desc_vectors = np.stack([
        descriptions[i].to_vector() if i % 10 < 7
        else np.zeros(len(descriptions[i].to_vector()))
        for i in range(len(descriptions))
    ])
    for _ in range(epochs):
        optimizer.zero_grad()
        logits = model.assess_logits_batch(features, desc_vectors)
        __, grad = binary_cross_entropy_with_logits(logits, labels)
        model.backward_assess_batch(grad)
        optimizer.step()


@lru_cache(maxsize=8)
def load_offtheshelf(vendor: str, seed: int = 0) -> OffTheShelfModel:
    """Build (pre-train and freeze) the proxy for ``vendor``.

    The result is cached per (vendor, seed): construction performs the
    generic pre-training, which takes a few seconds.
    """
    if vendor not in _VENDORS:
        raise ModelError(
            f"unknown vendor {vendor!r}; available: {available_vendors()}"
        )
    profile = _VENDORS[vendor]
    model = OffTheShelfModel(profile, seed)

    # Generic facial-action corpus (DISFA-like, different world slice).
    from repro.datasets.disfa import generate_disfa

    au_corpus = generate_disfa(
        seed=derive_seed(seed, f"au-corpus:{vendor}"),
        num_samples=min(profile.au_corpus_size, 2000),
        num_subjects=40,
    )
    _fit_describe(model, [s.video for s in au_corpus],
                  np.stack([s.true_aus for s in au_corpus]))

    # Generic stress-knowledge corpus: weakly-coupled prior (textbook
    # knowledge, not dataset-specific statistics).
    from repro.datasets.synth import SynthesisConfig, records_to_samples, synthesize_dataset

    config = SynthesisConfig(
        name=f"web-{vendor}",
        num_samples=profile.stress_corpus_size,
        num_subjects=50,
        num_stressed=profile.stress_corpus_size // 2,
        prior=default_stress_prior(coupling=1.2),
        label_noise=0.10,
        noise_scale=0.03,
    )
    corpus = records_to_samples(
        synthesize_dataset(config, derive_seed(seed, f"stress-corpus:{vendor}"))
    )
    _fit_assess(
        model,
        [s.video for s in corpus],
        [s.true_description() for s in corpus],
        np.array([s.label for s in corpus], dtype=np.float64),
    )
    model.frozen = True
    return model
