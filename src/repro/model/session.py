"""Dialogue sessions and the fresh-session rule.

Section III-C: "the self-verification is started in another dialogue
session, in which the model cannot 'cheat' by reading dialogue
history."  A :class:`DialogueSession` records every (instruction,
response) turn; operations that must not see history (verification)
declare it by calling :meth:`DialogueSession.require_fresh`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.model.instructions import Instruction


@dataclass(frozen=True, slots=True)
class Turn:
    """One instruction/response exchange."""

    instruction: Instruction
    response: str


@dataclass
class DialogueSession:
    """An append-only dialogue transcript."""

    turns: list[Turn] = field(default_factory=list)

    def record(self, instruction: Instruction, response: str) -> None:
        self.turns.append(Turn(instruction, response))

    def __len__(self) -> int:
        return len(self.turns)

    @property
    def is_fresh(self) -> bool:
        return not self.turns

    def require_fresh(self, operation: str) -> None:
        """Raise unless the session has no history.

        Enforces the paper's no-cheating rule for self-verification.
        """
        if self.turns:
            raise ModelError(
                f"{operation} must run in a fresh dialogue session, but this "
                f"session already has {len(self.turns)} turn(s)"
            )

    def transcript(self) -> str:
        """Human-readable transcript of the session."""
        blocks = []
        for turn in self.turns:
            blocks.append(f"[user] {turn.instruction.prompt}")
            blocks.append(f"[model] {turn.response}")
        return "\n".join(blocks)
