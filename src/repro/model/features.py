"""Pixel feature extraction for the foundation model.

The model's visual input is the keyframe pair ``(f_e, f_l)`` (most and
least expressive frame, Section IV-H).  Features are patch means over
both the expressive frame and the frame *difference* -- the difference
cancels identity/lighting and isolates expression evidence, mirroring
what the first convolutional stages of a video encoder learn.  The map
from patches to the model's embedding is learned, so this module only
performs the fixed patchification.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

#: Patch grid side; a 96x96 frame becomes a 12x12 grid of 8x8 patches.
PATCH_GRID: int = 12


def patch_means(frame: np.ndarray, grid: int = PATCH_GRID) -> np.ndarray:
    """Mean intensity of each patch, flattened to ``(grid*grid,)``."""
    frame = np.asarray(frame, dtype=np.float64)
    if frame.ndim != 2:
        raise ModelError(f"expected 2-D frame, got shape {frame.shape}")
    height, width = frame.shape
    if height % grid or width % grid:
        raise ModelError(
            f"frame shape {frame.shape} not divisible into a {grid}x{grid} grid"
        )
    ph, pw = height // grid, width // grid
    patches = frame.reshape(grid, ph, grid, pw)
    return patches.mean(axis=(1, 3)).ravel()


#: Affine rescaling applied to patch means so the learned trunk sees
#: roughly unit-scale inputs (patch means live in a narrow band around
#: mid-gray; the AU-driven variation is a fraction of that).
_FEATURE_GAIN: float = 4.0


def keyframe_features(expressive: np.ndarray, neutral: np.ndarray,
                      grid: int = PATCH_GRID) -> np.ndarray:
    """Feature vector for a keyframe pair: rescaled patch means of
    ``f_e`` and of the difference ``f_e - f_l``, concatenated."""
    if expressive.shape != neutral.shape:
        raise ModelError("keyframes must have identical shapes")
    expressive_means = patch_means(expressive, grid)
    neutral_means = patch_means(neutral, grid)
    return np.concatenate([
        (expressive_means - 0.5) * _FEATURE_GAIN,
        (expressive_means - neutral_means) * _FEATURE_GAIN,
    ])


def patch_means_batch(frames: np.ndarray,
                      grid: int = PATCH_GRID) -> np.ndarray:
    """Per-frame patch means for a ``(N, H, W)`` frame stack.

    One reshape-and-reduce over the whole stack; row ``i`` equals
    ``patch_means(frames[i], grid)``.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 3:
        raise ModelError(
            f"expected a (N, H, W) frame stack, got shape {frames.shape}"
        )
    num, height, width = frames.shape
    if height % grid or width % grid:
        raise ModelError(
            f"frame shape {frames.shape[1:]} not divisible into a "
            f"{grid}x{grid} grid"
        )
    ph, pw = height // grid, width // grid
    patches = frames.reshape(num, grid, ph, grid, pw)
    return patches.mean(axis=(2, 4)).reshape(num, grid * grid)


def keyframe_features_batch(expressive: np.ndarray, neutral: np.ndarray,
                            grid: int = PATCH_GRID) -> np.ndarray:
    """Feature matrix for a stack of (possibly perturbed) expressive
    frames against one clean neutral frame, shape ``(N, feature_dim)``.

    Row ``i`` equals ``keyframe_features(expressive[i], neutral, grid)``;
    this is the vectorized entry point the batched prediction engine
    uses to score hundreds of perturbations in one NumPy pass.
    """
    expressive = np.asarray(expressive, dtype=np.float64)
    if expressive.ndim != 3:
        raise ModelError(
            f"expected a (N, H, W) frame stack, got shape {expressive.shape}"
        )
    if expressive.shape[1:] != neutral.shape:
        raise ModelError("keyframes must have identical shapes")
    expressive_means = patch_means_batch(expressive, grid)
    neutral_means = patch_means(neutral, grid)
    return np.concatenate([
        (expressive_means - 0.5) * _FEATURE_GAIN,
        (expressive_means - neutral_means[np.newaxis, :]) * _FEATURE_GAIN,
    ], axis=1)


def feature_dim(grid: int = PATCH_GRID) -> int:
    """Dimensionality of :func:`keyframe_features` output."""
    return 2 * grid * grid


def video_features(video, grid: int = PATCH_GRID) -> np.ndarray:
    """Convenience: features of a :class:`~repro.video.frame.Video`."""
    expressive, neutral = video.keyframes
    return keyframe_features(expressive, neutral, grid)
