"""The trainable vision-language foundation-model simulator.

:class:`FoundationModel` plays the role of the paper's fine-tuned
Qwen-VL.  Architecture:

- a learned *trunk* maps keyframe-pair patch features to an embedding;
- per-AU Bernoulli *description heads* define the distribution the
  Describe step samples from (structured generation: an AU set is the
  description, rendered to text by the FACS templates) -- with exact
  log-probabilities, so instruction tuning and DPO are real;
- an *assessment head* scores Stressed/Unstressed from the embedding
  plus the described AU vector (``p_F(A | V, E, I2)``);
- a *highlight head* scores each described AU; rationales are sampled
  from a Plackett-Luce distribution over those scores, again with
  exact log-probabilities for DPO;
- *verification* reuses the description heads: the candidate video
  whose AU posterior best explains a description wins (Figure 4).

Training contract: every ``*_forward`` method must be immediately
followed by its matching ``backward_*`` call (layers cache one forward
activation), which is how all trainers in :mod:`repro.training` use it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.facs.action_units import AU_IDS, NUM_AUS, au_index
from repro.facs.descriptions import FacialDescription
from repro.model.features import (
    feature_dim,
    keyframe_features,
    keyframe_features_batch,
    video_features,
)
from repro.model.generation import (
    GREEDY,
    GenerationConfig,
    bernoulli_set_logprob,
    plackett_luce_logprob,
    plackett_luce_logprob_grad,
    sample_bernoulli_set,
    sample_plackett_luce,
)
from repro.model.instructions import (
    ASSESS_INSTRUCTION,
    DESCRIBE_INSTRUCTION,
    DIRECT_ASSESS_INSTRUCTION,
    HIGHLIGHT_INSTRUCTION,
    REFLECT_DESCRIPTION_INSTRUCTION,
    VERIFY_INSTRUCTION,
)
from repro.model.session import DialogueSession
from repro.nn.layers import Linear, Module, Parameter
from repro.observability import profiling
from repro.reliability.faults import fault_point
from repro.nn.tensorops import sigmoid
from repro.video.frame import Video

#: Labels the Assess step emits.
UNSTRESSED, STRESSED = 0, 1

#: How strongly reflection lets the ground-truth label steer the
#: description redraw (Section III-C, Figure 3).  Moderate: strong
#: enough that reflected candidates correct factual misses, weak
#: enough that the verification gate can reject label-leaky redraws
#: (overly strong guidance makes refinement hurt on the noisy RSL
#: regime).
_REFLECT_LABEL_GAIN: float = 0.7

#: Temperature of the reflective redraw -- lower than plain sampling,
#: modelling the "watch the video again carefully" re-read.
_REFLECT_TEMPERATURE: float = 0.55


class FoundationModel(Module):
    """Trainable stand-in for the paper's vision-language model.

    Parameters
    ----------
    rng:
        Initialisation randomness.
    embed_dim:
        Trunk embedding width.
    grid:
        Patch grid of the visual front-end (see
        :mod:`repro.model.features`).
    """

    def __init__(self, rng: np.random.Generator, embed_dim: int = 48,
                 grid: int = 12):
        self.embed_dim = embed_dim
        self.grid = grid
        self.trunk = Linear(feature_dim(grid), embed_dim, rng, name="trunk")
        self.au_head = Linear(embed_dim, NUM_AUS, rng, name="au_head")
        self.assess_head = Linear(embed_dim + NUM_AUS, 1, rng, name="assess_head")
        # Highlight pathway: initialised small so the introspective
        # component (the assessment head's own AU weights, see
        # highlight_scores) dominates the initial ranking; rationale
        # DPO then tunes the learned terms with causal flip evidence.
        self.highlight_proj = Linear(embed_dim, NUM_AUS, rng,
                                     name="highlight_proj")
        self.highlight_proj.weight.value *= 0.3
        self.highlight_bias = Parameter("highlight_bias",
                                        rng.normal(0.0, 0.12, NUM_AUS))
        self.highlight_assess = Parameter("highlight_assess",
                                          rng.normal(0.0, 0.12, NUM_AUS))
        self.frozen = False
        self._feature_cache: dict[tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Features / embedding
    # ------------------------------------------------------------------

    def features(self, video: Video) -> np.ndarray:
        """Patch features of a video's keyframe pair (cached: features
        are weight-independent).

        The cache key includes the render seed: two datasets generated
        with different root seeds reuse the same human-readable video
        ids, but their render seeds are globally unique.

        Thread-safety: concurrent callers may both miss and render the
        same video; ``setdefault`` keeps exactly one array in the cache
        so every caller observes the same object (the duplicate render
        is wasted work, never wrong results).
        """
        key = (video.video_id, video.spec.seed)
        cached = self._feature_cache.get(key)
        if cached is None:
            if profiling.enabled():
                profiling.count(profiling.FEATURE_CACHE_MISS)
            cached = self._feature_cache.setdefault(
                key, video_features(video, self.grid))
        elif profiling.enabled():
            profiling.count(profiling.FEATURE_CACHE_HIT)
        return cached

    def frame_pair_features(self, expressive: np.ndarray,
                            neutral: np.ndarray) -> np.ndarray:
        """Features of an explicit (possibly perturbed) keyframe pair."""
        return keyframe_features(expressive, neutral, self.grid)

    def _embed(self, features: np.ndarray) -> np.ndarray:
        return self.trunk.forward(features[np.newaxis, :])

    def embed_video(self, video: Video) -> np.ndarray:
        """Trunk embedding of a video's keyframe pair, shape (1, D).

        This is the shared state of the whole reasoning chain: the
        Describe, Assess, and Highlight heads all read the same
        embedding, so computing it once per request (the serving
        executor does) saves two of the three trunk passes a serial
        :meth:`~repro.cot.chain.StressChainPipeline.predict` performs
        -- bitwise-identically, because the per-head math is unchanged.
        """
        # The model.forward fault site: one check per trunk pass, the
        # unit of work every served request spends.
        fault_point("model.forward")
        if profiling.enabled():
            profiling.count(profiling.EMBED)
        return self._embed(self.features(video))

    # ------------------------------------------------------------------
    # Describe (instruction I1)
    # ------------------------------------------------------------------

    def au_logits_from_embed(self, embed: np.ndarray) -> np.ndarray:
        """Per-AU description logits from a precomputed embedding."""
        return self.au_head.forward(embed)[0]

    def au_logits(self, video: Video) -> np.ndarray:
        """Per-AU description logits, shape (12,)."""
        return self.au_logits_from_embed(self.embed_video(video))

    def describe(self, video: Video, config: GenerationConfig | None = None,
                 session: DialogueSession | None = None) -> FacialDescription:
        """Sample a facial-action description (the Describe step)."""
        config = config or GenerationConfig()
        outcome = sample_bernoulli_set(self.au_logits(video), config)
        description = FacialDescription.from_vector(outcome)
        if session is not None:
            session.record(DESCRIBE_INSTRUCTION, description.render())
        return description

    def description_logprob(self, video: Video,
                            description: FacialDescription) -> float:
        """Exact log p_F(E | V, I1)."""
        return bernoulli_set_logprob(self.au_logits(video),
                                     description.to_vector())

    def backward_description(self, grad_logits: np.ndarray) -> None:
        """Backprop a gradient w.r.t. the AU logits of the *last*
        ``au_logits``/``describe`` forward."""
        self._check_trainable()
        grad = self.au_head.backward(np.atleast_2d(grad_logits))
        self.trunk.backward(grad)

    def reflect_description(
        self,
        video: Video,
        previous: FacialDescription,
        config: GenerationConfig,
        true_label: int | None = None,
        session: DialogueSession | None = None,
    ) -> FacialDescription:
        """Self-reflection on a description (Figure 3).

        The redraw differs mechanically from plain resampling in two
        ways that give reflection its edge (Table V "w/o reflection"):
        it decodes at a lower temperature (a careful second look), and
        when the ground-truth label is available (training time) the
        per-AU logits are nudged along the assessment head's AU
        weights toward the true class -- "predict the stress level
        based on the ground truth".
        """
        logits = self.au_logits(video).copy()
        if true_label is not None:
            direction = 1.0 if true_label == STRESSED else -1.0
            logits += _REFLECT_LABEL_GAIN * direction * self.assess_au_weights()
        reflect_config = GenerationConfig(
            temperature=_REFLECT_TEMPERATURE * max(config.temperature, 0.1),
            seed=config.seed,
        )
        outcome = sample_bernoulli_set(logits, reflect_config)
        description = FacialDescription.from_vector(outcome)
        if session is not None:
            session.record(REFLECT_DESCRIPTION_INSTRUCTION, description.render())
        return description

    # ------------------------------------------------------------------
    # Assess (instruction I2)
    # ------------------------------------------------------------------

    def _assess_input_from_embed(
            self, embed: np.ndarray,
            description: FacialDescription | None) -> np.ndarray:
        desc_vec = (description.to_vector() if description is not None
                    else np.zeros(NUM_AUS))
        return np.concatenate([embed[0], desc_vec])[np.newaxis, :]

    def _assess_input(self, features: np.ndarray,
                      description: FacialDescription | None) -> np.ndarray:
        return self._assess_input_from_embed(self._embed(features),
                                             description)

    def assess_logit_from_embed(
            self, embed: np.ndarray,
            description: FacialDescription | None) -> float:
        """Raw stress logit from a precomputed embedding."""
        return float(
            self.assess_head.forward(
                self._assess_input_from_embed(embed, description)
            )[0, 0]
        )

    def assess_logit(self, video: Video,
                     description: FacialDescription | None) -> float:
        """Raw stress logit; ``description=None`` is the paper's
        "w/o Chain" direct query."""
        return self.assess_logit_from_embed(self.embed_video(video),
                                            description)

    def au_logits_from_frames(self, expressive: np.ndarray,
                              neutral: np.ndarray) -> np.ndarray:
        """Per-AU logits computed on an explicit keyframe pair."""
        features = self.frame_pair_features(expressive, neutral)
        return self.au_head.forward(self._embed(features))[0]

    def chain_prob_from_frames(self, expressive: np.ndarray,
                               neutral: np.ndarray) -> float:
        """Full-chain stress probability on an explicit keyframe pair:
        greedy-describe from the (possibly perturbed) frames, then
        assess conditioned on that description.

        This is the black-box function the post-hoc explainers and the
        deletion metric query -- perturbing the frame changes what the
        model "sees", hence what it describes, hence its assessment.
        """
        logits = self.au_logits_from_frames(expressive, neutral)
        description = FacialDescription.from_vector(
            (logits > 0).astype(np.float64)
        )
        logit = self.assess_logit_from_frames(expressive, neutral, description)
        return float(sigmoid(np.array(logit))[()])

    def assess_logit_from_frames(self, expressive: np.ndarray,
                                 neutral: np.ndarray,
                                 description: FacialDescription | None) -> float:
        """Stress logit on an explicit (perturbed) keyframe pair --
        the hook the deletion metric and post-hoc explainers use."""
        features = self.frame_pair_features(expressive, neutral)
        return float(
            self.assess_head.forward(self._assess_input(features, description))[0, 0]
        )

    def frame_pair_features_batch(self, expressive: np.ndarray,
                                  neutral: np.ndarray) -> np.ndarray:
        """Features of a ``(N, H, W)`` stack of (possibly perturbed)
        expressive frames against one clean neutral frame."""
        return keyframe_features_batch(expressive, neutral, self.grid)

    def au_logits_from_frames_batch(self, expressive: np.ndarray,
                                    neutral: np.ndarray) -> np.ndarray:
        """Per-AU logits for a stack of keyframe pairs, shape (N, 12)."""
        features = self.frame_pair_features_batch(expressive, neutral)
        return self.au_head.forward(self.trunk.forward(features))

    def assess_logit_from_frames_batch(
        self, expressive: np.ndarray, neutral: np.ndarray,
        descriptions: np.ndarray | list[FacialDescription | None] | None,
    ) -> np.ndarray:
        """Stress logits for a stack of keyframe pairs, shape (N,).

        ``descriptions`` is a per-frame description -- an ``(N, 12)``
        AU-vector matrix, a list of :class:`FacialDescription` (or
        ``None`` for the direct query), or ``None`` for all-direct.
        """
        features = self.frame_pair_features_batch(expressive, neutral)
        embed = self.trunk.forward(features)
        desc_matrix = _description_matrix(descriptions, len(embed))
        return self.assess_head.forward(
            np.concatenate([embed, desc_matrix], axis=1)
        )[:, 0]

    def chain_prob_from_frames_batch(self, expressive: np.ndarray,
                                     neutral: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`chain_prob_from_frames`: greedy-describe
        and assess a whole stack of perturbed frames in one NumPy pass.

        This is the batched engine behind the post-hoc explainers and
        the deletion metric -- feature extraction, the AU heads and the
        assessment head each run once over the stack instead of once
        per frame.  Returns stress probabilities, shape (N,).
        """
        features = self.frame_pair_features_batch(expressive, neutral)
        embed = self.trunk.forward(features)
        au_logits = self.au_head.forward(embed)
        desc_matrix = (au_logits > 0).astype(np.float64)
        logits = self.assess_head.forward(
            np.concatenate([embed, desc_matrix], axis=1)
        )[:, 0]
        return sigmoid(logits)

    def assess(self, video: Video, description: FacialDescription | None,
               config: GenerationConfig | None = None,
               session: DialogueSession | None = None) -> tuple[int, float]:
        """The Assess step: returns ``(label, p_stressed)``.

        Greedy decoding thresholds the probability at 0.5; positive
        temperature draws the label from the tempered Bernoulli, which
        is what the paper's K-seed helpfulness scoring repeats.
        """
        config = config or GREEDY
        logit = self.assess_logit(video, description)
        prob = float(sigmoid(np.array(logit))[()])
        if config.temperature == 0.0:
            label = STRESSED if logit > 0 else UNSTRESSED
        else:
            rng = np.random.default_rng(config.seed)
            tempered = float(sigmoid(np.array(logit / config.temperature))[()])
            label = STRESSED if rng.random() < tempered else UNSTRESSED
        if session is not None:
            instruction = (ASSESS_INSTRUCTION if description is not None
                           else DIRECT_ASSESS_INSTRUCTION)
            session.record(instruction,
                           "Stressed" if label == STRESSED else "Unstressed")
        return label, prob

    def backward_assess(self, grad_logit: float) -> None:
        """Backprop through the *last* assess forward."""
        self._check_trainable()
        grad = self.assess_head.backward(np.array([[grad_logit]]))
        self.trunk.backward(grad[:, : self.embed_dim])

    def assess_au_weights(self) -> np.ndarray:
        """The assessment head's weight on each described AU -- the
        model's *true* per-AU decision influence, shape (12,)."""
        return self.assess_head.weight.value[self.embed_dim:, 0].copy()

    def au_patch_sensitivity(self, au_id: int) -> np.ndarray:
        """Where the model *looks* when reading ``au_id``: the squared
        effective patch weights of that AU's describe pathway, folded
        over the two feature channels, shape ``(grid, grid)``.

        This is the simulator's analog of the attention map a VLM
        carries for a facial action, and is what grounds a highlighted
        action to frame segments (Section IV-H's landmark lookup).
        """
        effective = self.trunk.weight.value @ self.au_head.weight.value
        column = effective[:, au_index(au_id)]
        per_patch = column[: self.grid**2] ** 2 + column[self.grid**2:] ** 2
        return per_patch.reshape(self.grid, self.grid)

    # ------------------------------------------------------------------
    # Highlight (instruction I3)
    # ------------------------------------------------------------------

    def highlight_scores_from_embed(self, embed: np.ndarray,
                                    description: FacialDescription,
                                    assessment: int) -> np.ndarray:
        """:meth:`highlight_scores` from a precomputed embedding."""
        direction = 1.0 if assessment == STRESSED else -1.0
        scores = (self.highlight_proj.forward(embed)[0]
                  + self.highlight_bias.value
                  + direction * (self.highlight_assess.value
                                 + self.assess_au_weights()))
        masked = np.full(NUM_AUS, -np.inf)
        for au_id in description:
            idx = au_index(au_id)
            masked[idx] = scores[idx]
        return masked

    def highlight_scores(self, video: Video, description: FacialDescription,
                         assessment: int) -> np.ndarray:
        """Attribution score for each *described* AU (12-dim; silent
        AUs are ``-inf`` so they can never be highlighted).

        The score carries two assessment-signed components: the
        model's *introspected* decision influence (its own assessment
        head's AU weights, read as a constant feature -- the wiring
        that lets a model report what drove it) plus a learned
        correction ``highlight_assess`` that rationale DPO tunes with
        causal flip-count evidence.
        """
        return self.highlight_scores_from_embed(self.embed_video(video),
                                                description, assessment)

    def highlight_from_embed(self, embed: np.ndarray,
                             description: FacialDescription,
                             assessment: int,
                             config: GenerationConfig | None = None,
                             top_k: int | None = None,
                             session: DialogueSession | None = None,
                             ) -> tuple[int, ...]:
        """:meth:`highlight` from a precomputed embedding."""
        if assessment not in (STRESSED, UNSTRESSED):
            raise ModelError(f"assessment must be 0 or 1, got {assessment}")
        if not description.au_ids:
            return ()
        config = config or GREEDY
        active = [au_index(au_id) for au_id in description.au_ids]
        scores = self.highlight_scores_from_embed(
            embed, description, assessment)[active]
        ordering = sample_plackett_luce(scores, config, top_k=top_k)
        rationale = tuple(description.au_ids[i] for i in ordering)
        if session is not None:
            session.record(HIGHLIGHT_INSTRUCTION, _render_rationale(rationale))
        return rationale

    def highlight(self, video: Video, description: FacialDescription,
                  assessment: int,
                  config: GenerationConfig | None = None,
                  top_k: int | None = None,
                  session: DialogueSession | None = None) -> tuple[int, ...]:
        """The Highlight step: an importance-ordered tuple of AU ids.

        ``assessment`` is accepted for interface fidelity with
        ``p_F(R | A, E, V, I3)``; the score pathway conditions on the
        same video evidence that produced the assessment.
        """
        return self.highlight_from_embed(self.embed_video(video),
                                         description, assessment,
                                         config=config, top_k=top_k,
                                         session=session)

    def reflect_rationale(self, video: Video, description: FacialDescription,
                          assessment: int, config: GenerationConfig,
                          top_k: int | None = None,
                          session: DialogueSession | None = None) -> tuple[int, ...]:
        """Self-reflection on a rationale (Figure 5): "do the
        highlighted cues really matter to me?".

        Mechanically the reflective redraw augments the highlight
        scores with the model's *introspected* decision influence --
        the magnitude of each AU's weight in its own assessment head --
        before Plackett-Luce sampling.  This is what distinguishes
        reflection from plain resampling (the paper's "w/o reflection"
        ablation): the reflected candidates concentrate around AUs
        that truly drive the decision, so the best-of-n rationale is
        more faithful.
        """
        if not description.au_ids:
            return ()
        direction = 1.0 if assessment == STRESSED else -1.0
        active = [au_index(au_id) for au_id in description.au_ids]
        scores = self.highlight_scores(video, description, assessment)[active]
        # Introspected decision influence: the assessment head's weight
        # on each AU, signed by the emitted decision, so cues that
        # *support* the decision float to the top.
        introspection = direction * self.assess_au_weights()[active]
        scale = np.abs(scores).mean() + 1e-6
        intro_scale = np.abs(introspection).mean() + 1e-6
        reflected = scores + (scale / intro_scale) * introspection
        ordering = sample_plackett_luce(reflected, config, top_k=top_k)
        rationale = tuple(description.au_ids[i] for i in ordering)
        if session is not None:
            from repro.model.instructions import REFLECT_RATIONALE_INSTRUCTION

            session.record(REFLECT_RATIONALE_INSTRUCTION,
                           _render_rationale(rationale))
        return rationale

    def rationale_logprob(self, video: Video, description: FacialDescription,
                          rationale: tuple[int, ...],
                          assessment: int) -> float:
        """Exact log p_F(R | V, E, A, I3) under the Plackett-Luce
        highlight distribution."""
        active = list(description.au_ids)
        scores = self.highlight_scores(video, description, assessment)[
            [au_index(au_id) for au_id in active]
        ]
        ordering = tuple(active.index(au_id) for au_id in rationale)
        return plackett_luce_logprob(scores, ordering)

    def backward_rationale(self, video: Video, description: FacialDescription,
                           rationale: tuple[int, ...], assessment: int,
                           grad_scale: float) -> None:
        """Accumulate ``grad_scale * d logprob(R)/d params`` for the
        highlight pathway (re-runs its forward internally)."""
        self._check_trainable()
        direction = 1.0 if assessment == STRESSED else -1.0
        active = list(description.au_ids)
        active_idx = [au_index(au_id) for au_id in active]
        embed = self._embed(self.features(video))
        scores_full = (self.highlight_proj.forward(embed)[0]
                       + self.highlight_bias.value
                       + direction * (self.highlight_assess.value
                                      + self.assess_au_weights()))
        ordering = tuple(active.index(au_id) for au_id in rationale)
        grad_active = plackett_luce_logprob_grad(scores_full[active_idx],
                                                 ordering)
        grad_full = np.zeros(NUM_AUS)
        grad_full[active_idx] = grad_scale * grad_active
        self.highlight_bias.grad += grad_full
        self.highlight_assess.grad += direction * grad_full
        grad_embed = self.highlight_proj.backward(grad_full[np.newaxis, :])
        self.trunk.backward(grad_embed)

    # ------------------------------------------------------------------
    # Batched training hooks (used by repro.training)
    # ------------------------------------------------------------------

    def features_matrix(self, videos: list[Video]) -> np.ndarray:
        """Stacked features for a list of videos, shape (N, F)."""
        return np.stack([self.features(video) for video in videos])

    def au_logits_batch(self, features: np.ndarray) -> np.ndarray:
        """Per-AU logits for a feature matrix, shape (N, 12)."""
        return self.au_head.forward(self.trunk.forward(features))

    def backward_description_batch(self, grad_logits: np.ndarray) -> None:
        """Backprop through the last :meth:`au_logits_batch` call."""
        self._check_trainable()
        self.trunk.backward(self.au_head.backward(grad_logits))

    def assess_logits_batch(self, features: np.ndarray,
                            desc_vectors: np.ndarray) -> np.ndarray:
        """Stress logits for feature/description matrices, shape (N,)."""
        embed = self.trunk.forward(features)
        return self.assess_head.forward(
            np.concatenate([embed, desc_vectors], axis=1)
        )[:, 0]

    def backward_assess_batch(self, grad_logits: np.ndarray) -> None:
        """Backprop through the last :meth:`assess_logits_batch` call."""
        self._check_trainable()
        grad = self.assess_head.backward(grad_logits[:, np.newaxis])
        self.trunk.backward(grad[:, : self.embed_dim])

    # ------------------------------------------------------------------
    # Self-verification (Figure 4)
    # ------------------------------------------------------------------

    def verify(self, description: FacialDescription, videos: list[Video],
               config: GenerationConfig, session: DialogueSession) -> int:
        """Pick which of ``videos`` the description refers to.

        Must run in a fresh session (the paper's no-cheating rule).
        The match score of each candidate is the log-likelihood of the
        described AU set under that video's AU posterior; positive
        temperature adds Gumbel noise so repeated verification with
        different seeds measures confidence.
        """
        session.require_fresh("self-verification")
        if len(videos) < 2:
            raise ModelError("verification needs at least 2 candidate videos")
        desc_vec = description.to_vector()
        scores = np.array([
            bernoulli_set_logprob(self.au_logits(video), desc_vec)
            for video in videos
        ])
        if config.temperature == 0.0:
            choice = int(np.argmax(scores))
        else:
            rng = np.random.default_rng(config.seed)
            gumbel = -np.log(-np.log(rng.random(scores.shape)))
            choice = int(np.argmax(scores / config.temperature + gumbel))
        session.record(
            VERIFY_INSTRUCTION, f"Video {choice + 1}"
        )
        return choice

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def _check_trainable(self) -> None:
        if self.frozen:
            raise ModelError(
                "this model is frozen (off-the-shelf proxy); its parameters "
                "cannot be updated"
            )

    def clear_feature_cache(self) -> None:
        self._feature_cache.clear()

    def clone(self) -> "FoundationModel":
        """Deep copy (used for the frozen DPO reference model)."""
        clone = self.copy()
        clone._feature_cache = dict(self._feature_cache)
        return clone

    def fingerprint(self) -> str:
        """SHA-256 over the architecture and every parameter byte.

        Equal fingerprints imply the two models compute bitwise-equal
        forward passes; the registry and the replica pool use this to
        assert which weights a replica is actually serving.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(f"{self.embed_dim}:{self.grid}".encode())
        for name in sorted(state := self.state_dict()):
            value = np.ascontiguousarray(state[name], dtype=np.float64)
            digest.update(name.encode())
            digest.update(str(value.shape).encode())
            digest.update(value.tobytes())
        return digest.hexdigest()


def _description_matrix(
    descriptions: np.ndarray | list[FacialDescription | None] | None,
    num_rows: int,
) -> np.ndarray:
    """Normalise the per-frame description argument of the batched
    assess path to an ``(N, 12)`` AU-vector matrix."""
    if descriptions is None:
        return np.zeros((num_rows, NUM_AUS))
    if isinstance(descriptions, np.ndarray):
        if descriptions.shape != (num_rows, NUM_AUS):
            raise ModelError(
                f"description matrix must be ({num_rows}, {NUM_AUS}), "
                f"got {descriptions.shape}"
            )
        return descriptions.astype(np.float64, copy=False)
    if len(descriptions) != num_rows:
        raise ModelError(
            f"need one description per frame ({num_rows}), "
            f"got {len(descriptions)}"
        )
    if not descriptions:
        # np.stack rejects empty sequences; an empty batch is legal.
        return np.zeros((0, NUM_AUS))
    return np.stack([
        desc.to_vector() if desc is not None else np.zeros(NUM_AUS)
        for desc in descriptions
    ])


def _render_rationale(rationale: tuple[int, ...]) -> str:
    """Render a rationale AU ordering as text."""
    from repro.facs.action_units import au_by_id

    if not rationale:
        return "No single facial expression stands out."
    lines = [
        f"{rank + 1}. {au_by_id(au_id).region}: {au_by_id(au_id).phrase}"
        for rank, au_id in enumerate(rationale)
    ]
    return "The critical facial expressions are:\n" + "\n".join(lines)
