"""The vision-language foundation-model simulator.

:class:`~repro.model.foundation.FoundationModel` stands in for the
paper's fine-tuned Qwen-VL: it consumes a video's keyframe pair and an
instruction, and can *describe* facial actions (sampling a structured
description with exact log-probabilities), *assess* stress, *highlight*
a rationale, *verify* that a description matches a video, and *reflect*
on its previous outputs -- each corresponding to one of the paper's
instructions (:mod:`~repro.model.instructions`).  Dialogue state and
the fresh-session rule for self-verification live in
:mod:`~repro.model.session`; frozen "off-the-shelf" vendor proxies in
:mod:`~repro.model.pretrained`.
"""

from repro.model.foundation import FoundationModel
from repro.model.generation import GenerationConfig
from repro.model.instructions import (
    ASSESS_INSTRUCTION,
    DESCRIBE_INSTRUCTION,
    HIGHLIGHT_INSTRUCTION,
    Instruction,
    REFLECT_DESCRIPTION_INSTRUCTION,
    REFLECT_RATIONALE_INSTRUCTION,
    VERIFY_INSTRUCTION,
)
from repro.model.pretrained import available_vendors, load_offtheshelf
from repro.model.registry import ModelRegistry
from repro.model.session import DialogueSession

__all__ = [
    "ASSESS_INSTRUCTION",
    "DESCRIBE_INSTRUCTION",
    "DialogueSession",
    "FoundationModel",
    "GenerationConfig",
    "HIGHLIGHT_INSTRUCTION",
    "Instruction",
    "ModelRegistry",
    "REFLECT_DESCRIPTION_INSTRUCTION",
    "REFLECT_RATIONALE_INSTRUCTION",
    "VERIFY_INSTRUCTION",
    "available_vendors",
    "load_offtheshelf",
]
