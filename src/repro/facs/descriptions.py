"""Facial-action descriptions: AU sets rendered to and parsed from text.

The paper transforms DISFA+ action-unit labels into natural-language
descriptions of the form::

    The facial expressions can be listed below:
    -eyebrow: inner portions of the eyebrows raising
    -lid: upper lid raising
    -cheek: raised

and the foundation model both *generates* such descriptions (the
Describe step) and *consumes* them (the Assess and Highlight steps).
:class:`FacialDescription` is the structured form: an ordered set of
action units plus rendering (:meth:`FacialDescription.render`) and
parsing (:meth:`FacialDescription.parse`) that round-trip exactly.
Keeping generation structured is what gives the foundation-model
simulator exact token-level log-probabilities (see DESIGN.md).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GenerationError
from repro.facs.action_units import AU_IDS, NUM_AUS, au_by_id, au_index

HEADER = "The facial expressions can be listed below:"
NEUTRAL_LINE = "-face: neutral, no notable facial action"

_LINE_RE = re.compile(r"^-(?P<region>[a-z]+):\s*(?P<phrase>.+)$")


@dataclass(frozen=True)
class FacialDescription:
    """An immutable, ordered set of active action units.

    The canonical order is the AU vector-index order, so two
    descriptions with the same AU set are equal and render identically.
    """

    au_ids: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(self.au_ids), key=au_index))
        object.__setattr__(self, "au_ids", ordered)

    # -- constructors -------------------------------------------------

    @classmethod
    def from_vector(cls, vector: np.ndarray) -> "FacialDescription":
        """Build from a binary 12-dim AU activation vector."""
        vector = np.asarray(vector)
        if vector.shape != (NUM_AUS,):
            raise ValueError(
                f"AU vector must have shape ({NUM_AUS},), got {vector.shape}"
            )
        active = [AU_IDS[i] for i in range(NUM_AUS) if vector[i] > 0.5]
        return cls(tuple(active))

    @classmethod
    def parse(cls, text: str) -> "FacialDescription":
        """Parse a rendered description back into structured form.

        Raises
        ------
        GenerationError
            If the text does not follow the description grammar.
        """
        lines = [line.strip() for line in text.strip().splitlines() if line.strip()]
        if not lines or lines[0] != HEADER:
            raise GenerationError(
                f"description must start with {HEADER!r}; got {text[:60]!r}"
            )
        body = lines[1:]
        if body == [NEUTRAL_LINE]:
            return cls(())
        au_ids: list[int] = []
        for line in body:
            match = _LINE_RE.match(line)
            if match is None:
                raise GenerationError(f"unparsable description line {line!r}")
            key = (match.group("region"), match.group("phrase").strip())
            au_id = _PHRASE_TO_AU.get(key)
            if au_id is None:
                raise GenerationError(f"unknown facial action phrase {line!r}")
            au_ids.append(au_id)
        return cls(tuple(au_ids))

    # -- views ---------------------------------------------------------

    def to_vector(self) -> np.ndarray:
        """Return the binary 12-dim AU activation vector."""
        vector = np.zeros(NUM_AUS, dtype=np.float64)
        for au_id in self.au_ids:
            vector[au_index(au_id)] = 1.0
        return vector

    def render(self) -> str:
        """Render the natural-language description text."""
        if not self.au_ids:
            return f"{HEADER}\n{NEUTRAL_LINE}"
        lines = [HEADER]
        for au_id in self.au_ids:
            unit = au_by_id(au_id)
            lines.append(f"-{unit.region}: {unit.phrase}")
        return "\n".join(lines)

    def regions(self) -> tuple[str, ...]:
        """Facial regions touched by the described actions (no dupes)."""
        seen: list[str] = []
        for au_id in self.au_ids:
            region = au_by_id(au_id).region
            if region not in seen:
                seen.append(region)
        return tuple(seen)

    def __contains__(self, au_id: int) -> bool:
        return au_id in self.au_ids

    def __len__(self) -> int:
        return len(self.au_ids)

    def __iter__(self):
        return iter(self.au_ids)

    def hamming_distance(self, other: "FacialDescription") -> int:
        """Number of AUs on which the two descriptions disagree."""
        return int(np.abs(self.to_vector() - other.to_vector()).sum())


_PHRASE_TO_AU: dict[tuple[str, str], int] = {
    (au_by_id(au_id).region, au_by_id(au_id).phrase): au_id for au_id in AU_IDS
}
