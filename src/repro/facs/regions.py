"""Facial-region geometry on the synthetic 96x96 face canvas.

The paper grounds each highlighted facial-action description to a
spatial region of the most-expressive frame (e.g. eyebrows, lips,
cheek) so the region can be mosaicked when testing rationale
faithfulness (Section III-D) or perturbed by the deletion metric
(Section IV-H).  This module defines those regions as axis-aligned
boxes on the canonical frontal face layout produced by
:mod:`repro.video.face_synth`, and maps every action unit to the region
it deforms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.facs.action_units import au_by_id

#: Side length (pixels) of the canonical synthetic face frame.  The
#: paper resizes all frames to 96x96 before feeding the model.
FRAME_SIZE: int = 96


@dataclass(frozen=True, slots=True)
class FacialRegion:
    """An axis-aligned facial region on the canonical face layout.

    Coordinates follow numpy convention: ``rows`` index the vertical
    axis (0 = top of the frame) and ``cols`` the horizontal axis.
    ``row_stop``/``col_stop`` are exclusive, like Python slices.
    """

    key: str
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    def __post_init__(self) -> None:
        if not (0 <= self.row_start < self.row_stop <= FRAME_SIZE):
            raise ValueError(f"invalid row bounds for region {self.key!r}")
        if not (0 <= self.col_start < self.col_stop <= FRAME_SIZE):
            raise ValueError(f"invalid col bounds for region {self.key!r}")

    @property
    def center(self) -> tuple[float, float]:
        """(row, col) centre of the region."""
        return (
            (self.row_start + self.row_stop - 1) / 2.0,
            (self.col_start + self.col_stop - 1) / 2.0,
        )

    @property
    def area(self) -> int:
        """Number of pixels covered by the region."""
        return (self.row_stop - self.row_start) * (self.col_stop - self.col_start)

    def mask(self, frame_size: int = FRAME_SIZE) -> np.ndarray:
        """Return a boolean mask of shape ``(frame_size, frame_size)``.

        Region bounds are defined on the canonical 96x96 layout and are
        rescaled proportionally for other frame sizes.
        """
        scale = frame_size / FRAME_SIZE
        mask = np.zeros((frame_size, frame_size), dtype=bool)
        r0 = int(round(self.row_start * scale))
        r1 = max(r0 + 1, int(round(self.row_stop * scale)))
        c0 = int(round(self.col_start * scale))
        c1 = max(c0 + 1, int(round(self.col_stop * scale)))
        mask[r0:r1, c0:c1] = True
        return mask

    def contains(self, row: float, col: float) -> bool:
        """Whether the (row, col) point lies inside the region."""
        return (
            self.row_start <= row < self.row_stop
            and self.col_start <= col < self.col_stop
        )


# Canonical frontal-face layout.  The face occupies most of the frame:
# forehead/brows in the upper third, eyes below them, nose central,
# mouth in the lower third, chin and jaw at the bottom.  Regions are
# disjoint so attribution mass cannot leak between facial parts.
REGIONS: dict[str, FacialRegion] = {
    "eyebrow": FacialRegion("eyebrow", 18, 30, 16, 80),
    "lid": FacialRegion("lid", 30, 42, 16, 80),
    "cheek": FacialRegion("cheek", 42, 60, 8, 34),
    "nose": FacialRegion("nose", 42, 60, 38, 58),
    "lips": FacialRegion("lips", 62, 74, 28, 68),
    "chin": FacialRegion("chin", 74, 86, 34, 62),
    "jaw": FacialRegion("jaw", 74, 92, 10, 34),
}

REGION_KEYS: tuple[str, ...] = tuple(REGIONS)


def region_for_au(au_id: int) -> FacialRegion:
    """Return the facial region deformed by action unit ``au_id``."""
    return REGIONS[au_by_id(au_id).region]


def region_by_key(key: str) -> FacialRegion:
    """Return the region registered under ``key``.

    Raises
    ------
    KeyError
        If ``key`` is not a known facial region.
    """
    try:
        return REGIONS[key]
    except KeyError:
        raise KeyError(
            f"unknown facial region {key!r}; known regions: {REGION_KEYS}"
        ) from None
