"""Literature-grounded action-unit / stress association priors.

The synthetic UVSD and RSL datasets need a ground-truth link between a
subject's stress state and the facial actions they exhibit.  The paper
itself motivates this link ("the stress states can be predicted using
the occurrence of AUs", citing Viegas et al. 2018 and Giannakakis et
al. 2020).  We encode the associations those works (and the broader
FACS stress literature) report:

- stress raises the odds of AU4 (brow lowerer / frown), AU1+AU2
  (worry brows), AU5 (upper-lid tension), AU15 (lip-corner
  depressor), AU17 (chin raiser), AU20 (fear-like lip stretch) and
  AU9 (nose wrinkle / disgust);
- stress suppresses the Duchenne-smile pair AU6 (cheek raiser) and
  AU12 (lip-corner puller);
- AU25/AU26 (lips part / jaw drop) are weakly informative speech
  artefacts.

The prior is expressed as per-AU log-odds offsets applied to a base
activation rate, giving class-conditional Bernoulli activation
probabilities that the dataset generators sample from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.facs.action_units import AU_IDS, NUM_AUS, au_index

#: Per-AU log-odds shift applied when the subject is stressed.
#: Positive = more likely under stress, negative = less likely.
_STRESS_LOG_ODDS: dict[int, float] = {
    1: 1.1,    # inner brow raiser (worry)
    2: 0.8,    # outer brow raiser
    4: 1.8,    # brow lowerer (frown) -- strongest stress marker
    5: 1.0,    # upper lid raiser (tension / vigilance)
    6: -1.4,   # cheek raiser (Duchenne smile) -- suppressed
    9: 0.6,    # nose wrinkler
    12: -1.6,  # lip corner puller (smile) -- suppressed
    15: 1.2,   # lip corner depressor
    17: 0.9,   # chin raiser
    20: 1.3,   # lip stretcher (fear)
    25: 0.1,   # lips part (speech artefact)
    26: 0.15,  # jaw drop (speech artefact)
}

#: Base (unstressed) activation probability per AU.  Smiles and speech
#: artefacts are common at rest; tension AUs are rare.
_BASE_RATE: dict[int, float] = {
    1: 0.15, 2: 0.14, 4: 0.12, 5: 0.12, 6: 0.45, 9: 0.08,
    12: 0.50, 15: 0.10, 17: 0.12, 20: 0.08, 25: 0.35, 26: 0.30,
}


def _logit(p: np.ndarray) -> np.ndarray:
    return np.log(p) - np.log1p(-p)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass(frozen=True)
class StressPrior:
    """Class-conditional AU activation model.

    Attributes
    ----------
    base_rates:
        12-dim vector of unstressed activation probabilities.
    stress_log_odds:
        12-dim vector of log-odds shifts applied under stress.
    coupling:
        Global multiplier on the log-odds shifts.  ``1.0`` reproduces
        the lab-quality UVSD coupling; the harder RSL dataset uses a
        smaller value (weaker, noisier signal).
    """

    base_rates: np.ndarray = field(
        default_factory=lambda: np.array(
            [_BASE_RATE[au] for au in AU_IDS], dtype=np.float64
        )
    )
    stress_log_odds: np.ndarray = field(
        default_factory=lambda: np.array(
            [_STRESS_LOG_ODDS[au] for au in AU_IDS], dtype=np.float64
        )
    )
    coupling: float = 1.0

    def __post_init__(self) -> None:
        base = np.asarray(self.base_rates, dtype=np.float64)
        shift = np.asarray(self.stress_log_odds, dtype=np.float64)
        if base.shape != (NUM_AUS,) or shift.shape != (NUM_AUS,):
            raise ValueError("prior vectors must be 12-dimensional")
        if np.any(base <= 0.0) or np.any(base >= 1.0):
            raise ValueError("base rates must lie strictly in (0, 1)")
        if self.coupling < 0.0:
            raise ValueError("coupling must be non-negative")
        object.__setattr__(self, "base_rates", base)
        object.__setattr__(self, "stress_log_odds", shift)

    def activation_probs(self, stressed: bool) -> np.ndarray:
        """AU activation probabilities for one class.

        Under stress the base-rate logits are shifted by the (coupled)
        stress log-odds; unstressed subjects use the base rates as-is.
        """
        if not stressed:
            return self.base_rates.copy()
        logits = _logit(self.base_rates) + self.coupling * self.stress_log_odds
        return _sigmoid(logits)

    def evidence_weights(self) -> np.ndarray:
        """Per-AU log-likelihood-ratio weights (stressed vs unstressed).

        These are the Bayes-optimal linear evidence weights for an AU
        occurrence vector, useful for analysis and for oracle tests.
        """
        p_s = self.activation_probs(stressed=True)
        p_u = self.activation_probs(stressed=False)
        return np.log(p_s / p_u) - np.log((1.0 - p_s) / (1.0 - p_u))

    def stress_direction(self, au_id: int) -> int:
        """+1 if the AU indicates stress, -1 if it contra-indicates."""
        return 1 if self.stress_log_odds[au_index(au_id)] >= 0 else -1


def default_stress_prior(coupling: float = 1.0) -> StressPrior:
    """The standard literature-grounded prior at the given coupling."""
    return StressPrior(coupling=coupling)
