"""Facial Action Coding System (FACS) substrate.

This package models the 12 DISFA+ action units (AUs) the paper's
instruction-tuning stage is built on: the AU registry and metadata
(:mod:`~repro.facs.action_units`), the facial-region geometry each AU
acts on (:mod:`~repro.facs.regions`), the AU <-> natural-language
templates used to build facial-action descriptions
(:mod:`~repro.facs.descriptions`), and the literature-grounded AU-stress
association priors that drive the synthetic datasets
(:mod:`~repro.facs.stress_priors`).
"""

from repro.facs.action_units import (
    AU_IDS,
    NUM_AUS,
    ActionUnit,
    au_by_id,
    au_index,
    all_action_units,
)
from repro.facs.descriptions import FacialDescription
from repro.facs.regions import FacialRegion, REGIONS, region_for_au
from repro.facs.stress_priors import StressPrior, default_stress_prior

__all__ = [
    "AU_IDS",
    "ActionUnit",
    "FacialDescription",
    "FacialRegion",
    "NUM_AUS",
    "REGIONS",
    "StressPrior",
    "all_action_units",
    "au_by_id",
    "au_index",
    "default_stress_prior",
    "region_for_au",
]
