"""Registry of the 12 DISFA+ facial action units.

The paper instruction-tunes its foundation model on DISFA+, whose label
space is the 12 action units below (FACS numbering).  Each
:class:`ActionUnit` carries the FACS id, its standard name, the facial
region it deforms, and the linguistic phrase used when rendering
natural-language descriptions (mirroring the paper's Section IV-A
example: AU1 -> "inner portions of the eyebrows raising").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ActionUnit:
    """A single FACS action unit.

    Attributes
    ----------
    au_id:
        FACS number (e.g. ``1`` for AU1 "Inner Brow Raiser").
    name:
        Canonical FACS name.
    region:
        Key of the facial region the AU deforms (see
        :mod:`repro.facs.regions`).
    phrase:
        Natural-language phrase describing the movement, used by
        :class:`repro.facs.descriptions.FacialDescription`.
    """

    au_id: int
    name: str
    region: str
    phrase: str


# The 12 DISFA / DISFA+ action units, in canonical order.  The order
# defines the index layout of every 12-dim AU vector in the library.
_ACTION_UNITS: tuple[ActionUnit, ...] = (
    ActionUnit(1, "Inner Brow Raiser", "eyebrow",
               "inner portions of the eyebrows raising"),
    ActionUnit(2, "Outer Brow Raiser", "eyebrow",
               "outer portions of the eyebrows raising"),
    ActionUnit(4, "Brow Lowerer", "eyebrow",
               "eyebrows lowering and drawing together"),
    ActionUnit(5, "Upper Lid Raiser", "lid", "upper lid raising"),
    ActionUnit(6, "Cheek Raiser", "cheek", "raised"),
    ActionUnit(9, "Nose Wrinkler", "nose", "wrinkling"),
    ActionUnit(12, "Lip Corner Puller", "lips",
               "corners pulling upward into a smile"),
    ActionUnit(15, "Lip Corner Depressor", "lips",
               "corners pulling downward"),
    ActionUnit(17, "Chin Raiser", "chin", "pushing upward"),
    ActionUnit(20, "Lip Stretcher", "lips",
               "stretching horizontally in tension"),
    ActionUnit(25, "Lips Part", "lips", "parting slightly"),
    ActionUnit(26, "Jaw Drop", "jaw", "dropping open"),
)

AU_IDS: tuple[int, ...] = tuple(unit.au_id for unit in _ACTION_UNITS)
NUM_AUS: int = len(_ACTION_UNITS)

_BY_ID: dict[int, ActionUnit] = {unit.au_id: unit for unit in _ACTION_UNITS}
_INDEX: dict[int, int] = {unit.au_id: i for i, unit in enumerate(_ACTION_UNITS)}


def all_action_units() -> tuple[ActionUnit, ...]:
    """Return the 12 action units in canonical (vector-index) order."""
    return _ACTION_UNITS


def au_by_id(au_id: int) -> ActionUnit:
    """Return the :class:`ActionUnit` with FACS number ``au_id``.

    Raises
    ------
    KeyError
        If ``au_id`` is not one of the 12 DISFA action units.
    """
    try:
        return _BY_ID[au_id]
    except KeyError:
        raise KeyError(
            f"AU{au_id} is not one of the 12 DISFA action units {AU_IDS}"
        ) from None


def au_index(au_id: int) -> int:
    """Return the canonical vector index (0..11) of ``au_id``."""
    try:
        return _INDEX[au_id]
    except KeyError:
        raise KeyError(
            f"AU{au_id} is not one of the 12 DISFA action units {AU_IDS}"
        ) from None
