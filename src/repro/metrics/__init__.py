"""Classification metrics and table formatting."""

from repro.metrics.classification import (
    ClassificationMetrics,
    confusion_matrix,
    evaluate_predictions,
)
from repro.metrics.reporting import format_table

__all__ = [
    "ClassificationMetrics",
    "confusion_matrix",
    "evaluate_predictions",
    "format_table",
]
