"""Macro-averaged classification metrics.

The paper reports Accuracy, Precision, Recall and F1 with
macro-averaging ("Macro-average is adopted to assign equal weight to
each category").  We implement the standard definitions -- note the
paper's printed formula "Recall = TP/(TP+TN)" is a typo for
``TP/(TP+FN)``; its reported numbers are consistent with the standard
definition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     num_classes: int = 2) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count(true == i and pred == j)."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot compute metrics on empty inputs")
    out_of_range = (
        (y_true < 0).any() or (y_true >= num_classes).any()
        or (y_pred < 0).any() or (y_pred >= num_classes).any()
    )
    if out_of_range:
        raise ValueError(f"labels must lie in [0, {num_classes})")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[t, p] += 1
    return matrix


@dataclass(frozen=True)
class ClassificationMetrics:
    """Macro-averaged binary/multiclass metrics."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    support: int

    def as_row(self) -> dict[str, float]:
        """Metrics as a mapping (used by the table formatters)."""
        return {
            "Acc.": self.accuracy,
            "Prec.": self.precision,
            "Rec.": self.recall,
            "F1.": self.f1,
        }

    def __str__(self) -> str:
        return (
            f"acc={self.accuracy:.4f} prec={self.precision:.4f} "
            f"rec={self.recall:.4f} f1={self.f1:.4f} (n={self.support})"
        )


def evaluate_predictions(y_true: np.ndarray, y_pred: np.ndarray,
                         num_classes: int = 2) -> ClassificationMetrics:
    """Macro precision/recall/F1 and accuracy."""
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    total = matrix.sum()
    accuracy = float(np.trace(matrix) / total)
    precisions, recalls, f1s = [], [], []
    for cls in range(num_classes):
        tp = matrix[cls, cls]
        predicted = matrix[:, cls].sum()
        actual = matrix[cls, :].sum()
        precision = tp / predicted if predicted else 0.0
        recall = tp / actual if actual else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        precisions.append(precision)
        recalls.append(recall)
        f1s.append(f1)
    return ClassificationMetrics(
        accuracy=accuracy,
        precision=float(np.mean(precisions)),
        recall=float(np.mean(recalls)),
        f1=float(np.mean(f1s)),
        support=int(total),
    )


def mean_metrics(metrics: list[ClassificationMetrics]) -> ClassificationMetrics:
    """Average metrics across folds (the paper reports fold means)."""
    if not metrics:
        raise ValueError("cannot average an empty metrics list")
    return ClassificationMetrics(
        accuracy=float(np.mean([m.accuracy for m in metrics])),
        precision=float(np.mean([m.precision for m in metrics])),
        recall=float(np.mean([m.recall for m in metrics])),
        f1=float(np.mean([m.f1 for m in metrics])),
        support=int(sum(m.support for m in metrics)),
    )
