"""Plain-text table formatting for experiment output.

Experiments print tables in the same row/column layout as the paper so
EXPERIMENTS.md can be filled by copying harness output.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Mapping[str, Mapping[str, float | str]],
    percent: bool = True,
) -> str:
    """Render a dict-of-dicts as an aligned text table.

    Parameters
    ----------
    title:
        Printed above the table.
    columns:
        Column keys, in order.
    rows:
        ``row_label -> {column -> value}``; numeric values are shown
        as percentages when ``percent`` is true.
    """
    def fmt(value: float | str) -> str:
        if isinstance(value, str):
            return value
        return f"{value * 100:.2f}%" if percent else f"{value:.4f}"

    label_width = max([len(label) for label in rows] + [len("Method")])
    col_widths = [
        max(len(col), *(len(fmt(vals.get(col, ""))) for vals in rows.values()))
        if rows else len(col)
        for col in columns
    ]
    lines = [title]
    header = "Method".ljust(label_width) + "  " + "  ".join(
        col.rjust(width) for col, width in zip(columns, col_widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows.items():
        cells = [
            fmt(values.get(col, "")).rjust(width)
            for col, width in zip(columns, col_widths)
        ]
        lines.append(label.ljust(label_width) + "  " + "  ".join(cells))
    return "\n".join(lines)
