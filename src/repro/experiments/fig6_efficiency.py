"""Figure 6: per-sample explanation cost, ours vs post-hoc explainers.

The paper reports 3.4 s for the full chain vs 216.3 s for SOBOL (its
fastest comparator) -- a 63x gap driven by the ~1000 model evaluations
the post-hoc explainers spend per sample.  The substrate's absolute
times differ; the reproduced quantity is that ratio.
"""

from __future__ import annotations

from repro.cot.chain import StressChainPipeline
from repro.experiments.common import ExperimentOptions, eval_subset, trained_model
from repro.experiments.result import ExperimentResult
from repro.experiments.table2_faithfulness import _explainers
from repro.explainers.timing import time_explainers


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Regenerate Figure 6."""
    options = options or ExperimentOptions()
    model, __, test = trained_model("uvsd", options)
    pipeline = StressChainPipeline(model, seed=options.seed)
    samples = eval_subset(test, min(12, options.scale.eval_samples))
    timing = time_explainers(pipeline, _explainers(options), samples,
                             seed=options.seed)
    lines = [
        f"Figure 6: per-sample explanation cost (n={len(samples)}, "
        f"scale={options.scale.name})",
        f"{'Method':10s}  {'sec/sample':>12s}  {'model evals':>12s}  "
        f"{'x slower than ours':>18s}",
    ]
    ours_seconds = timing.seconds_per_sample["Ours"]
    for name, seconds in sorted(timing.seconds_per_sample.items(),
                                key=lambda kv: kv[1]):
        evals = timing.evaluations_per_sample[name]
        ratio = seconds / ours_seconds
        lines.append(
            f"{name:10s}  {seconds:12.4f}  {evals:12.1f}  {ratio:18.1f}"
        )
    return ExperimentResult(
        experiment_id="fig6",
        title="Figure 6: explanation efficiency",
        text="\n".join(lines),
        data=timing,
    )
