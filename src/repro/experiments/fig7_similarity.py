"""Figure 7: can the encoders separate helpful from unhelpful examples?

For one test query, every training sample is scored by (a) its cosine
similarity to the query under the vision encoder and under the
description encoder, and (b) whether it is a *helpful* in-context
example -- one whose evidence steers the model toward the query's true
stress state (its label agrees with the query's ground truth, so
conditioning on it pushes the assessment the right way).  The figure's
claim is that the description embedding separates the two groups more
cleanly than the vision embedding -- vision similarity is dominated by
identity and lighting, while description similarity tracks the facial
behaviour that determines the label.  We report the mean similarity
gap (helpful minus unhelpful) under each encoding.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentOptions, eval_subset, trained_model
from repro.experiments.result import ExperimentResult
from repro.model.generation import GREEDY
from repro.retrieval.encoders import (
    DescriptionEncoder,
    VisionEncoder,
    cosine_similarity,
)


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Regenerate Figure 7 (as separation statistics)."""
    options = options or ExperimentOptions()
    model, train, test = trained_model("rsl", options)
    vision = VisionEncoder(seed=options.seed)
    text = DescriptionEncoder()

    pool = list(train)[: min(len(train), 150)]
    pool_descs = [
        model.describe(s.video, GREEDY)
        for s in pool
    ]
    pool_vis = [vision.encode(s.video) for s in pool]
    pool_txt = [text.encode(d.render()) for d in pool_descs]

    queries = eval_subset(test, min(20, options.scale.eval_samples))
    gaps = {"vision": [], "description": []}
    for sample in queries:
        query_desc = model.describe(sample.video, GREEDY)
        query_vis = vision.encode(sample.video)
        query_txt = text.encode(query_desc.render())
        helpful_vis, unhelpful_vis = [], []
        helpful_txt, unhelpful_txt = [], []
        for i, example_sample in enumerate(pool):
            helpful = example_sample.label == sample.label
            sim_v = cosine_similarity(query_vis, pool_vis[i])
            sim_t = cosine_similarity(query_txt, pool_txt[i])
            (helpful_vis if helpful else unhelpful_vis).append(sim_v)
            (helpful_txt if helpful else unhelpful_txt).append(sim_t)
        if helpful_vis and unhelpful_vis:
            gaps["vision"].append(
                float(np.mean(helpful_vis) - np.mean(unhelpful_vis))
            )
            gaps["description"].append(
                float(np.mean(helpful_txt) - np.mean(unhelpful_txt))
            )
    vision_gap = float(np.mean(gaps["vision"])) if gaps["vision"] else 0.0
    text_gap = (float(np.mean(gaps["description"]))
                if gaps["description"] else 0.0)
    lines = [
        f"Figure 7: helpful-vs-unhelpful similarity separation "
        f"(RSL, {len(queries)} queries, scale={options.scale.name})",
        f"(a) retrieve-by-vision      mean similarity gap: {vision_gap:+.4f}",
        f"(b) retrieve-by-description mean similarity gap: {text_gap:+.4f}",
        "",
        "Paper claim reproduced iff gap(b) > gap(a): "
        + ("YES" if text_gap > vision_gap else "NO"),
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="Figure 7: encoder separation of helpful examples",
        text="\n".join(lines),
        data={"vision_gap": vision_gap, "description_gap": text_gap},
    )
