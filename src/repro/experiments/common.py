"""Shared experiment infrastructure: scales, options, cached artifacts.

Every experiment accepts an :class:`ExperimentOptions` whose
:class:`Scale` controls dataset sizes, fold counts and evaluation
budgets.  ``full`` matches the paper's setup exactly (2092/706 samples,
10 folds, 1000-evaluation explainers); ``standard`` is the default for
EXPERIMENTS.md regeneration; ``quick`` keeps benchmarks and CI fast.

Trained models are cached per (dataset, variant, scale, seed) within
the process so a session that runs several experiments trains each
configuration once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import build_instruction_pairs, generate_disfa
from repro.datasets.base import StressDataset, kfold_splits
from repro.datasets.rsl import generate_rsl
from repro.datasets.uvsd import generate_uvsd
from repro.errors import ExperimentError
from repro.rng import derive_seed
from repro.training.self_refine import SelfRefineConfig
from repro.training.trainer import train_stress_model, variant_config


@dataclass(frozen=True)
class Scale:
    """Size preset for one experiment run."""

    name: str
    uvsd_samples: int
    uvsd_subjects: int
    rsl_samples: int
    rsl_subjects: int
    disfa_samples: int
    num_folds: int
    refine_sample_limit: int | None
    eval_samples: int          # samples per dataset for interpretability evals
    explainer_budget: int      # LIME/SHAP evaluation budget
    sobol_designs: int


SCALES: dict[str, Scale] = {
    "quick": Scale("quick", 320, 32, 240, 24, 200, 3, 120, 24, 200, 4),
    "standard": Scale("standard", 900, 70, 450, 45, 400, 3, 350, 60, 600, 8),
    "full": Scale("full", 2092, 112, 706, 60, 645, 10, None, 120, 1000, 16),
}


@dataclass(frozen=True)
class ExperimentOptions:
    """Options common to every experiment runner."""

    scale: Scale = field(default_factory=lambda: SCALES["quick"])
    seed: int = 0

    @classmethod
    def at(cls, scale_name: str, seed: int = 0) -> "ExperimentOptions":
        if scale_name not in SCALES:
            raise ExperimentError(
                f"unknown scale {scale_name!r}; known: {sorted(SCALES)}"
            )
        return cls(scale=SCALES[scale_name], seed=seed)


# ----------------------------------------------------------------------
# Cached artifact store
# ----------------------------------------------------------------------

_DATASET_CACHE: dict[tuple, StressDataset] = {}
_PAIRS_CACHE: dict[tuple, list] = {}
_MODEL_CACHE: dict[tuple, tuple] = {}


def load_dataset(name: str, options: ExperimentOptions) -> StressDataset:
    """UVSD or RSL at the option's scale (cached)."""
    scale = options.scale
    key = (name, scale.name, options.seed)
    if key not in _DATASET_CACHE:
        if name == "uvsd":
            _DATASET_CACHE[key] = generate_uvsd(
                options.seed, scale.uvsd_samples, scale.uvsd_subjects
            )
        elif name == "rsl":
            _DATASET_CACHE[key] = generate_rsl(
                options.seed, scale.rsl_samples, scale.rsl_subjects
            )
        else:
            raise ExperimentError(f"unknown dataset {name!r}")
    return _DATASET_CACHE[key]


def load_instruction_pairs(options: ExperimentOptions) -> list:
    """DISFA+ instruction pairs at the option's scale (cached)."""
    key = (options.scale.name, options.seed)
    if key not in _PAIRS_CACHE:
        disfa = generate_disfa(
            options.seed, options.scale.disfa_samples,
            num_subjects=max(10, options.scale.disfa_samples // 24),
        )
        _PAIRS_CACHE[key] = build_instruction_pairs(disfa)
    return _PAIRS_CACHE[key]


def refine_config(options: ExperimentOptions,
                  variant: str = "ours") -> SelfRefineConfig:
    """The variant's training config at the option's scale."""
    base = SelfRefineConfig(
        refine_sample_limit=options.scale.refine_sample_limit,
        seed=options.seed,
    )
    return variant_config(variant, base)


def trained_model(dataset_name: str, options: ExperimentOptions,
                  variant: str = "ours"):
    """A model trained on the first CV fold's training split (cached).

    Interpretability experiments (Tables II/IV/VI, Figs 6-8) evaluate
    one trained model on held-out samples; using the first fold's
    split keeps them consistent with the detection experiments.

    Returns ``(model, train_split, test_split)``.
    """
    key = (dataset_name, options.scale.name, options.seed, variant)
    if key not in _MODEL_CACHE:
        dataset = load_dataset(dataset_name, options)
        train_idx, test_idx = kfold_splits(
            dataset, options.scale.num_folds, options.seed
        )[0]
        train = dataset.subset(train_idx, f"{dataset_name}-train")
        test = dataset.subset(test_idx, f"{dataset_name}-test")
        model, __ = train_stress_model(
            train, load_instruction_pairs(options),
            config=refine_config(options, variant),
            seed=derive_seed(options.seed, f"exp:{dataset_name}:{variant}"),
        )
        _MODEL_CACHE[key] = (model, train, test)
    return _MODEL_CACHE[key]


def eval_subset(dataset: StressDataset, count: int, seed: int = 0) -> list:
    """A deterministic, class-mixed evaluation subset."""
    if count >= len(dataset):
        return list(dataset)
    # Interleave classes to keep the subset balanced like the source.
    stressed = [s for s in dataset if s.label == 1]
    unstressed = [s for s in dataset if s.label == 0]
    picked: list = []
    ratio = len(stressed) / max(1, len(dataset))
    num_stressed = max(1, int(round(count * ratio)))
    picked.extend(stressed[:num_stressed])
    picked.extend(unstressed[: count - len(picked)])
    return picked[:count]


def clear_caches() -> None:
    """Drop all cached datasets/models (tests use this)."""
    _DATASET_CACHE.clear()
    _PAIRS_CACHE.clear()
    _MODEL_CACHE.clear()
