"""Table V: impact of the self-refine learning scheme on detection.

Variants: "w/o Refine" (no refinement at all), "w/o Reflection"
(refinement candidates come from plain resampling instead of guided
reflection), and ours.
"""

from __future__ import annotations

from repro.evaluation.protocol import evaluate_ours
from repro.experiments.common import (
    ExperimentOptions,
    load_dataset,
    load_instruction_pairs,
    refine_config,
)
from repro.experiments.result import ExperimentResult
from repro.metrics.reporting import format_table

COLUMNS = ("Acc.", "Prec.", "Rec.", "F1.")
VARIANTS = (("wo_refine", "w/o Refine"), ("wo_reflection", "w/o Reflection"),
            ("ours", "Ours"))


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Regenerate Table V."""
    options = options or ExperimentOptions()
    folds = options.scale.num_folds
    data: dict[str, dict[str, dict[str, float]]] = {}
    blocks = []
    for dataset_name in ("uvsd", "rsl"):
        dataset = load_dataset(dataset_name, options)
        rows: dict[str, dict[str, float]] = {}
        for variant, label in VARIANTS:
            metrics = evaluate_ours(
                dataset, load_instruction_pairs(options), variant,
                folds, options.seed, refine_config(options, variant),
            )
            rows[label] = metrics.as_row()
        data[dataset_name] = rows
        blocks.append(format_table(
            f"Table V ({dataset_name.upper()}): self-refine ablation, "
            f"{folds}-fold CV, scale={options.scale.name}",
            COLUMNS, rows,
        ))
    return ExperimentResult(
        experiment_id="table5",
        title="Table V: self-refine learning ablation (detection)",
        text="\n\n".join(blocks),
        data=data,
    )
