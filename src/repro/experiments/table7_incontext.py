"""Table VII: in-context example retrieval strategies.

For each test sample the pipeline retrieves one in-context example
from the training pool (none / random / by-vision / by-description)
and conditions its assessment on it.
"""

from __future__ import annotations

import numpy as np

from repro.cot.chain import StressChainPipeline
from repro.experiments.common import ExperimentOptions, trained_model
from repro.experiments.result import ExperimentResult
from repro.metrics.classification import evaluate_predictions
from repro.metrics.reporting import format_table
from repro.retrieval import DescriptionRetriever, RandomRetriever, VisionRetriever

COLUMNS = ("Acc.", "Prec.", "Rec.", "F1.")


#: In-context examples per query: a small panel, so the conditioning
#: evidence is an empirical vote over similar training patterns rather
#: than a single (possibly label-noisy) neighbour.
NUM_EXAMPLES: int = 3


def _strategies(model, pool, seed):
    return (
        ("w/o Example", None),
        ("Random", RandomRetriever(model, pool,
                                   num_examples=NUM_EXAMPLES, seed=seed)),
        ("Retrieve-by-vision",
         VisionRetriever(model, pool, num_examples=NUM_EXAMPLES, seed=seed)),
        ("Retrieve-by-description",
         DescriptionRetriever(model, pool, num_examples=NUM_EXAMPLES,
                              seed=seed)),
    )


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Regenerate Table VII."""
    options = options or ExperimentOptions()
    data: dict[str, dict[str, dict[str, float]]] = {}
    blocks = []
    for dataset_name in ("uvsd", "rsl"):
        model, train, test = trained_model(dataset_name, options)
        pool = list(train)
        rows: dict[str, dict[str, float]] = {}
        for label, retriever in _strategies(model, pool, options.seed):
            pipeline = StressChainPipeline(
                model, retriever=retriever, seed=options.seed
            )
            predictions = np.array([
                pipeline.predict(sample.video).label for sample in test
            ])
            metrics = evaluate_predictions(test.labels, predictions)
            rows[label] = metrics.as_row()
        data[dataset_name] = rows
        blocks.append(format_table(
            f"Table VII ({dataset_name.upper()}): in-context retrieval, "
            f"scale={options.scale.name}",
            COLUMNS, rows,
        ))
    return ExperimentResult(
        experiment_id="table7",
        title="Table VII: in-context example retrieval",
        text="\n\n".join(blocks),
        data=data,
    )
