"""Table IV: impact of chain reasoning on rationale faithfulness.

The same variants as Table III, but each variant explains *itself*:
the accuracy drop after disturbing the top-k segments its own
rationale grounds to.
"""

from __future__ import annotations

from repro.cot.chain import StressChainPipeline
from repro.experiments.common import ExperimentOptions, eval_subset, trained_model
from repro.experiments.result import ExperimentResult
from repro.explainers import chain_predict_fn, deletion_metric, rationale_ranker
from repro.metrics.reporting import format_table

COLUMNS = ("Top-1", "Top-2", "Top-3")
VARIANTS = (("wo_chain", "w/o Chain"), ("wo_learn_des", "w/o learn des."),
            ("ours", "Ours"))


def run(options: ExperimentOptions | None = None,
        variants=VARIANTS, experiment_id: str = "table4",
        title: str = "Table IV: chain ablation (faithfulness)",
        ) -> ExperimentResult:
    """Regenerate Table IV (also reused by Table VI with different
    variants)."""
    options = options or ExperimentOptions()
    data: dict[str, dict[str, dict[str, float]]] = {}
    blocks = []
    for dataset_name in ("uvsd", "rsl"):
        rows: dict[str, dict[str, float]] = {}
        for variant, label in variants:
            model, __, test = trained_model(dataset_name, options, variant)
            pipeline = StressChainPipeline(
                model, use_chain=(variant != "wo_chain"), seed=options.seed
            )
            samples = eval_subset(test, options.scale.eval_samples)
            factory = lambda s: chain_predict_fn(pipeline, s)  # noqa: E731
            result = deletion_metric(
                samples, rationale_ranker(pipeline), factory,
                seed=options.seed,
            )
            rows[label] = {f"Top-{k}": d for k, d in result.drops.items()}
        data[dataset_name] = rows
        blocks.append(format_table(
            f"{experiment_id.capitalize()} ({dataset_name.upper()}): "
            f"accuracy drop of each variant's own rationale, "
            f"scale={options.scale.name}",
            COLUMNS, rows,
        ))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        text="\n\n".join(blocks),
        data=data,
    )
