"""Command-line entry point: ``python -m repro.experiments <id>``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import ExperimentOptions, SCALES
from repro.experiments.registry import experiment_ids, run_experiment
from repro.observability.metrics import global_metrics
from repro.observability.tracing import span


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids, or 'all'; known: {', '.join(experiment_ids())}",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick",
                        help="dataset/fold sizes (default: quick)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    requested = list(args.experiments)
    if requested == ["all"]:
        requested = list(experiment_ids())
    options = ExperimentOptions.at(args.scale, args.seed)
    for experiment_id in requested:
        start = time.perf_counter()
        with span("experiment.run", experiment=experiment_id,
                  scale=args.scale, seed=args.seed):
            result = run_experiment(experiment_id, options)
        elapsed = time.perf_counter() - start
        metrics = global_metrics()
        metrics.counter("experiments.completed").inc()
        metrics.gauge(f"experiments.{experiment_id}_seconds").set(elapsed)
        print(result.text)
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
