"""Command-line entry point: ``python -m repro.experiments <id>``.

Long multi-experiment sessions are resumable: with ``--results-dir``
each completed experiment's formatted output is persisted as JSON, and
``--resume`` skips (and replays) experiments whose result file already
exists for the requested ``(scale, seed)``.  A crash halfway through
``all`` therefore costs only the interrupted experiment, not the
completed ones -- the natural companion of the trainer's
stage-boundary checkpoints (``--checkpoint-dir`` is plumbed separately
through :func:`repro.training.trainer.train_stress_model`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments.common import ExperimentOptions, SCALES
from repro.experiments.registry import experiment_ids, run_experiment
from repro.observability.metrics import global_metrics
from repro.observability.tracing import span

#: Result-file layout version.
RESULT_VERSION = 1


def _result_path(results_dir: Path, experiment_id: str, scale: str,
                 seed: int) -> Path:
    return results_dir / f"{experiment_id}_{scale}_seed{seed}.json"


def _load_cached_result(path: Path) -> dict | None:
    """The persisted result document, or ``None`` when absent or
    unreadable (a truncated file from a crash must not be trusted)."""
    if not path.exists():
        return None
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return None
    if not isinstance(document, dict) or "text" not in document:
        return None
    if document.get("version") != RESULT_VERSION:
        return None
    return document


def _save_result(path: Path, experiment_id: str, scale: str, seed: int,
                 result, elapsed: float) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": RESULT_VERSION,
        "experiment_id": experiment_id,
        "scale": scale,
        "seed": seed,
        "title": result.title,
        "text": result.text,
        "elapsed_seconds": elapsed,
    }
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    tmp.replace(path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids, or 'all'; known: {', '.join(experiment_ids())}",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick",
                        help="dataset/fold sizes (default: quick)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--results-dir", type=Path, default=None,
        help="persist each completed experiment's output as JSON here",
    )
    parser.add_argument(
        "--resume", action="store_true", default=False,
        help="skip experiments whose result file already exists in "
             "--results-dir (replaying their recorded output)",
    )
    args = parser.parse_args(argv)
    if args.resume and args.results_dir is None:
        parser.error("--resume requires --results-dir")

    requested = list(args.experiments)
    if requested == ["all"]:
        requested = list(experiment_ids())
    options = ExperimentOptions.at(args.scale, args.seed)
    for experiment_id in requested:
        if args.results_dir is not None:
            path = _result_path(args.results_dir, experiment_id,
                                args.scale, args.seed)
            if args.resume:
                cached = _load_cached_result(path)
                if cached is not None:
                    print(cached["text"])
                    print(f"[{experiment_id} resumed from {path}]")
                    print()
                    continue
        start = time.perf_counter()
        with span("experiment.run", experiment=experiment_id,
                  scale=args.scale, seed=args.seed):
            result = run_experiment(experiment_id, options)
        elapsed = time.perf_counter() - start
        metrics = global_metrics()
        metrics.counter("experiments.completed").inc()
        metrics.gauge(f"experiments.{experiment_id}_seconds").set(elapsed)
        if args.results_dir is not None:
            _save_result(path, experiment_id, args.scale, args.seed,
                         result, elapsed)
        print(result.text)
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
