"""Experiment result container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated paper artifact."""

    experiment_id: str
    title: str
    text: str          # formatted table / series, printable as-is
    data: Any          # structured values for programmatic use

    def __str__(self) -> str:
        return self.text
