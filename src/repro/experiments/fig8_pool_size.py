"""Figure 8: effect of training-pool size on in-context retrieval (RSL).

"we extract each subset from the original training dataset of RSL, and
evaluate the performance with each retrieval method ... the model
benefits from a larger resource of samples if we retrieve similar ones
as in-context examples."
"""

from __future__ import annotations

import numpy as np

from repro.cot.chain import StressChainPipeline
from repro.experiments.common import ExperimentOptions, trained_model
from repro.experiments.result import ExperimentResult
from repro.metrics.classification import evaluate_predictions
from repro.retrieval import DescriptionRetriever, RandomRetriever, VisionRetriever

#: Pool fractions swept along the x axis.
FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Regenerate Figure 8."""
    options = options or ExperimentOptions()
    model, train, test = trained_model("rsl", options)
    full_pool = list(train)
    series: dict[str, list[float]] = {
        "Random": [], "Retrieve-by-vision": [], "Retrieve-by-description": [],
    }
    sizes = []
    for fraction in FRACTIONS:
        size = max(4, int(len(full_pool) * fraction))
        sizes.append(size)
        pool = full_pool[:size]
        retrievers = (
            ("Random", RandomRetriever(model, pool, seed=options.seed)),
            ("Retrieve-by-vision",
             VisionRetriever(model, pool, seed=options.seed)),
            ("Retrieve-by-description",
             DescriptionRetriever(model, pool, seed=options.seed)),
        )
        for name, retriever in retrievers:
            pipeline = StressChainPipeline(model, retriever=retriever,
                                           seed=options.seed)
            predictions = np.array([
                pipeline.predict(sample.video).label for sample in test
            ])
            metrics = evaluate_predictions(test.labels, predictions)
            series[name].append(metrics.accuracy)
    lines = [
        f"Figure 8: accuracy vs retrieval-pool size "
        f"(RSL, scale={options.scale.name})",
        "pool size  " + "  ".join(f"{s:>8d}" for s in sizes),
    ]
    for name, accs in series.items():
        lines.append(
            f"{name:24s}  " + "  ".join(f"{a * 100:7.2f}%" for a in accs)
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="Figure 8: training-pool size for retrieval",
        text="\n".join(lines),
        data={"sizes": sizes, "series": series},
    )
