"""Table VIII: applying the method to off-the-shelf foundation models.

"Original" is each frozen vendor proxy answering the direct stress
query (its Table I protocol); "New" runs the chain with *test-time*
self-refinement -- reflect on the description, keep candidates that
self-verify at least as faithfully, no weight updates.
"""

from __future__ import annotations

from repro.evaluation.protocol import evaluate_offtheshelf
from repro.experiments.common import ExperimentOptions, load_dataset
from repro.experiments.result import ExperimentResult
from repro.metrics.reporting import format_table
from repro.model.pretrained import available_vendors

COLUMNS = ("Acc.", "Prec.", "Rec.", "F1.")

_VENDOR_LABELS = {
    "gpt-4o": "GPT-4o",
    "claude-3.5": "Claude-3.5",
    "gemini-1.5": "Gemini-1.5",
}


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Regenerate Table VIII."""
    options = options or ExperimentOptions()
    folds = options.scale.num_folds
    data: dict[str, dict[str, dict[str, float]]] = {}
    blocks = []
    for dataset_name in ("uvsd", "rsl"):
        dataset = load_dataset(dataset_name, options)
        rows: dict[str, dict[str, float]] = {}
        for vendor in available_vendors():
            label = _VENDOR_LABELS[vendor]
            original = evaluate_offtheshelf(
                vendor, dataset, folds, options.seed,
                use_chain=False, test_time_refine=False,
            )
            refined = evaluate_offtheshelf(
                vendor, dataset, folds, options.seed,
                use_chain=True, test_time_refine=True,
            )
            rows[f"{label} Original"] = original.as_row()
            rows[f"{label} New"] = refined.as_row()
        data[dataset_name] = rows
        blocks.append(format_table(
            f"Table VIII ({dataset_name.upper()}): off-the-shelf LFMs "
            f"with test-time self-refinement, scale={options.scale.name}",
            COLUMNS, rows,
        ))
    return ExperimentResult(
        experiment_id="table8",
        title="Table VIII: generalizing to off-the-shelf models",
        text="\n\n".join(blocks),
        data=data,
    )
