"""Table VI: impact of self-refine learning on rationale faithfulness.

Reuses the Table IV protocol with the self-refine variants.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentOptions
from repro.experiments.result import ExperimentResult
from repro.experiments.table4_chain_faithfulness import run as run_table4

VARIANTS = (("wo_refine", "w/o Refine"), ("wo_reflection", "w/o Reflection"),
            ("ours", "Ours"))


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Regenerate Table VI."""
    return run_table4(
        options, variants=VARIANTS, experiment_id="table6",
        title="Table VI: self-refine ablation (faithfulness)",
    )
