"""Experiment registry: one runner per paper table/figure."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ExperimentError
from repro.experiments.common import ExperimentOptions
from repro.experiments.result import ExperimentResult

from repro.experiments import (  # noqa: E402  (import order is the registry)
    fig6_efficiency,
    fig7_similarity,
    fig8_pool_size,
    table1_main,
    table2_faithfulness,
    table3_chain_ablation,
    table4_chain_faithfulness,
    table5_refine_ablation,
    table6_refine_faithfulness,
    table7_incontext,
    table8_offtheshelf,
)

_REGISTRY: dict[str, Callable[[ExperimentOptions], ExperimentResult]] = {
    "table1": table1_main.run,
    "table2": table2_faithfulness.run,
    "table3": table3_chain_ablation.run,
    "table4": table4_chain_faithfulness.run,
    "table5": table5_refine_ablation.run,
    "table6": table6_refine_faithfulness.run,
    "table7": table7_incontext.run,
    "table8": table8_offtheshelf.run,
    "fig6": fig6_efficiency.run,
    "fig7": fig7_similarity.run,
    "fig8": fig8_pool_size.run,
}


def experiment_ids() -> tuple[str, ...]:
    """All registered experiment ids, tables first."""
    return tuple(_REGISTRY)


def run_experiment(experiment_id: str,
                   options: ExperimentOptions | None = None
                   ) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None
    return runner(options or ExperimentOptions())
