"""Table II: accuracy drop after disturbing top-1/2/3 scoring segments.

Compares the faithfulness of SHAP, LIME, SOBOL (each explaining our
trained model through its black-box interface) against the model's own
highlighted rationale, via the deletion metric of Section IV-H.
"""

from __future__ import annotations

from repro.cot.chain import StressChainPipeline
from repro.experiments.common import ExperimentOptions, eval_subset, trained_model
from repro.experiments.result import ExperimentResult
from repro.explainers import (
    KernelShapExplainer,
    LimeExplainer,
    SobolExplainer,
    chain_predict_fn,
    deletion_metric,
    explainer_ranker,
    rationale_ranker,
)
from repro.metrics.reporting import format_table

COLUMNS = ("Top-1", "Top-2", "Top-3")


def _explainers(options: ExperimentOptions):
    budget = options.scale.explainer_budget
    return (
        KernelShapExplainer(num_samples=max(8, budget - 2)),
        LimeExplainer(num_samples=budget),
        SobolExplainer(num_designs=options.scale.sobol_designs),
    )


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Regenerate Table II."""
    options = options or ExperimentOptions()
    data: dict[str, dict[str, dict[str, float]]] = {}
    blocks = []
    for dataset_name in ("uvsd", "rsl"):
        model, __, test = trained_model(dataset_name, options)
        pipeline = StressChainPipeline(model, seed=options.seed)
        samples = eval_subset(test, options.scale.eval_samples)
        factory = lambda sample: chain_predict_fn(pipeline, sample)  # noqa: E731
        rows: dict[str, dict[str, float]] = {}
        for explainer in _explainers(options):
            result = deletion_metric(
                samples, explainer_ranker(explainer, options.seed), factory,
                seed=options.seed,
            )
            rows[explainer.name] = {
                f"Top-{k}": drop for k, drop in result.drops.items()
            }
        result = deletion_metric(
            samples, rationale_ranker(pipeline), factory, seed=options.seed
        )
        rows["Ours"] = {f"Top-{k}": drop for k, drop in result.drops.items()}
        data[dataset_name] = rows
        blocks.append(format_table(
            f"Table II ({dataset_name.upper()}): accuracy drop after "
            f"disturbing top-k segments, n={len(samples)}, "
            f"scale={options.scale.name}",
            COLUMNS, rows,
        ))
    return ExperimentResult(
        experiment_id="table2",
        title="Table II: rationale faithfulness vs post-hoc explainers",
        text="\n\n".join(blocks),
        data=data,
    )
