"""Table III: impact of chain reasoning on detection performance.

Variants: "w/o Chain" (direct stress query, no Describe step),
"w/o learn des." (chain without Stage-1 instruction tuning), and ours.
"""

from __future__ import annotations

from repro.evaluation.protocol import evaluate_ours
from repro.experiments.common import (
    ExperimentOptions,
    load_dataset,
    load_instruction_pairs,
    refine_config,
)
from repro.experiments.result import ExperimentResult
from repro.metrics.reporting import format_table

COLUMNS = ("Acc.", "Prec.", "Rec.", "F1.")
VARIANTS = (("wo_chain", "w/o Chain"), ("wo_learn_des", "w/o learn des."),
            ("ours", "Ours"))


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Regenerate Table III."""
    options = options or ExperimentOptions()
    folds = options.scale.num_folds
    data: dict[str, dict[str, dict[str, float]]] = {}
    blocks = []
    for dataset_name in ("uvsd", "rsl"):
        dataset = load_dataset(dataset_name, options)
        rows: dict[str, dict[str, float]] = {}
        for variant, label in VARIANTS:
            metrics = evaluate_ours(
                dataset, load_instruction_pairs(options), variant,
                folds, options.seed, refine_config(options, variant),
            )
            rows[label] = metrics.as_row()
        data[dataset_name] = rows
        blocks.append(format_table(
            f"Table III ({dataset_name.upper()}): chain-reasoning "
            f"ablation, {folds}-fold CV, scale={options.scale.name}",
            COLUMNS, rows,
        ))
    return ExperimentResult(
        experiment_id="table3",
        title="Table III: chain reasoning ablation (detection)",
        text="\n\n".join(blocks),
        data=data,
    )
