"""Experiment runners regenerating every table and figure of the paper.

Each experiment id maps to one paper artifact (see DESIGN.md section 4
for the full index); run them via::

    python -m repro.experiments <experiment-id> [--scale quick|standard|full]

or programmatically through :func:`repro.experiments.registry.run_experiment`.
"""

from repro.experiments.common import ExperimentOptions, Scale
from repro.experiments.registry import experiment_ids, run_experiment

__all__ = [
    "ExperimentOptions",
    "Scale",
    "experiment_ids",
    "run_experiment",
]
