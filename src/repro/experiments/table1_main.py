"""Table I: stress-detection performance of all methods on UVSD and RSL.

Rows: three off-the-shelf LFM proxies (zero-shot direct query), eight
supervised baselines (fitted per fold), and ours (full Algorithm 1).
Columns: macro Accuracy / Precision / Recall / F1 per dataset.
"""

from __future__ import annotations

from repro.baselines.zoo import baseline_zoo, make_baseline
from repro.evaluation.protocol import (
    evaluate_baseline,
    evaluate_offtheshelf,
    evaluate_ours,
)
from repro.experiments.common import (
    ExperimentOptions,
    load_dataset,
    load_instruction_pairs,
    refine_config,
)
from repro.experiments.result import ExperimentResult
from repro.metrics.reporting import format_table
from repro.model.pretrained import available_vendors

COLUMNS = ("Acc.", "Prec.", "Rec.", "F1.")

_VENDOR_LABELS = {
    "gpt-4o": "GPT-4o",
    "claude-3.5": "Claude-3.5",
    "gemini-1.5": "Gemini-1.5",
}


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Regenerate Table I."""
    options = options or ExperimentOptions()
    folds = options.scale.num_folds
    data: dict[str, dict[str, dict[str, float]]] = {}
    blocks = []
    for dataset_name in ("uvsd", "rsl"):
        dataset = load_dataset(dataset_name, options)
        rows: dict[str, dict[str, float]] = {}
        for vendor in available_vendors():
            metrics = evaluate_offtheshelf(vendor, dataset, folds,
                                           options.seed)
            rows[_VENDOR_LABELS[vendor]] = metrics.as_row()
        for key in baseline_zoo():
            metrics = evaluate_baseline(key, dataset, folds, options.seed)
            rows[make_baseline(key).name] = metrics.as_row()
        metrics = evaluate_ours(
            dataset, load_instruction_pairs(options), "ours",
            folds, options.seed, refine_config(options),
        )
        rows["Ours"] = metrics.as_row()
        data[dataset_name] = rows
        blocks.append(format_table(
            f"Table I ({dataset_name.upper()}), {folds}-fold CV, "
            f"scale={options.scale.name}",
            COLUMNS, rows,
        ))
    return ExperimentResult(
        experiment_id="table1",
        title="Table I: stress detection performance",
        text="\n\n".join(blocks),
        data=data,
    )
