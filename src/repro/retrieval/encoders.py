"""Lightweight stand-ins for the paper's retrieval encoders.

- :class:`VisionEncoder` plays Videoformer: a fixed random projection
  over temporally-pooled patch features.  It sees *appearance* --
  identity, lighting and expression all mixed together -- which is
  precisely why vision retrieval separates helpful from unhelpful
  examples less cleanly than description retrieval (paper Fig. 7).
- :class:`DescriptionEncoder` plays BERT: a deterministic hashed
  bag-of-words embedding of the description text.  Two descriptions
  naming the same facial actions land close together regardless of who
  exhibits them.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.baselines.features import per_frame_features
from repro.rng import make_rng
from repro.video.frame import Video


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity, 0 for zero vectors."""
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0.0:
        return 0.0
    return float(a @ b / denom)


class VisionEncoder:
    """Videoformer-lite: random projection of temporally-pooled
    per-frame patch features."""

    def __init__(self, embed_dim: int = 32, seed: int = 0):
        self.embed_dim = embed_dim
        self._projection: np.ndarray | None = None
        self._seed = seed

    def encode(self, video: Video) -> np.ndarray:
        frames = per_frame_features(video)
        pooled = np.concatenate([frames.mean(axis=0), frames.std(axis=0)])
        if self._projection is None:
            rng = make_rng(self._seed, "vision-encoder")
            self._projection = rng.standard_normal(
                (pooled.size, self.embed_dim)
            ) / np.sqrt(pooled.size)
        return pooled @ self._projection


class DescriptionEncoder:
    """BERT-lite: hashed bag-of-words over description text."""

    def __init__(self, embed_dim: int = 64):
        self.embed_dim = embed_dim

    def encode(self, text: str) -> np.ndarray:
        vector = np.zeros(self.embed_dim)
        for token in _tokenize(text):
            digest = hashlib.blake2b(token.encode("utf-8"),
                                     digest_size=8).digest()
            value = int.from_bytes(digest, "little")
            index = value % self.embed_dim
            sign = 1.0 if (value >> 32) % 2 == 0 else -1.0
            vector[index] += sign
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector


def _tokenize(text: str) -> list[str]:
    tokens = []
    for raw in text.lower().split():
        token = raw.strip(".,:;-()")
        if token:
            tokens.append(token)
    return tokens
