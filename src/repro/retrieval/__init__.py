"""In-context example retrieval (paper Section IV-F).

Three retrieval strategies over a training pool:
``RandomRetriever``, ``VisionRetriever`` ("Retrieve-by-vision", a
Videoformer-style visual encoder) and ``DescriptionRetriever``
("Retrieve-by-description", a BERT-style text encoder over the model's
own facial-action descriptions).
"""

from repro.retrieval.encoders import DescriptionEncoder, VisionEncoder
from repro.retrieval.retriever import (
    DescriptionRetriever,
    RandomRetriever,
    Retriever,
    VisionRetriever,
)

__all__ = [
    "DescriptionEncoder",
    "DescriptionRetriever",
    "RandomRetriever",
    "Retriever",
    "VisionEncoder",
    "VisionRetriever",
]
