"""Approximate nearest-neighbour indexes for in-context retrieval.

Section IV-F closes with: "the model benefits from a larger resource
of samples if we retrieve similar ones as in-context examples.
Therefore, more efficient data management and retrieval techniques
could be further explored to support large-scale in-context example
resource."  This module is that exploration: two classic ANN indexes
implemented from scratch --

- :class:`LSHIndex`: random-hyperplane locality-sensitive hashing for
  cosine similarity (Charikar, 2002), with multi-table probing;
- :class:`IVFFlatIndex`: inverted-file index over k-means coarse
  centroids with ``nprobe`` cell probing (the FAISS IVF-Flat layout).

Both trade a small recall loss for sub-linear query time over large
example pools; the trade-off is measured by
``benchmarks/test_ablation_retrieval_index.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.rng import make_rng


class IndexError_(ReproError):
    """Raised for invalid index construction or queries."""


def _as_matrix(vectors: np.ndarray) -> np.ndarray:
    matrix = np.asarray(vectors, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise IndexError_("index needs a non-empty (N, D) vector matrix")
    return matrix


def _normalise(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


class ExactIndex:
    """Brute-force cosine index -- the recall=1 reference."""

    def __init__(self, vectors: np.ndarray):
        self._vectors = _normalise(_as_matrix(vectors))

    def __len__(self) -> int:
        return self._vectors.shape[0]

    def search(self, query: np.ndarray, k: int = 1) -> list[int]:
        """Ids of the ``k`` most cosine-similar vectors."""
        query = np.asarray(query, dtype=np.float64)
        norm = np.linalg.norm(query)
        if norm > 0:
            query = query / norm
        similarities = self._vectors @ query
        k = min(k, len(self))
        top = np.argpartition(-similarities, k - 1)[:k]
        return [int(i) for i in top[np.argsort(-similarities[top])]]


class LSHIndex:
    """Random-hyperplane LSH for cosine similarity.

    Parameters
    ----------
    vectors:
        ``(N, D)`` pool.
    num_tables:
        Independent hash tables; more tables = higher recall.
    num_bits:
        Hyperplanes per table; more bits = smaller buckets.
    seed:
        Hyperplane seed.
    """

    def __init__(self, vectors: np.ndarray, num_tables: int = 8,
                 num_bits: int = 12, seed: int = 0):
        if num_tables < 1 or num_bits < 1:
            raise IndexError_("num_tables and num_bits must be positive")
        self._vectors = _normalise(_as_matrix(vectors))
        dim = self._vectors.shape[1]
        rng = make_rng(seed, "lsh-hyperplanes")
        self._planes = [
            rng.standard_normal((dim, num_bits)) for _ in range(num_tables)
        ]
        self._tables: list[dict[int, list[int]]] = []
        for planes in self._planes:
            table: dict[int, list[int]] = {}
            codes = self._hash(self._vectors, planes)
            for index, code in enumerate(codes):
                table.setdefault(int(code), []).append(index)
            self._tables.append(table)

    @staticmethod
    def _hash(matrix: np.ndarray, planes: np.ndarray) -> np.ndarray:
        bits = (matrix @ planes) > 0
        weights = 1 << np.arange(bits.shape[1])
        return bits @ weights

    def __len__(self) -> int:
        return self._vectors.shape[0]

    def candidates(self, query: np.ndarray) -> list[int]:
        """Union of the query's buckets across all tables."""
        query = np.asarray(query, dtype=np.float64)[np.newaxis, :]
        seen: dict[int, None] = {}
        for planes, table in zip(self._planes, self._tables):
            code = int(self._hash(query, planes)[0])
            for index in table.get(code, ()):
                seen.setdefault(index, None)
        return list(seen)

    def search(self, query: np.ndarray, k: int = 1) -> list[int]:
        """Top-k by exact rescoring of the LSH candidate set; falls
        back to brute force when the buckets come up empty."""
        candidates = self.candidates(query)
        if not candidates:
            return ExactIndex(self._vectors).search(query, k)
        query = np.asarray(query, dtype=np.float64)
        norm = np.linalg.norm(query)
        if norm > 0:
            query = query / norm
        similarities = self._vectors[candidates] @ query
        order = np.argsort(-similarities)[:k]
        return [candidates[int(i)] for i in order]


class IVFFlatIndex:
    """Inverted-file index with k-means coarse quantizer.

    Parameters
    ----------
    vectors:
        ``(N, D)`` pool.
    num_cells:
        Coarse centroids (inverted lists).
    nprobe:
        Cells probed per query.
    """

    def __init__(self, vectors: np.ndarray, num_cells: int = 16,
                 nprobe: int = 2, kmeans_iters: int = 10, seed: int = 0):
        if num_cells < 1 or nprobe < 1:
            raise IndexError_("num_cells and nprobe must be positive")
        self._vectors = _normalise(_as_matrix(vectors))
        count = self._vectors.shape[0]
        self.num_cells = min(num_cells, count)
        self.nprobe = min(nprobe, self.num_cells)
        rng = make_rng(seed, "ivf-kmeans")
        initial = rng.choice(count, size=self.num_cells, replace=False)
        self._centroids = self._vectors[initial].copy()
        assignment = np.zeros(count, dtype=np.int64)
        for _ in range(kmeans_iters):
            similarities = self._vectors @ self._centroids.T
            assignment = np.argmax(similarities, axis=1)
            for cell in range(self.num_cells):
                members = self._vectors[assignment == cell]
                if len(members):
                    centroid = members.mean(axis=0)
                    norm = np.linalg.norm(centroid)
                    if norm > 0:
                        self._centroids[cell] = centroid / norm
        self._lists: list[list[int]] = [[] for _ in range(self.num_cells)]
        for index, cell in enumerate(assignment):
            self._lists[int(cell)].append(index)

    def __len__(self) -> int:
        return self._vectors.shape[0]

    def search(self, query: np.ndarray, k: int = 1) -> list[int]:
        """Top-k by exact rescoring inside the ``nprobe`` nearest
        cells."""
        query = np.asarray(query, dtype=np.float64)
        norm = np.linalg.norm(query)
        if norm > 0:
            query = query / norm
        cell_order = np.argsort(-(self._centroids @ query))
        candidates: list[int] = []
        for cell in cell_order[: self.nprobe]:
            candidates.extend(self._lists[int(cell)])
        if not candidates:
            return ExactIndex(self._vectors).search(query, k)
        similarities = self._vectors[candidates] @ query
        order = np.argsort(-similarities)[:k]
        return [candidates[int(i)] for i in order]


def recall_at_k(index, reference: ExactIndex, queries: np.ndarray,
                k: int = 1) -> float:
    """Fraction of queries whose top-k hits intersect the exact
    top-k -- the standard ANN recall metric."""
    hits = 0
    for query in queries:
        approx = set(index.search(query, k))
        exact = set(reference.search(query, k))
        hits += bool(approx & exact)
    return hits / len(queries)
