"""In-context example retrievers.

Each retriever holds a pool of training samples and, given a query
video (and the chain's generated description), returns the in-context
examples the pipeline conditions its assessment on.  The three
strategies mirror Table VII: random assignment, nearest-neighbour in
vision-embedding space, nearest-neighbour in description-embedding
space.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.cot.incontext import InContextExample
from repro.datasets.base import Sample
from repro.errors import ModelError
from repro.facs.descriptions import FacialDescription
from repro.model.foundation import FoundationModel
from repro.model.generation import GREEDY
from repro.retrieval.encoders import (
    DescriptionEncoder,
    VisionEncoder,
    cosine_similarity,
)
from repro.rng import derive_seed, make_rng
from repro.video.frame import Video


class Retriever(ABC):
    """Base retriever over a training pool.

    The pool stores, per sample, the *model-generated* description
    (what would sit in the prompt) and the ground-truth label.
    """

    name: str = "retriever"

    def __init__(self, model: FoundationModel, pool: list[Sample],
                 num_examples: int = 1, seed: int = 0):
        if not pool:
            raise ModelError("retriever pool must not be empty")
        self.model = model
        self.num_examples = num_examples
        self.seed = seed
        self._pool = pool
        self._descriptions = [
            model.describe(sample.video, GREEDY)
            for sample in pool
        ]
        self._labels = [sample.label for sample in pool]

    def _example(self, index: int) -> InContextExample:
        return InContextExample(
            description=self._descriptions[index],
            label=self._labels[index],
        )

    @abstractmethod
    def retrieve(self, video: Video,
                 description: FacialDescription) -> list[InContextExample]:
        """In-context examples for one query."""


class RandomRetriever(Retriever):
    """Random example assignment (deterministic per query video)."""

    name = "Random"

    def retrieve(self, video: Video,
                 description: FacialDescription) -> list[InContextExample]:
        rng = make_rng(derive_seed(self.seed, f"random:{video.video_id}"),
                       "pick")
        indices = rng.choice(len(self._pool),
                             size=min(self.num_examples, len(self._pool)),
                             replace=False)
        return [self._example(int(i)) for i in indices]


class VisionRetriever(Retriever):
    """Retrieve-by-vision: nearest neighbours in Videoformer-lite
    embedding space."""

    name = "Retrieve-by-vision"

    def __init__(self, model: FoundationModel, pool: list[Sample],
                 num_examples: int = 1, seed: int = 0,
                 encoder: VisionEncoder | None = None):
        super().__init__(model, pool, num_examples, seed)
        self.encoder = encoder or VisionEncoder(seed=seed)
        self._embeddings = np.stack([
            self.encoder.encode(sample.video) for sample in pool
        ])

    def retrieve(self, video: Video,
                 description: FacialDescription) -> list[InContextExample]:
        query = self.encoder.encode(video)
        similarities = np.array([
            cosine_similarity(query, embedding)
            for embedding in self._embeddings
        ])
        best = np.argsort(-similarities)[: self.num_examples]
        return [self._example(int(i)) for i in best]


class DescriptionRetriever(Retriever):
    """Retrieve-by-description: nearest neighbours in BERT-lite
    embedding space over the model's own descriptions."""

    name = "Retrieve-by-description"

    def __init__(self, model: FoundationModel, pool: list[Sample],
                 num_examples: int = 1, seed: int = 0,
                 encoder: DescriptionEncoder | None = None):
        super().__init__(model, pool, num_examples, seed)
        self.encoder = encoder or DescriptionEncoder()
        self._embeddings = np.stack([
            self.encoder.encode(desc.render())
            for desc in self._descriptions
        ])

    def retrieve(self, video: Video,
                 description: FacialDescription) -> list[InContextExample]:
        query = self.encoder.encode(description.render())
        similarities = np.array([
            cosine_similarity(query, embedding)
            for embedding in self._embeddings
        ])
        best = np.argsort(-similarities)[: self.num_examples]
        return [self._example(int(i)) for i in best]


class IndexedDescriptionRetriever(DescriptionRetriever):
    """Retrieve-by-description over an ANN index.

    The paper's closing remark calls for "more efficient data
    management and retrieval techniques to support large-scale
    in-context example resource"; this retriever answers queries in
    sub-linear time through an LSH or IVF-Flat index
    (:mod:`repro.retrieval.index`) at a small recall cost.
    """

    name = "Retrieve-by-description (indexed)"

    def __init__(self, model: FoundationModel, pool: list[Sample],
                 num_examples: int = 1, seed: int = 0,
                 encoder: DescriptionEncoder | None = None,
                 index_kind: str = "ivf"):
        super().__init__(model, pool, num_examples, seed, encoder)
        from repro.retrieval.index import IVFFlatIndex, LSHIndex

        if index_kind == "ivf":
            self._index = IVFFlatIndex(
                self._embeddings,
                num_cells=max(4, len(pool) // 16),
                nprobe=2, seed=seed,
            )
        elif index_kind == "lsh":
            self._index = LSHIndex(self._embeddings, seed=seed)
        else:
            raise ModelError(f"unknown index kind {index_kind!r}")

    def retrieve(self, video: Video,
                 description: FacialDescription) -> list[InContextExample]:
        query = self.encoder.encode(description.render())
        best = self._index.search(query, k=self.num_examples)
        return [self._example(int(i)) for i in best]
