"""Frame perturbation primitives.

Two protocols in the paper remove visual evidence from a frame:

- the *deletion metric* (Section IV-H) places Gaussian noise on the
  top-scoring SLIC segments named by an explainer
  (:func:`gaussian_perturb_segments`);
- the *rationale self-verification* (Section III-D) places a mosaic on
  the facial region named by a highlighted description
  (:func:`mosaic_region`).

All functions return new arrays; inputs are never modified.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ExplainerError
from repro.facs.regions import FacialRegion


def _validate_frame(frame: np.ndarray) -> np.ndarray:
    frame = np.asarray(frame, dtype=np.float64)
    if frame.ndim != 2:
        raise ExplainerError(f"expected a 2-D frame, got shape {frame.shape}")
    return frame


def gaussian_perturb_segments(
    frame: np.ndarray,
    labels: np.ndarray,
    segment_ids: Iterable[int],
    rng: np.random.Generator,
    noise_scale: float = 0.35,
    mode: str = "replace",
) -> np.ndarray:
    """Place Gaussian noise on the pixels of the given SLIC segments.

    Parameters
    ----------
    frame:
        ``(H, W)`` image in ``[0, 1]``.
    labels:
        SLIC label map from :func:`repro.video.segmentation.slic_segments`.
    segment_ids:
        Segment labels to disturb.
    rng:
        Noise source (callers pass a scoped generator so evaluation is
        reproducible).
    noise_scale:
        Noise standard deviation.
    mode:
        ``"replace"`` (default) overwrites the segment with mid-gray
        plus noise -- the *deletion* semantics of the Table II
        protocol, where disturbing a segment destroys its information.
        ``"additive"`` adds noise on top of the original pixels.
    """
    frame = _validate_frame(frame)
    if labels.shape != frame.shape:
        raise ExplainerError("labels must have the same shape as the frame")
    if mode not in ("replace", "additive"):
        raise ExplainerError(f"unknown perturbation mode {mode!r}")
    mask = np.isin(labels, np.fromiter(segment_ids, dtype=np.int64))
    perturbed = frame.copy()
    noise = rng.normal(0.0, noise_scale, int(mask.sum()))
    if mode == "replace":
        perturbed[mask] = 0.5 + noise
    else:
        perturbed[mask] += noise
    return np.clip(perturbed, 0.0, 1.0)


def zero_segments(frame: np.ndarray, labels: np.ndarray,
                  segment_ids: Iterable[int], fill: float = 0.5) -> np.ndarray:
    """Replace the given segments with a flat ``fill`` value.

    Used by the mask-based explainers (LIME / SHAP / SOBOL), which
    evaluate the model on frames with feature subsets switched off.
    """
    frame = _validate_frame(frame)
    if labels.shape != frame.shape:
        raise ExplainerError("labels must have the same shape as the frame")
    mask = np.isin(labels, np.fromiter(segment_ids, dtype=np.int64))
    blanked = frame.copy()
    blanked[mask] = fill
    return blanked


def apply_mask(frame: np.ndarray, labels: np.ndarray, keep: np.ndarray,
               fill: float = 0.5) -> np.ndarray:
    """Blank every segment whose entry in ``keep`` is falsy.

    ``keep`` is a per-segment boolean/0-1 vector, the natural encoding
    for perturbation-based explainers.
    """
    frame = _validate_frame(frame)
    keep = np.asarray(keep)
    num_labels = int(labels.max()) + 1
    if keep.shape != (num_labels,):
        raise ExplainerError(
            f"keep must have one entry per segment ({num_labels}), "
            f"got shape {keep.shape}"
        )
    dropped = np.where(keep <= 0.5)[0]
    if dropped.size == 0:
        return frame.copy()
    return zero_segments(frame, labels, dropped, fill=fill)


def apply_masks_batch(frame: np.ndarray, labels: np.ndarray,
                      keeps: np.ndarray, fill: float = 0.5) -> np.ndarray:
    """Vectorized :func:`apply_mask` over a ``(N, S)`` keep matrix.

    Returns a ``(N, H, W)`` stack where row ``i`` equals
    ``apply_mask(frame, labels, keeps[i], fill)``.  Building the whole
    perturbation batch in one broadcast is what lets the explainers
    submit their masks to the model in a single batched call.
    """
    frame = _validate_frame(frame)
    keeps = np.atleast_2d(np.asarray(keeps))
    num_labels = int(labels.max()) + 1
    if keeps.shape[1] != num_labels:
        raise ExplainerError(
            f"keeps must have one column per segment ({num_labels}), "
            f"got shape {keeps.shape}"
        )
    kept = keeps[:, labels] > 0.5          # (N, H, W) per-pixel keep map
    return np.where(kept, frame[np.newaxis, :, :], fill)


def zero_segments_batch(frame: np.ndarray, labels: np.ndarray,
                        fill: float = 0.5) -> np.ndarray:
    """One-blanked-segment-per-row stack, shape ``(S, H, W)``.

    Row ``s`` equals ``zero_segments(frame, labels, [s], fill)`` -- the
    full leave-one-out sweep the occlusion explainer evaluates.
    """
    frame = _validate_frame(frame)
    if labels.shape != frame.shape:
        raise ExplainerError("labels must have the same shape as the frame")
    num_labels = int(labels.max()) + 1
    blank = labels[np.newaxis, :, :] == np.arange(num_labels)[:, None, None]
    return np.where(blank, fill, frame[np.newaxis, :, :])


def mosaic_region(frame: np.ndarray, region: FacialRegion,
                  block_size: int = 8) -> np.ndarray:
    """Pixelate (mosaic) a facial region, as in the paper's Figure 5
    self-verification: "place mosaic on the exact region of each
    frame"."""
    frame = _validate_frame(frame)
    if block_size < 1:
        raise ExplainerError("block_size must be positive")
    mask = region.mask(frame.shape[0])
    mosaicked = frame.copy()
    rows, cols = np.where(mask)
    r0, r1 = rows.min(), rows.max() + 1
    c0, c1 = cols.min(), cols.max() + 1
    for br in range(r0, r1, block_size):
        for bc in range(c0, c1, block_size):
            block = mosaicked[br:min(br + block_size, r1),
                              bc:min(bc + block_size, c1)]
            block[...] = block.mean()
    return mosaicked
