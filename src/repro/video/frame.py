"""Video value types.

A :class:`VideoSpec` is the *latent* description of a synthetic clip --
per-frame action-unit intensities, subject identity, capture-noise
parameters -- and a :class:`Video` couples a spec with a renderer so
frames are produced lazily.  Datasets store specs (cheap) and render
pixels only when a consumer needs them, which keeps the full
2092-sample UVSD corpus in memory at trivial cost while every consumer
still works on genuine pixel arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.facs.action_units import NUM_AUS
from repro.facs.regions import FRAME_SIZE

#: Dimensionality of the identity embedding used by the renderer.
IDENTITY_DIM: int = 8

#: Default number of frames per synthetic clip.
DEFAULT_NUM_FRAMES: int = 12


@dataclass(frozen=True)
class VideoSpec:
    """Latent description of one synthetic face clip.

    Attributes
    ----------
    video_id:
        Unique id within its dataset, e.g. ``"uvsd-0042"``.
    subject_id:
        Id of the recorded subject (used for subject-aware splits).
    au_intensities:
        ``(num_frames, 12)`` array of per-frame AU intensities in
        ``[0, 1]``.
    identity:
        ``(IDENTITY_DIM,)`` identity embedding controlling the base
        face appearance.
    lighting:
        Strength of the lighting gradient across the face.
    noise_scale:
        Standard deviation of additive sensor noise.
    occlusion_rate:
        Probability that a frame carries a partial occlusion patch
        (non-zero for the in-the-wild RSL dataset).
    seed:
        Render seed; together with the spec it fully determines every
        pixel.
    """

    video_id: str
    subject_id: str
    au_intensities: np.ndarray
    identity: np.ndarray
    lighting: float = 0.0
    noise_scale: float = 0.02
    occlusion_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        au = np.asarray(self.au_intensities, dtype=np.float64)
        if au.ndim != 2 or au.shape[1] != NUM_AUS:
            raise ValueError(
                f"au_intensities must be (num_frames, {NUM_AUS}), got {au.shape}"
            )
        if not np.isfinite(au).all():
            raise ValueError("au_intensities must be finite")
        if np.any(au < 0.0) or np.any(au > 1.0):
            raise ValueError("au_intensities must lie in [0, 1]")
        identity = np.asarray(self.identity, dtype=np.float64)
        if identity.shape != (IDENTITY_DIM,):
            raise ValueError(
                f"identity must be ({IDENTITY_DIM},), got {identity.shape}"
            )
        if self.noise_scale < 0.0:
            raise ValueError("noise_scale must be non-negative")
        if not 0.0 <= self.occlusion_rate <= 1.0:
            raise ValueError("occlusion_rate must lie in [0, 1]")
        object.__setattr__(self, "au_intensities", au)
        object.__setattr__(self, "identity", identity)

    @property
    def num_frames(self) -> int:
        return self.au_intensities.shape[0]

    def mean_au_intensities(self) -> np.ndarray:
        """Average AU intensity over the clip (12-dim)."""
        return self.au_intensities.mean(axis=0)

    def peak_au_vector(self, threshold: float = 0.5) -> np.ndarray:
        """Binary AU occurrence vector: AU fired in any frame above
        ``threshold``.  This is the ground-truth label space used by
        the instruction-tuning dataset."""
        return (self.au_intensities.max(axis=0) >= threshold).astype(np.float64)


class Video:
    """A lazily-rendered synthetic face clip.

    Frames are rendered on first access and cached; rendering is fully
    deterministic given the spec (including its seed).
    """

    def __init__(self, spec: VideoSpec, renderer: "FaceRenderer | None" = None):
        from repro.video.face_synth import default_renderer

        self.spec = spec
        self._renderer = renderer if renderer is not None else default_renderer()
        self._frame_cache: dict[int, np.ndarray] = {}
        self._slic_cache: dict[int, np.ndarray] = {}

    # -- identity ------------------------------------------------------

    @property
    def video_id(self) -> str:
        return self.spec.video_id

    @property
    def subject_id(self) -> str:
        return self.spec.subject_id

    @property
    def num_frames(self) -> int:
        return self.spec.num_frames

    @property
    def frame_size(self) -> int:
        return self._renderer.frame_size

    # -- rendering -----------------------------------------------------

    def frame(self, index: int) -> np.ndarray:
        """Render (and cache) frame ``index`` as ``(H, W)`` float64."""
        if not 0 <= index < self.num_frames:
            raise IndexError(
                f"frame index {index} out of range [0, {self.num_frames})"
            )
        cached = self._frame_cache.get(index)
        if cached is None:
            cached = self._renderer.render(self.spec, index)
            self._frame_cache[index] = cached
        return cached

    def frames(self) -> np.ndarray:
        """Render all frames as ``(T, H, W)``."""
        return np.stack([self.frame(t) for t in range(self.num_frames)])

    @cached_property
    def keyframes(self) -> tuple[np.ndarray, np.ndarray]:
        """The (most-expressive, least-expressive) frame pair.

        The paper feeds only this pair to the model ("we extract the
        frame with the most expressive face f_e, and the frame with
        the least expressive face f_l following Zhang et al.").
        """
        from repro.video.keyframes import extract_keyframes

        expressive_idx, neutral_idx = extract_keyframes(self.spec)
        return self.frame(expressive_idx), self.frame(neutral_idx)

    def segmentation(self, num_segments: int = 64) -> np.ndarray:
        """SLIC segmentation of the most-expressive keyframe (cached:
        it is deterministic, and every faithfulness protocol reuses
        it)."""
        cached = self._slic_cache.get(num_segments)
        if cached is None:
            from repro.video.segmentation import slic_segments

            expressive, __ = self.keyframes
            cached = slic_segments(expressive, num_segments)
            self._slic_cache[num_segments] = cached
        return cached

    def drop_frame_cache(self) -> None:
        """Release cached pixel data (specs stay, frames re-render)."""
        self._frame_cache.clear()
        self._slic_cache.clear()
        self.__dict__.pop("keyframes", None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Video(id={self.video_id!r}, subject={self.subject_id!r}, "
            f"frames={self.num_frames})"
        )
