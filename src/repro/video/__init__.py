"""Synthetic face-video substrate.

The paper's pipeline consumes real face video; this package supplies
the closest synthetic equivalent (see DESIGN.md section 2): a
parametric face renderer whose frames carry spatially-localised
action-unit evidence, plus everything the evaluation protocol needs on
top of raw frames -- most/least-expressive keyframe extraction, SLIC
superpixel segmentation, region/segment perturbation, and a landmark
model for grounding highlighted facial actions to segments.
"""

from repro.video.face_synth import FaceRenderer, default_renderer
from repro.video.frame import Video, VideoSpec
from repro.video.keyframes import expressiveness, extract_keyframes
from repro.video.landmarks import landmark_for_region, segments_for_au
from repro.video.perturb import (
    gaussian_perturb_segments,
    mosaic_region,
    zero_segments,
)
from repro.video.segmentation import slic_segments

__all__ = [
    "FaceRenderer",
    "Video",
    "VideoSpec",
    "default_renderer",
    "expressiveness",
    "extract_keyframes",
    "gaussian_perturb_segments",
    "landmark_for_region",
    "mosaic_region",
    "segments_for_au",
    "slic_segments",
    "zero_segments",
]
