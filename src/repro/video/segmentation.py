"""SLIC superpixel segmentation.

The paper's interpretability protocol (Section IV-H) segments the
most-expressive frame into 64 SLIC superpixels and perturbs the
top-scoring segments named by each explainer.  This module implements
SLIC (Achanta et al., 2012) from scratch for single-channel images:
k-means in a joint (intensity, row, col) feature space with cluster
centres initialised on a regular grid and a restricted 2S x 2S search
window, followed by a connectivity-enforcement pass that absorbs
orphaned fragments into their largest neighbour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExplainerError


def _grid_centers(height: int, width: int, num_segments: int) -> np.ndarray:
    """Regular-grid initial cluster centres, shape (k, 2) of (row, col)."""
    grid = int(np.ceil(np.sqrt(num_segments)))
    rows = np.linspace(0, height - 1, grid + 2)[1:-1]
    cols = np.linspace(0, width - 1, grid + 2)[1:-1]
    centers = [(r, c) for r in rows for c in cols]
    return np.asarray(centers[:num_segments], dtype=np.float64)


def slic_segments(
    image: np.ndarray,
    num_segments: int = 64,
    compactness: float = 0.2,
    num_iters: int = 5,
) -> np.ndarray:
    """Segment a grayscale image into SLIC superpixels.

    Parameters
    ----------
    image:
        ``(H, W)`` array in ``[0, 1]``.
    num_segments:
        Target number of superpixels (the paper uses 64).
    compactness:
        Weight of spatial proximity relative to intensity similarity.
        Larger values give more regular, grid-like segments.
    num_iters:
        Number of assignment/update sweeps.

    Returns
    -------
    numpy.ndarray
        ``(H, W)`` int array of contiguous segment labels in
        ``[0, num_labels)``; ``num_labels <= num_segments``.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ExplainerError(f"slic expects a 2-D image, got shape {image.shape}")
    height, width = image.shape
    if num_segments < 1:
        raise ExplainerError("num_segments must be positive")
    if num_segments > height * width:
        raise ExplainerError("more segments requested than pixels available")

    centers_pos = _grid_centers(height, width, num_segments)
    k = centers_pos.shape[0]
    center_rows = centers_pos[:, 0].astype(int)
    center_cols = centers_pos[:, 1].astype(int)
    centers_val = image[center_rows, center_cols].astype(np.float64)

    step = max(1.0, np.sqrt(height * width / k))
    spatial_weight = compactness / step

    rows, cols = np.mgrid[0:height, 0:width].astype(np.float64)
    labels = np.zeros((height, width), dtype=np.int64)
    best_dist = np.full((height, width), np.inf)

    for _ in range(num_iters):
        best_dist.fill(np.inf)
        for ci in range(k):
            r, c = centers_pos[ci]
            r0 = max(0, int(r - 2 * step))
            r1 = min(height, int(r + 2 * step) + 1)
            c0 = max(0, int(c - 2 * step))
            c1 = min(width, int(c + 2 * step) + 1)
            window_val = image[r0:r1, c0:c1]
            window_rows = rows[r0:r1, c0:c1]
            window_cols = cols[r0:r1, c0:c1]
            dist = (window_val - centers_val[ci]) ** 2 + (
                spatial_weight**2
            ) * ((window_rows - r) ** 2 + (window_cols - c) ** 2)
            window_best = best_dist[r0:r1, c0:c1]
            better = dist < window_best
            window_best[better] = dist[better]
            labels[r0:r1, c0:c1][better] = ci
        # Update centres from current assignment.
        for ci in range(k):
            mask = labels == ci
            if not mask.any():
                continue
            centers_pos[ci, 0] = rows[mask].mean()
            centers_pos[ci, 1] = cols[mask].mean()
            centers_val[ci] = image[mask].mean()

    return _enforce_connectivity(labels)


def _enforce_connectivity(labels: np.ndarray) -> np.ndarray:
    """Relabel so every segment is a single 4-connected component and
    labels are contiguous starting at 0."""
    height, width = labels.shape
    component = -np.ones_like(labels)
    next_label = 0
    # Flood-fill each connected component of equal original label.
    for start_r in range(height):
        for start_c in range(width):
            if component[start_r, start_c] != -1:
                continue
            original = labels[start_r, start_c]
            stack = [(start_r, start_c)]
            component[start_r, start_c] = next_label
            pixels = [(start_r, start_c)]
            while stack:
                r, c = stack.pop()
                for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
                    if (
                        0 <= nr < height
                        and 0 <= nc < width
                        and component[nr, nc] == -1
                        and labels[nr, nc] == original
                    ):
                        component[nr, nc] = next_label
                        stack.append((nr, nc))
                        pixels.append((nr, nc))
            next_label += 1
    # Absorb tiny fragments into a neighbouring component.
    min_size = max(4, labels.size // (next_label * 4) if next_label else 4)
    sizes = np.bincount(component.ravel(), minlength=next_label)
    for label in range(next_label):
        if sizes[label] >= min_size:
            continue
        mask = component == label
        neighbour = _dominant_neighbour(component, mask)
        if neighbour is not None:
            component[mask] = neighbour
            sizes[neighbour] += sizes[label]
            sizes[label] = 0
    # Make labels contiguous.
    unique = np.unique(component)
    remap = {old: new for new, old in enumerate(unique)}
    flat = component.ravel()
    remapped = np.array([remap[v] for v in flat], dtype=np.int64)
    return remapped.reshape(labels.shape)


def _dominant_neighbour(component: np.ndarray, mask: np.ndarray) -> int | None:
    """Most frequent component label adjacent to ``mask`` (4-conn)."""
    height, width = component.shape
    counts: dict[int, int] = {}
    rows, cols = np.where(mask)
    for r, c in zip(rows, cols):
        for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
            if 0 <= nr < height and 0 <= nc < width and not mask[nr, nc]:
                label = int(component[nr, nc])
                counts[label] = counts.get(label, 0) + 1
    if not counts:
        return None
    return max(counts, key=counts.get)


def segment_masks(labels: np.ndarray) -> list[np.ndarray]:
    """Boolean mask per segment label, ordered by label id."""
    return [labels == label for label in range(int(labels.max()) + 1)]
