"""Parametric synthetic face renderer.

The renderer turns a :class:`~repro.video.frame.VideoSpec` plus a frame
index into a ``(H, W)`` grayscale image.  Its one essential property
(DESIGN.md section 2) is that *action-unit evidence is spatially
localised*: each AU contributes a fixed smooth deformation pattern
confined to that AU's facial region, scaled by the per-frame intensity
and the subject's expressivity.  Masking a region therefore genuinely
removes the corresponding AU's evidence, which is what makes the
deletion-metric faithfulness protocol (paper Table II) and the
rationale mosaic test (Section III-D) behave as they do on real video.

The "physics" of the synthetic world -- the base face, identity bases
and AU deformation patterns -- are generated once from a fixed world
seed that is deliberately *not* configurable: every dataset and model
in the library shares the same visual world.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.facs.action_units import AU_IDS, NUM_AUS
from repro.facs.regions import FRAME_SIZE, REGIONS, region_for_au
from repro.rng import make_rng
from repro.video.frame import IDENTITY_DIM, VideoSpec

#: Seed of the shared visual world (base face, AU patterns).
_WORLD_SEED: int = 727

#: Peak contribution of a fully-active AU, in intensity units.
_AU_GAIN: float = 0.38

#: Peak contribution of the identity embedding.
_IDENTITY_GAIN: float = 0.06


def _smooth_pattern(rng: np.random.Generator, shape: tuple[int, int],
                    sigma: float) -> np.ndarray:
    """A zero-mean, unit-peak smooth random pattern."""
    raw = rng.standard_normal(shape)
    smooth = gaussian_filter(raw, sigma=sigma)
    smooth -= smooth.mean()
    peak = np.abs(smooth).max()
    if peak > 0:
        smooth /= peak
    return smooth


def _base_face(size: int) -> np.ndarray:
    """Canonical neutral face: an elliptical face blob with darker
    eye/brow/mouth zones, on a mid-gray background."""
    rows, cols = np.mgrid[0:size, 0:size].astype(np.float64)
    center_r, center_c = size * 0.52, size * 0.5
    face = ((rows - center_r) / (size * 0.46)) ** 2 + (
        (cols - center_c) / (size * 0.38)
    ) ** 2
    image = np.full((size, size), 0.25)
    image[face <= 1.0] = 0.75
    scale = size / FRAME_SIZE
    for key in ("eyebrow", "lid", "lips"):
        region = REGIONS[key]
        mask = region.mask(size)
        image[mask] -= 0.18
    # Slight nose shading.
    image[REGIONS["nose"].mask(size)] -= 0.08
    return gaussian_filter(image, sigma=1.2 * scale)


class FaceRenderer:
    """Renders video specs into grayscale frames.

    Parameters
    ----------
    frame_size:
        Side length of rendered frames (the paper resizes to 96).
    """

    def __init__(self, frame_size: int = FRAME_SIZE):
        if frame_size < 16:
            raise ValueError("frame_size must be at least 16 pixels")
        self.frame_size = frame_size
        world = make_rng(_WORLD_SEED, f"face-world-{frame_size}")
        self._base = _base_face(frame_size)
        sigma = 2.0 * frame_size / FRAME_SIZE
        # Identity bases: smooth whole-face appearance modes.
        self._identity_basis = np.stack([
            _smooth_pattern(world, (frame_size, frame_size), sigma * 2.5)
            for _ in range(IDENTITY_DIM)
        ])
        # AU deformation patterns: a smooth pattern concentrated in a
        # compact blob around the AU's landmark point inside its
        # region.  Compactness matters: on a real face each action
        # unit manifests at a localised landmark (inner brow, lip
        # corner, ...), which is what lets the paper ground one
        # highlighted action to one SLIC segment.
        self._au_patterns = np.zeros((NUM_AUS, frame_size, frame_size))
        self._au_anchors: dict[int, tuple[int, int]] = {}
        rows, cols = np.mgrid[0:frame_size, 0:frame_size].astype(np.float64)
        blob_sigma = 5.0 * frame_size / FRAME_SIZE
        for i, au_id in enumerate(AU_IDS):
            region = region_for_au(au_id)
            mask = region.mask(frame_size)
            scale_f = frame_size / FRAME_SIZE
            margin = 4 * scale_f
            anchor_r = world.uniform(region.row_start * scale_f + margin,
                                     region.row_stop * scale_f - margin)
            anchor_c = world.uniform(region.col_start * scale_f + margin,
                                     region.col_stop * scale_f - margin)
            self._au_anchors[au_id] = (int(anchor_r), int(anchor_c))
            window = np.exp(
                -((rows - anchor_r) ** 2 + (cols - anchor_c) ** 2)
                / (2.0 * blob_sigma**2)
            )
            pattern = _smooth_pattern(world, (frame_size, frame_size), sigma)
            pattern = pattern * window * mask
            peak = np.abs(pattern).max()
            if peak > 0:
                pattern /= peak
            self._au_patterns[i] = pattern

    # -- public API ----------------------------------------------------

    def render(self, spec: VideoSpec, frame_index: int) -> np.ndarray:
        """Render frame ``frame_index`` of ``spec`` as ``(H, W)`` float64
        in ``[0, 1]``."""
        if not 0 <= frame_index < spec.num_frames:
            raise IndexError(
                f"frame index {frame_index} out of range [0, {spec.num_frames})"
            )
        frame = self._base.copy()
        # Identity appearance.
        frame += _IDENTITY_GAIN * np.tensordot(
            spec.identity, self._identity_basis, axes=1
        )
        # Action-unit deformations.
        intensities = spec.au_intensities[frame_index]
        frame += _AU_GAIN * np.tensordot(intensities, self._au_patterns, axes=1)
        # Lighting gradient (left-to-right).
        if spec.lighting:
            gradient = np.linspace(-0.5, 0.5, self.frame_size)
            frame += spec.lighting * gradient[np.newaxis, :]
        # Per-frame capture noise and occlusion, seeded by the spec.
        rng = make_rng(spec.seed, f"render:{spec.video_id}:{frame_index}")
        if spec.noise_scale > 0:
            frame += rng.normal(0.0, spec.noise_scale, frame.shape)
        if spec.occlusion_rate > 0 and rng.random() < spec.occlusion_rate:
            frame = self._occlude(frame, rng)
        return np.clip(frame, 0.0, 1.0)

    def au_pattern(self, au_id: int) -> np.ndarray:
        """The (read-only) deformation pattern of ``au_id``."""
        pattern = self._au_patterns[AU_IDS.index(au_id)]
        view = pattern.view()
        view.flags.writeable = False
        return view

    # -- internals -----------------------------------------------------

    def _occlude(self, frame: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Overlay a flat occluder patch (hand, microphone, caption bar)."""
        size = self.frame_size
        height = int(rng.integers(size // 8, size // 4))
        width = int(rng.integers(size // 6, size // 3))
        row = int(rng.integers(0, size - height))
        col = int(rng.integers(0, size - width))
        occluded = frame.copy()
        occluded[row:row + height, col:col + width] = 0.5
        return occluded


@lru_cache(maxsize=4)
def _shared_renderer(frame_size: int) -> FaceRenderer:
    return FaceRenderer(frame_size)


def default_renderer(frame_size: int = FRAME_SIZE) -> FaceRenderer:
    """The process-wide shared renderer for ``frame_size``.

    Sharing matters: AU patterns are the world's physics, and building
    them is the only expensive part of rendering.
    """
    return _shared_renderer(frame_size)
