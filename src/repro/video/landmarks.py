"""Facial landmark model and rationale grounding.

Section IV-H: "after generating highlighted rationale R, we locate the
segment of each single facial action using the corresponding facial
landmark."  On the synthetic substrate the landmark of a facial region
is its geometric centre on the canonical layout; grounding a
highlighted action unit means finding the SLIC segments that overlap
that AU's region, ranked by overlap so the single best segment is the
one carrying most of the AU's evidence.
"""

from __future__ import annotations

import numpy as np

from repro.facs.regions import FacialRegion, region_by_key, region_for_au


def landmark_for_region(region_key: str, frame_size: int) -> tuple[int, int]:
    """The (row, col) landmark pixel of a facial region."""
    region = region_by_key(region_key)
    row, col = region.center
    scale = frame_size / 96.0
    return int(round(row * scale)), int(round(col * scale))


def au_landmark(au_id: int, frame_size: int) -> tuple[int, int]:
    """The landmark pixel of an action unit: where the action
    manifests most strongly on the canonical face (the peak of the
    world's deformation pattern for that AU)."""
    from repro.video.face_synth import default_renderer

    pattern = default_renderer(frame_size).au_pattern(au_id)
    row, col = np.unravel_index(int(np.argmax(np.abs(pattern))),
                                pattern.shape)
    return int(row), int(col)


def segments_for_au(au_id: int, labels: np.ndarray,
                    max_segments: int = 3) -> list[int]:
    """SLIC segments carrying the evidence of ``au_id``, best first.

    Section IV-H grounds each highlighted facial action to segments
    "using the corresponding facial landmark"; on the synthetic
    substrate the analog is the AU's deformation pattern: segments are
    ranked by how much of the action's visual energy they contain, so
    the top segment is the one whose perturbation removes the most
    evidence for that action.
    """
    from repro.video.face_synth import default_renderer

    frame_size = labels.shape[0]
    pattern = np.abs(default_renderer(frame_size).au_pattern(au_id))
    num_labels = int(labels.max()) + 1
    energy = np.bincount(labels.ravel(), weights=pattern.ravel(),
                         minlength=num_labels)
    ranked = [int(label) for label in np.argsort(-energy)
              if energy[label] > 0]
    if not ranked:
        row, col = au_landmark(au_id, frame_size)
        ranked = [int(labels[row, col])]
    return ranked[:max_segments]


def segments_for_region(region: FacialRegion, labels: np.ndarray,
                        max_segments: int = 3) -> list[int]:
    """Rank SLIC segments by overlap with a facial region."""
    frame_size = labels.shape[0]
    mask = region.mask(frame_size)
    num_labels = int(labels.max()) + 1
    inside = np.bincount(labels[mask].ravel(), minlength=num_labels).astype(float)
    total = np.bincount(labels.ravel(), minlength=num_labels).astype(float)
    overlap = np.divide(inside, total, out=np.zeros_like(inside),
                        where=total > 0)
    ranked = [int(label) for label in np.argsort(-overlap) if overlap[label] > 0]
    if not ranked:
        row, col = region.center
        scale = frame_size / 96.0
        ranked = [int(labels[int(row * scale), int(col * scale)])]
    return ranked[:max_segments]
