"""Most/least-expressive keyframe extraction.

Following Zhang et al. (TSDNET) -- and Section IV-H of the paper -- the
model input is reduced to two frames per clip: the most expressive
frame ``f_e`` and the least expressive frame ``f_l``.  On the synthetic
substrate the expressiveness of a frame is the total action-unit
intensity it carries, which is exactly what TSDNET's facial-emotion
scorer approximates on real video.
"""

from __future__ import annotations

import numpy as np

from repro.video.frame import VideoSpec


def expressiveness(spec: VideoSpec) -> np.ndarray:
    """Per-frame expressiveness score: total AU intensity, shape (T,)."""
    return spec.au_intensities.sum(axis=1)


def extract_keyframes(spec: VideoSpec) -> tuple[int, int]:
    """Return (most-expressive, least-expressive) frame indices.

    Ties resolve to the earliest frame, so extraction is deterministic.
    """
    scores = expressiveness(spec)
    return int(np.argmax(scores)), int(np.argmin(scores))
