"""Minimal numpy neural-network substrate.

The foundation-model simulator and supervised baselines are shallow
networks (linear heads, small MLPs, attention pooling) trained by
explicit backpropagation.  This package provides numerically-stable
tensor ops (:mod:`~repro.nn.tensorops`), layers with manual
forward/backward passes (:mod:`~repro.nn.layers`), optimizers
(:mod:`~repro.nn.optim`) and parameter (de)serialization
(:mod:`~repro.nn.serialization`).  No external ML framework is used.
"""

from repro.nn.layers import MLP, Linear, Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.serialization import load_params, save_params
from repro.nn.tensorops import (
    log_sigmoid,
    logsumexp,
    relu,
    sigmoid,
    softmax,
)

__all__ = [
    "Adam",
    "Linear",
    "MLP",
    "Parameter",
    "SGD",
    "load_params",
    "log_sigmoid",
    "logsumexp",
    "relu",
    "save_params",
    "sigmoid",
    "softmax",
]
