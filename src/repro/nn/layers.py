"""Layers with explicit forward/backward passes.

The layer protocol is deliberately simple: ``forward(x)`` caches what
the backward pass needs, ``backward(grad_out)`` accumulates parameter
gradients and returns the gradient w.r.t. the input, and
``parameters()`` exposes :class:`Parameter` objects for the optimizer.
Shapes are ``(batch, features)`` throughout.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensorops import relu
from repro.observability import profiling


class Parameter:
    """A trainable array with an accumulated gradient."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray):
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name!r}, shape={self.value.shape})"


class Module:
    """Base class providing parameter collection and grad reset."""

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                params.append(attr)
            elif isinstance(attr, Module):
                params.extend(attr.parameters())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name -> value mapping (names must be unique)."""
        state: dict[str, np.ndarray] = {}
        for param in self.parameters():
            if param.name in state:
                raise ValueError(f"duplicate parameter name {param.name!r}")
            state[param.name] = param.value.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for param in self.parameters():
            if param.name not in state:
                raise KeyError(f"missing parameter {param.name!r} in state")
            value = np.asarray(state[param.name], dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {param.name!r}: "
                    f"{value.shape} vs {param.value.shape}"
                )
            param.value = value.copy()
            param.grad = np.zeros_like(param.value)

    def copy(self) -> "Module":
        """A deep copy with independent parameters (frozen-reference
        models for DPO are made this way)."""
        import copy as _copy

        clone = _copy.deepcopy(self)
        clone.zero_grad()
        return clone


class Linear(Module):
    """Affine layer ``y = x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 name: str = "linear"):
        scale = 1.0 / np.sqrt(in_dim)
        self.weight = Parameter(f"{name}.weight",
                                rng.uniform(-scale, scale, (in_dim, out_dim)))
        self.bias = Parameter(f"{name}.bias", np.zeros(out_dim))
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Profiling hook guarded by a single global check: the layer
        # runs ~1e5 times per training run, so nothing may allocate on
        # the disabled path.
        if profiling.enabled():
            profiling.count(profiling.GEMM)
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.atleast_2d(np.asarray(grad_out, dtype=np.float64))
        self.weight.grad += self._input.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations."""

    def __init__(self, dims: list[int], rng: np.random.Generator,
                 name: str = "mlp"):
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self.layers = [
            Linear(dims[i], dims[i + 1], rng, name=f"{name}.{i}")
            for i in range(len(dims) - 1)
        ]
        self._preacts: list[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._preacts = []
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for i, layer in enumerate(self.layers):
            out = layer.forward(out)
            if i < len(self.layers) - 1:
                self._preacts.append(out)
                out = relu(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = np.atleast_2d(np.asarray(grad_out, dtype=np.float64))
        for i in reversed(range(len(self.layers))):
            if i < len(self.layers) - 1:
                grad = grad * (self._preacts[i] > 0)
            grad = self.layers[i].backward(grad)
        return grad

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
