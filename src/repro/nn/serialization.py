"""Parameter (de)serialization to ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers import Module


def save_params(module: Module, path: str | Path) -> None:
    """Save a module's parameters to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **module.state_dict())


def load_params(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_params` into ``module``.

    Raises
    ------
    FileNotFoundError
        If ``path`` does not exist.
    KeyError / ValueError
        If the archive is missing parameters or shapes mismatch.
    """
    path = Path(path)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
