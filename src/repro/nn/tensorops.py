"""Numerically-stable tensor operations.

All activation and normalisation math used by the library funnels
through these helpers so stability fixes live in one place.  Each
function accepts and returns ``numpy`` arrays and never modifies its
input.
"""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Elementwise logistic function, stable for large ``|x|``."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """``log(sigmoid(x))`` computed without overflow.

    Uses the identity ``log sigmoid(x) = min(x, 0) - log1p(exp(-|x|))``.
    """
    x = np.asarray(x, dtype=np.float64)
    return np.minimum(x, 0.0) - np.log1p(np.exp(-np.abs(x)))


def logit(p: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Inverse sigmoid with clamping away from {0, 1}."""
    p = np.clip(np.asarray(p, dtype=np.float64), eps, 1.0 - eps)
    return np.log(p) - np.log1p(-p)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def logsumexp(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable ``log(sum(exp(x)))`` along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    peak = x.max(axis=axis, keepdims=True)
    out = np.log(np.exp(x - peak).sum(axis=axis)) + np.squeeze(peak, axis=axis)
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer ``indices`` into ``num_classes`` columns."""
    indices = np.asarray(indices, dtype=np.int64)
    if np.any(indices < 0) or np.any(indices >= num_classes):
        raise ValueError("indices out of range for one_hot")
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., np.newaxis], 1.0, axis=-1)
    return out


def binary_cross_entropy_with_logits(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean BCE loss and its gradient w.r.t. the logits.

    Returns ``(loss, grad)`` where ``grad`` has the shape of ``logits``
    and already includes the ``1/N`` mean factor.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if logits.shape != targets.shape:
        raise ValueError(
            f"logits shape {logits.shape} != targets shape {targets.shape}"
        )
    probs = sigmoid(logits)
    loss = -(
        targets * log_sigmoid(logits) + (1.0 - targets) * log_sigmoid(-logits)
    ).mean()
    grad = (probs - targets) / logits.size
    return float(loss), grad
