"""First-order optimizers over :class:`~repro.nn.layers.Parameter`s."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.1,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.value -= self.lr * grad

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class Adam:
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            param.value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()
