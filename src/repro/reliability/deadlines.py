"""Request deadlines.

A :class:`Deadline` is an absolute point on the monotonic clock before
which a caller still wants its answer.  The micro-batcher sheds
requests whose deadline has passed *at batch-collection time* -- after
they are dequeued, before any executor work -- so the single model
worker never burns a forward pass for a caller that has already timed
out (DESIGN.md section 12 explains why shedding lives exactly there).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class Deadline:
    """An absolute expiry on the monotonic clock."""

    expires_at: float

    @classmethod
    def after_ms(cls, budget_ms: float,
                 now: float | None = None) -> "Deadline":
        """A deadline ``budget_ms`` from ``now`` (monotonic seconds)."""
        if budget_ms < 0:
            raise ConfigError(
                f"deadline budget must be >= 0 ms, got {budget_ms}")
        if now is None:
            now = time.monotonic()
        return cls(expires_at=now + budget_ms / 1000.0)

    def expired(self, now: float | None = None) -> bool:
        if now is None:
            now = time.monotonic()
        return now >= self.expires_at

    def remaining_s(self, now: float | None = None) -> float:
        """Seconds left (clamped at 0)."""
        if now is None:
            now = time.monotonic()
        return max(0.0, self.expires_at - now)
