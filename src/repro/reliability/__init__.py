"""Reliability: fault injection, deadlines, retry/breaker, checkpoints.

Nothing in a production service is allowed to fail *unpredictably*:
this package gives every failure mode in the stack a deterministic,
testable shape (DESIGN.md section 12):

- :mod:`repro.reliability.faults` -- named fault sites compiled into
  the hot paths, driven by a seeded :class:`FaultPlan` (programmatic
  or via the ``REPRO_FAULTS`` env spec); zero-cost no-op when no plan
  is armed.
- :mod:`repro.reliability.deadlines` -- monotonic-clock
  :class:`Deadline` objects; the micro-batcher sheds expired requests
  before any executor work.
- :mod:`repro.reliability.retry` -- :func:`retry_call` with seeded
  exponential backoff; errors retry iff they derive from
  :class:`~repro.errors.TransientError`.
- :mod:`repro.reliability.breaker` -- sliding-window
  :class:`CircuitBreaker` with half-open probing; the service can run
  cache-only degraded mode while open.
- :mod:`repro.reliability.checkpoint` -- stage-boundary
  :class:`TrainingCheckpointer` making ``SelfRefineTrainer.fit``
  resumable with bitwise-identical results.

Importing this package arms a fault plan from ``REPRO_FAULTS`` when
the variable is set (mirroring ``REPRO_TRACE``).
"""

from repro.errors import (
    CheckpointError,
    CircuitOpenError,
    DeadlineExceededError,
    FaultInjectedError,
    TransientError,
)
from repro.reliability.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.reliability.checkpoint import (
    CHECKPOINT_VERSION,
    STAGE_NAMES,
    TrainingCheckpointer,
    training_fingerprint,
)
from repro.reliability.deadlines import Deadline
from repro.reliability.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    SiteCounts,
    active_plan,
    configure_from_env,
    fault_point,
    injected,
    install_plan,
    uninstall_plan,
)
from repro.reliability.retry import RetryPolicy, is_retryable, retry_call

configure_from_env()

__all__ = [
    "BreakerConfig",
    "CHECKPOINT_VERSION",
    "CLOSED",
    "CheckpointError",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "FAULT_SITES",
    "FaultInjectedError",
    "FaultPlan",
    "FaultSpec",
    "HALF_OPEN",
    "OPEN",
    "RetryPolicy",
    "STAGE_NAMES",
    "SiteCounts",
    "TrainingCheckpointer",
    "TransientError",
    "active_plan",
    "configure_from_env",
    "fault_point",
    "injected",
    "install_plan",
    "is_retryable",
    "retry_call",
    "training_fingerprint",
    "uninstall_plan",
]
