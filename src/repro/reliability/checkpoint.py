"""Stage-boundary checkpoints for Algorithm 1.

The self-refine stages are by far the most expensive part of the
paper's pipeline, so :meth:`SelfRefineTrainer.fit` can persist a
checkpoint after every completed stage and resume from the last one
after a crash -- with the resumed run's final model and report
**bitwise identical** to an uninterrupted run.

Why bitwise identity is achievable at stage granularity: every
stochastic draw in training comes from a stream freshly derived via
:func:`repro.rng.derive_seed` from ``(config.seed, scope)`` at the
point of use -- no RNG state is carried *across* stage boundaries.  A
stage is therefore a pure function of (model parameters, config,
training data), and restoring the parameters restores the whole
computation.  The checkpoint still records the root seed and the
config/data fingerprint so a resume against a different run is
rejected instead of silently diverging (see DESIGN.md section 12).

Checkpoints are written atomically (temp file + ``os.replace``), so a
kill mid-write can never leave a truncated archive that later loads as
a valid stage.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.facs.descriptions import FacialDescription
from repro.reliability.faults import fault_point

#: Checkpoint archive format version (bump on layout changes).
CHECKPOINT_VERSION: int = 1

#: Algorithm 1's stage boundaries, in execution order.  A stage a
#: variant's switches skip is simply never checkpointed; resume skips
#: every stage with index <= the latest checkpoint's.
STAGE_NAMES: tuple[str, ...] = (
    "describe",        # Stage 1: instruction tuning (Eq. 2)
    "bootstrap",       # Stage 2: initial E_o + bootstrap assess head
    "describe_dpo",    # Stage 3: reflection loop + description DPO (Eq. 3)
    "assess_final",    # Stage 4: assess re-train on refined E (Eq. 4)
    "rationale_dpo",   # Stage 5: rationale ranking + DPO (Eq. 5)
)

_STAGE_FILE = re.compile(r"stage_(\d{2})_[a-z_]+\.npz$")

_NUM_AUS = 12


def training_fingerprint(config, train_data, instruction_pairs) -> str:
    """Digest of everything a resumed run must share with the original:
    the full config, the training samples (ids, render seeds, labels),
    and the instruction-pair count."""
    payload = {
        "config": {
            key: value
            for key, value in sorted(
                dataclasses.asdict(config).items())
        },
        "samples": [
            (s.video.video_id, int(s.video.spec.seed), int(s.label))
            for s in train_data
        ],
        "num_instruction_pairs": len(instruction_pairs),
    }
    encoded = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).hexdigest()


def _encode_descriptions(
    descriptions: list[FacialDescription | None],
) -> tuple[np.ndarray, np.ndarray]:
    """(matrix, none-mask) encoding; AU binary vectors are exact."""
    matrix = np.zeros((len(descriptions), _NUM_AUS))
    mask = np.zeros(len(descriptions), dtype=np.int64)
    for row, desc in enumerate(descriptions):
        if desc is None:
            mask[row] = 1
        else:
            matrix[row] = desc.to_vector()
    return matrix, mask


def _decode_descriptions(
    matrix: np.ndarray, mask: np.ndarray,
) -> list[FacialDescription | None]:
    return [
        None if mask[row] else FacialDescription.from_vector(matrix[row])
        for row in range(matrix.shape[0])
    ]


class TrainingCheckpointer:
    """Saves/loads one training run's stage-boundary checkpoints.

    Parameters
    ----------
    directory:
        Where the ``stage_<index>_<name>.npz`` archives live.  Created
        on first save.
    fingerprint:
        The run identity from :func:`training_fingerprint`; a resume
        whose fingerprint differs raises :class:`CheckpointError`.
    """

    def __init__(self, directory: str | Path, fingerprint: str,
                 seed: int = 0):
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        #: Root RNG seed of the run.  No generator state is carried
        #: across stage boundaries (module docstring), so the root seed
        #: *is* the complete RNG stream state at every boundary.
        self.seed = seed

    # ------------------------------------------------------------------

    def stage_path(self, stage_index: int) -> Path:
        return self.directory / (
            f"stage_{stage_index:02d}_{STAGE_NAMES[stage_index]}.npz")

    def save_stage(self, stage_index: int, model, report,
                   descriptions: list[FacialDescription | None] | None,
                   ) -> Path:
        """Persist the end-of-stage state atomically."""
        fault_point("persistence.io")
        self.directory.mkdir(parents=True, exist_ok=True)
        payload: dict[str, np.ndarray] = {
            f"param/{k}": v for k, v in model.state_dict().items()
        }
        payload["meta/version"] = np.array(CHECKPOINT_VERSION)
        payload["meta/stage_index"] = np.array(stage_index)
        payload["meta/stage"] = np.array(STAGE_NAMES[stage_index])
        payload["meta/fingerprint"] = np.array(self.fingerprint)
        payload["meta/seed"] = np.array(self.seed)
        for fld in dataclasses.fields(report):
            value = getattr(report, fld.name)
            if isinstance(value, list):
                payload[f"report/{fld.name}"] = np.asarray(value,
                                                           dtype=np.float64)
            else:
                payload[f"report/{fld.name}"] = np.array(int(value))
        if descriptions is not None:
            matrix, mask = _encode_descriptions(descriptions)
            payload["desc/matrix"] = matrix
            payload["desc/mask"] = mask
        path = self.stage_path(stage_index)
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **payload)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------

    def latest_stage(self) -> int | None:
        """Index of the newest *valid* checkpoint, or ``None``.

        Archives that fail to parse (e.g. a crash landed mid-write
        before atomic replace existed, or a stray file matches the
        name pattern) are skipped rather than trusted.
        """
        if not self.directory.is_dir():
            return None
        best: int | None = None
        for entry in self.directory.iterdir():
            match = _STAGE_FILE.search(entry.name)
            if not match:
                continue
            index = int(match.group(1))
            if best is not None and index <= best:
                continue
            if self._valid(entry):
                best = index
        return best

    def _valid(self, path: Path) -> bool:
        try:
            with np.load(path) as archive:
                return (
                    "meta/version" in archive.files
                    and int(archive["meta/version"]) == CHECKPOINT_VERSION
                    and str(archive["meta/fingerprint"]) == self.fingerprint
                )
        except Exception:  # noqa: BLE001 - any unreadable file is invalid
            return False

    def load_stage(self, stage_index: int, model, report,
                   ) -> list[FacialDescription | None] | None:
        """Restore model parameters and report fields in place; returns
        the checkpointed descriptions (or ``None`` when the stage
        predates them)."""
        fault_point("persistence.io")
        path = self.stage_path(stage_index)
        if not path.exists():
            raise CheckpointError(f"no checkpoint at {path}")
        with np.load(path) as archive:
            names = set(archive.files)
            if "meta/version" not in names:
                raise CheckpointError(f"{path} is not a training checkpoint")
            version = int(archive["meta/version"])
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint version {version} "
                    f"(expected {CHECKPOINT_VERSION})")
            found = str(archive["meta/fingerprint"])
            if found != self.fingerprint:
                raise CheckpointError(
                    f"checkpoint {path} belongs to a different run "
                    f"(fingerprint {found[:12]}..., expected "
                    f"{self.fingerprint[:12]}...); refusing to resume")
            state = {
                name[len("param/"):]: archive[name]
                for name in names if name.startswith("param/")
            }
            model.load_state_dict(state)
            for fld in dataclasses.fields(report):
                key = f"report/{fld.name}"
                if key not in names:
                    continue
                value = archive[key]
                if isinstance(getattr(report, fld.name), list):
                    setattr(report, fld.name, [float(v) for v in value])
                else:
                    setattr(report, fld.name, int(value))
            if "desc/matrix" in names:
                return _decode_descriptions(archive["desc/matrix"],
                                            archive["desc/mask"])
        return None
