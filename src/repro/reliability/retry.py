"""Retry with seeded exponential backoff.

Retryability is a property of the error *type*, not of the call site:
an exception is retried iff it derives from
:class:`~repro.errors.TransientError` (the reliability branch of the
library's taxonomy).  Everything else -- config errors, model misuse,
programming errors -- fails immediately; retrying a deterministic
failure only multiplies its cost.

Backoff delays are *seeded*: the jitter sequence comes from a
:mod:`repro.rng` stream derived from ``(policy.seed, scope)``, so a
retry schedule is reproducible run-to-run exactly like every other
stochastic choice in the repo.  Attempt counts land in the
process-wide metrics registry (``reliability.retry_attempts``
histogram, ``reliability.retries`` counter).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigError, TransientError
from repro.observability.metrics import global_metrics
from repro.rng import make_rng


def is_retryable(exc: BaseException) -> bool:
    """The taxonomy rule: transient errors retry, everything else is
    fatal."""
    return isinstance(exc, TransientError)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    Attempt ``k`` (0-based) sleeps
    ``min(base_delay_ms * multiplier**k, max_delay_ms)`` scaled by a
    uniform jitter factor in ``[1 - jitter, 1 + jitter]`` before
    retrying.  ``max_attempts`` counts *total* tries, so ``1`` disables
    retrying.
    """

    max_attempts: int = 3
    base_delay_ms: float = 1.0
    multiplier: float = 2.0
    max_delay_ms: float = 50.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ConfigError("backoff delays must be >= 0 ms")
        if self.multiplier < 1.0:
            raise ConfigError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(
                f"jitter must be in [0, 1), got {self.jitter}")

    def delays_s(self, scope: str = "") -> list[float]:
        """The full jittered backoff schedule (``max_attempts - 1``
        sleeps), deterministic for a given ``(seed, scope)``."""
        rng = make_rng(self.seed, f"retry:{scope}")
        delays = []
        for attempt in range(self.max_attempts - 1):
            base = min(self.base_delay_ms * self.multiplier ** attempt,
                       self.max_delay_ms)
            factor = 1.0 + rng.uniform(-self.jitter, self.jitter)
            delays.append(base * factor / 1000.0)
        return delays


def retry_call(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    scope: str = "",
    classify: Callable[[BaseException], bool] = is_retryable,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> Any:
    """Call ``fn`` under ``policy``; re-raise the last error when the
    budget is exhausted or the error is fatal.

    ``scope`` names the seeded jitter stream (e.g. a batch id) so
    concurrent retry loops stay decorrelated yet reproducible.
    """
    delays = policy.delays_s(scope)
    metrics = global_metrics()
    attempts = 0
    while True:
        attempts += 1
        try:
            result = fn()
        except Exception as exc:  # noqa: BLE001 - classified below
            if attempts > len(delays) or not classify(exc):
                metrics.histogram("reliability.retry_attempts").observe(
                    attempts)
                raise
            metrics.counter("reliability.retries").inc()
            if on_retry is not None:
                on_retry(attempts, exc)
            sleep(delays[attempts - 1])
        else:
            metrics.histogram("reliability.retry_attempts").observe(attempts)
            return result


__all__ = ["RetryPolicy", "is_retryable", "retry_call", "TransientError"]
