"""Sliding-window circuit breaker.

The breaker guards the batch executor: every executed request outcome
is recorded, and when the failure rate over the most recent ``window``
outcomes crosses ``failure_threshold`` (with at least ``min_volume``
outcomes observed) the circuit **opens** -- execution stops, and the
service either fails fast or serves cache-only hits in degraded mode.
After ``open_duration_s`` the breaker goes **half-open** and admits up
to ``half_open_probes`` trial requests: if every probe succeeds the
circuit closes (window reset), a single probe failure re-opens it.

The clock is injectable so tests drive transitions deterministically;
state changes are exported as ``reliability.breaker_state`` (0 closed,
1 open, 2 half-open) plus transition counters.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.observability.metrics import global_metrics

#: Breaker states (the gauge exports the numeric value).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"
_STATE_VALUES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


@dataclass(frozen=True, slots=True)
class BreakerConfig:
    """Knobs of one :class:`CircuitBreaker`."""

    window: int = 32
    failure_threshold: float = 0.5
    min_volume: int = 8
    open_duration_s: float = 5.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ConfigError(
                "failure_threshold must be in (0, 1], "
                f"got {self.failure_threshold}")
        if self.min_volume < 1:
            raise ConfigError(
                f"min_volume must be >= 1, got {self.min_volume}")
        if self.open_duration_s < 0:
            raise ConfigError(
                f"open_duration_s must be >= 0, got {self.open_duration_s}")
        if self.half_open_probes < 1:
            raise ConfigError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}")


class CircuitBreaker:
    """Thread-safe failure-rate breaker with half-open probing."""

    def __init__(self, config: BreakerConfig | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 name: str = "serving"):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_failures = 0
        self._probe_successes = 0
        metrics = global_metrics()
        self._m_state = metrics.gauge(f"reliability.breaker_state.{name}")
        self._m_opened = metrics.counter(f"reliability.breaker_opened.{name}")
        self._m_closed = metrics.counter(f"reliability.breaker_closed.{name}")
        self._m_state.set(_STATE_VALUES[CLOSED])

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May a request execute right now?

        In half-open state this *admits* a probe (bounded by
        ``half_open_probes``); the caller must report the probe's
        outcome through :meth:`record`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probes_in_flight >= self.config.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record(self, success: bool) -> None:
        """Report one executed request's outcome."""
        with self._lock:
            self._maybe_half_open()
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                if success:
                    self._probe_successes += 1
                    if self._probe_successes >= self.config.half_open_probes:
                        self._transition(CLOSED)
                else:
                    self._transition(OPEN)
                return
            if self._state == OPEN:
                # Outcome of a request admitted before the trip; it no
                # longer changes the verdict.
                return
            self._outcomes.append(success)
            if self._trippable():
                self._transition(OPEN)

    # ------------------------------------------------------------------

    def _trippable(self) -> bool:
        if len(self._outcomes) < self.config.min_volume:
            return False
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes) >= self.config.failure_threshold

    def _maybe_half_open(self) -> None:
        if (self._state == OPEN
                and self._clock() - self._opened_at
                >= self.config.open_duration_s):
            self._transition(HALF_OPEN)

    def _transition(self, state: str) -> None:
        # Called under the lock.
        self._state = state
        self._m_state.set(_STATE_VALUES[state])
        if state == OPEN:
            self._opened_at = self._clock()
            self._m_opened.inc()
        elif state == CLOSED:
            self._outcomes.clear()
            self._m_closed.inc()
        self._probes_in_flight = 0
        self._probe_failures = 0
        self._probe_successes = 0
