"""Deterministic fault injection at named sites.

A handful of *fault sites* are compiled into the library's hot paths:

========================  ====================================================
site                      where it fires
========================  ====================================================
``model.forward``         :meth:`FoundationModel.embed_video` (the trunk pass
                          every served request performs)
``serve.execute``         :meth:`ChainBatchExecutor.run_batch`, once per
                          unique video group before its chain runs
``cache.get``             :meth:`LRUCache.get` (all serving stage caches)
``persistence.io``        :func:`save_model` / :func:`load_model` (and the
                          training checkpointer built on them)
``cv.fold``               each cross-validation fold, before its fit
========================  ====================================================

When no :class:`FaultPlan` is installed every site is a no-op costing
one global read and a ``None`` check (the disabled-path benchmark in
``benchmarks/bench_reliability.py`` pins this).  When a plan is armed,
each site draws from its *own* seeded RNG stream -- derived from
``(plan seed, site name)`` exactly like every other stream in the repo
(see :mod:`repro.rng`) -- so a failure schedule is a pure function of
the plan: replaying the same seed against the same call sequence
injects the same faults at the same hit indices, which is what lets
the chaos suite assert exact invariants under chaos.

Plans come from code (tests) or from the environment::

    REPRO_FAULTS="serve.execute:rate=0.25;cache.get:rate=0.1,mode=delay,delay_ms=2"

Spec grammar: ``site:key=value[,key=value...]`` joined by ``;``.  Keys:
``rate`` (fault probability per hit, required), ``mode`` (``error`` |
``delay``, default ``error``), ``delay_ms`` (for ``delay`` mode) and
``max`` (stop injecting after N faults at this site).  An optional
leading ``seed=N;`` entry seeds the plan (default 0).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.config import FAULTS_ENV, env_value
from repro.errors import ConfigError, FaultInjectedError
from repro.rng import make_rng

#: Every fault site compiled into the library.
FAULT_SITES: tuple[str, ...] = (
    "model.forward",
    "serve.execute",
    "cache.get",
    "persistence.io",
    "cv.fold",
)

_MODES = ("error", "delay")


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One site's injection schedule inside a :class:`FaultPlan`."""

    site: str
    rate: float
    mode: str = "error"
    delay_ms: float = 0.0
    max_faults: int | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.mode not in _MODES:
            raise ConfigError(
                f"fault mode must be one of {_MODES}, got {self.mode!r}")
        if self.delay_ms < 0:
            raise ConfigError(
                f"delay_ms must be >= 0, got {self.delay_ms}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ConfigError(
                f"max must be >= 0, got {self.max_faults}")


@dataclass(frozen=True, slots=True)
class SiteCounts:
    """Observed traffic of one site under an armed plan."""

    hits: int
    faults: int


class _SiteState:
    __slots__ = ("spec", "rng", "hits", "faults")

    def __init__(self, spec: FaultSpec, plan_seed: int):
        self.spec = spec
        self.rng = make_rng(plan_seed, f"faults:{spec.site}")
        self.hits = 0
        self.faults = 0


class FaultPlan:
    """A seeded, deterministic schedule of faults across sites.

    Thread-safe: serving drives fault sites from several threads, and
    each site's draw sequence is serialized under the plan lock, so the
    *number* of faults per site is deterministic for a given number of
    hits even when the hit order across threads is not.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = (),
                 seed: int = 0):
        sites = [spec.site for spec in specs]
        if len(sites) != len(set(sites)):
            raise ConfigError(f"duplicate fault site in plan: {sites}")
        self.seed = seed
        self._lock = threading.Lock()
        self._sites = {
            spec.site: _SiteState(spec, seed) for spec in specs
        }

    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (module docstring)."""
        seed = 0
        specs: list[FaultSpec] = []
        for entry in text.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                seed = int(entry[len("seed="):])
                continue
            site, __, options = entry.partition(":")
            site = site.strip()
            fields: dict[str, object] = {}
            for option in options.split(","):
                option = option.strip()
                if not option:
                    continue
                key, sep, value = option.partition("=")
                if not sep:
                    raise ConfigError(
                        f"bad fault option {option!r} in {entry!r} "
                        "(expected key=value)")
                key = key.strip()
                value = value.strip()
                if key == "rate":
                    fields["rate"] = float(value)
                elif key == "mode":
                    fields["mode"] = value
                elif key == "delay_ms":
                    fields["delay_ms"] = float(value)
                elif key == "max":
                    fields["max_faults"] = int(value)
                else:
                    raise ConfigError(
                        f"unknown fault option {key!r} in {entry!r}")
            if "rate" not in fields:
                raise ConfigError(f"fault spec {entry!r} is missing rate=")
            specs.append(FaultSpec(site=site, **fields))  # type: ignore[arg-type]
        return cls(specs, seed=seed)

    # ------------------------------------------------------------------

    def check(self, site: str) -> None:
        """One hit at ``site``: raise/delay per the schedule, else pass."""
        state = self._sites.get(site)
        if state is None:
            return
        with self._lock:
            state.hits += 1
            spec = state.spec
            if spec.max_faults is not None and state.faults >= spec.max_faults:
                return
            if spec.rate <= 0.0 or state.rng.random() >= spec.rate:
                return
            state.faults += 1
            fault_index = state.faults
        if spec.mode == "delay":
            time.sleep(spec.delay_ms / 1000.0)
            return
        raise FaultInjectedError(
            f"injected fault #{fault_index} at site {site!r} "
            f"(plan seed {self.seed}, rate {spec.rate})")

    def counts(self) -> dict[str, SiteCounts]:
        """Hits and injected faults per configured site."""
        with self._lock:
            return {
                site: SiteCounts(hits=state.hits, faults=state.faults)
                for site, state in self._sites.items()
            }

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._sites)


# ----------------------------------------------------------------------
# The process-wide armed plan
# ----------------------------------------------------------------------

_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The currently armed plan, or ``None``."""
    return _ACTIVE


def install_plan(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (replaces any previous plan)."""
    global _ACTIVE
    _ACTIVE = plan


def uninstall_plan() -> None:
    """Disarm fault injection; every site returns to the no-op path."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of a ``with`` block (tests)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def fault_point(site: str) -> None:
    """The call compiled into each site.

    The disabled path is one module-global read and a ``None`` check;
    sites may sit on hot loops (``model.forward`` runs per request).
    """
    plan = _ACTIVE
    if plan is not None:
        plan.check(site)


def configure_from_env() -> FaultPlan | None:
    """Arm a plan from ``REPRO_FAULTS`` if the variable is set.

    Called once at :mod:`repro.reliability` import, mirroring how
    ``REPRO_TRACE`` auto-installs the JSONL exporter.  Returns the
    installed plan (or ``None``).
    """
    spec = env_value(FAULTS_ENV)
    if not spec:
        return None
    plan = FaultPlan.from_spec(spec)
    install_plan(plan)
    return plan
