"""Synthetic UVSD (University Video Stress Detection) dataset.

The real UVSD corpus (Zhang et al., 2020) records 112 college students
(58 male / 64 female, aged 18-26) watching videos, labelled by whether
the watched content was followed by a knowledge test: 2092 clips, 920
stressed / 1172 unstressed.  The synthetic stand-in matches those
counts exactly; lab recording conditions translate to strong AU-stress
coupling, low capture noise and no occlusion.
"""

from __future__ import annotations

from repro.datasets.base import StressDataset
from repro.datasets.synth import SynthesisConfig, records_to_samples, synthesize_dataset
from repro.facs.stress_priors import default_stress_prior

#: Paper statistics for UVSD.
NUM_SAMPLES: int = 2092
NUM_SUBJECTS: int = 112
NUM_STRESSED: int = 920


def uvsd_config(num_samples: int = NUM_SAMPLES,
                num_subjects: int = NUM_SUBJECTS,
                num_stressed: int | None = None) -> SynthesisConfig:
    """UVSD generation config; counts can be scaled down for tests
    (class balance is preserved when ``num_stressed`` is omitted)."""
    if num_stressed is None:
        num_stressed = int(round(num_samples * NUM_STRESSED / NUM_SAMPLES))
    return SynthesisConfig(
        name="uvsd",
        num_samples=num_samples,
        num_subjects=num_subjects,
        num_stressed=num_stressed,
        prior=default_stress_prior(coupling=2.5),
        label_noise=0.04,
        noise_scale=0.02,
        lighting_scale=0.04,
        occlusion_rate=0.0,
    )


def generate_uvsd(seed: int = 0, num_samples: int = NUM_SAMPLES,
                  num_subjects: int = NUM_SUBJECTS) -> StressDataset:
    """Generate the synthetic UVSD dataset.

    Parameters
    ----------
    seed:
        Root seed; the same seed reproduces the dataset bit-for-bit.
    num_samples, num_subjects:
        Scale knobs for fast tests; defaults match the paper.
    """
    config = uvsd_config(num_samples, num_subjects)
    return StressDataset("uvsd", tuple(records_to_samples(
        synthesize_dataset(config, seed)
    )))
