"""Shared synthesis machinery for the stress datasets.

UVSD and RSL differ only in their statistics (counts, balance, AU-stress
coupling, capture noise); the per-sample generative process is shared:

1. each *subject* gets an identity embedding, an expressivity gain and
   idiosyncratic per-AU base-rate offsets;
2. each *sample* gets a stress label; with probability ``label_noise``
   the facial behaviour is drawn from the *opposite* class (an
   ambiguous recording -- this is what caps achievable accuracy);
3. AU occurrences are Bernoulli draws from the class-conditional
   activation probabilities of the dataset's
   :class:`~repro.facs.stress_priors.StressPrior`, shifted by the
   subject offsets;
4. each occurring AU receives an onset-apex-offset intensity curve over
   the clip's frames, scaled by the subject's expressivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.facs.action_units import NUM_AUS
from repro.facs.stress_priors import StressPrior
from repro.rng import derive_seed
from repro.video.frame import (
    DEFAULT_NUM_FRAMES,
    IDENTITY_DIM,
    Video,
    VideoSpec,
)


@dataclass(frozen=True)
class SubjectProfile:
    """Latent per-subject parameters."""

    subject_id: str
    identity: np.ndarray
    expressivity: float
    au_offsets: np.ndarray


@dataclass(frozen=True)
class SynthesisConfig:
    """Dataset-level knobs of the generative process."""

    name: str
    num_samples: int
    num_subjects: int
    num_stressed: int
    prior: StressPrior
    label_noise: float = 0.04
    noise_scale: float = 0.02
    lighting_scale: float = 0.05
    occlusion_rate: float = 0.0
    num_frames: int = DEFAULT_NUM_FRAMES
    subject_offset_scale: float = 0.35

    def __post_init__(self) -> None:
        if self.num_samples < 1 or self.num_subjects < 1:
            raise DatasetError("num_samples and num_subjects must be positive")
        if not 0 <= self.num_stressed <= self.num_samples:
            raise DatasetError("num_stressed must lie in [0, num_samples]")
        if not 0.0 <= self.label_noise < 0.5:
            raise DatasetError("label_noise must lie in [0, 0.5)")


def make_subject(config: SynthesisConfig, index: int,
                 rng: np.random.Generator) -> SubjectProfile:
    """Draw one subject's latent parameters."""
    return SubjectProfile(
        subject_id=f"{config.name}-subj-{index:04d}",
        identity=rng.standard_normal(IDENTITY_DIM),
        expressivity=float(np.clip(rng.normal(1.0, 0.18), 0.55, 1.45)),
        au_offsets=rng.normal(0.0, config.subject_offset_scale, NUM_AUS),
    )


def _logit(p: np.ndarray) -> np.ndarray:
    return np.log(p) - np.log1p(-p)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def sample_au_occurrence(config: SynthesisConfig, subject: SubjectProfile,
                         behave_stressed: bool,
                         rng: np.random.Generator) -> np.ndarray:
    """Binary AU occurrence vector for one clip."""
    probs = config.prior.activation_probs(stressed=behave_stressed)
    probs = _sigmoid(_logit(probs) + subject.au_offsets)
    return (rng.random(NUM_AUS) < probs).astype(np.float64)


def au_intensity_curves(config: SynthesisConfig, subject: SubjectProfile,
                        occurrence: np.ndarray,
                        rng: np.random.Generator,
                        behave_stressed: bool = False) -> np.ndarray:
    """Per-frame AU intensities, shape (num_frames, 12).

    Occurring AUs follow an onset-apex-offset Gaussian bump whose apex
    clears the 0.5 occurrence threshold; silent AUs carry only low
    residual motion.  Under stress the stress-indicative AUs fire more
    intensely (the apex distribution shifts upward), so raw pixels
    carry class evidence beyond the binary occurrence pattern -- this
    is the signal that separates vision-based methods from methods
    restricted to per-frame emotion polarity.
    """
    num_frames = config.num_frames
    frames = np.arange(num_frames, dtype=np.float64)
    curves = np.zeros((num_frames, NUM_AUS))
    stress_positive = config.prior.stress_log_odds > 0
    for i in range(NUM_AUS):
        if occurrence[i] >= 0.5:
            apex = rng.uniform(0.2, 0.8) * (num_frames - 1)
            width = rng.uniform(0.12, 0.35) * num_frames
            low, high = 0.58, 0.92
            if behave_stressed and stress_positive[i]:
                low, high = 0.74, 1.0
            peak = np.clip(
                rng.uniform(low, high) * subject.expressivity, 0.55, 1.0
            )
            curves[:, i] = peak * np.exp(-0.5 * ((frames - apex) / width) ** 2)
        else:
            curves[:, i] = rng.uniform(0.0, 0.12, num_frames)
    return np.clip(curves, 0.0, 1.0)


def synthesize_dataset(config: SynthesisConfig, seed: int):
    """Generate all samples for ``config``; returns a list of
    ``(VideoSpec, label, true_aus)`` triples.

    The label sequence interleaves classes deterministically so any
    prefix of the dataset is approximately class-balanced in the same
    ratio as the whole, and samples are dealt to subjects round-robin.
    """
    rng = np.random.default_rng(derive_seed(seed, f"synth:{config.name}"))
    subjects = [make_subject(config, i, rng) for i in range(config.num_subjects)]

    labels = np.zeros(config.num_samples, dtype=np.int64)
    stressed_positions = np.linspace(
        0, config.num_samples - 1, config.num_stressed
    ).round().astype(int) if config.num_stressed else np.array([], dtype=int)
    labels[stressed_positions] = 1
    # linspace rounding can collide for extreme ratios; repair the count.
    deficit = config.num_stressed - int(labels.sum())
    if deficit > 0:
        zeros = np.where(labels == 0)[0]
        labels[zeros[:deficit]] = 1

    records = []
    for index in range(config.num_samples):
        subject = subjects[index % config.num_subjects]
        label = int(labels[index])
        behave_stressed = bool(label)
        if rng.random() < config.label_noise:
            behave_stressed = not behave_stressed
        occurrence = sample_au_occurrence(config, subject, behave_stressed, rng)
        curves = au_intensity_curves(config, subject, occurrence, rng,
                                     behave_stressed=behave_stressed)
        true_aus = (curves.max(axis=0) >= 0.5).astype(np.float64)
        spec = VideoSpec(
            video_id=f"{config.name}-{index:05d}",
            subject_id=subject.subject_id,
            au_intensities=curves,
            identity=subject.identity,
            lighting=float(rng.normal(0.0, config.lighting_scale)),
            noise_scale=config.noise_scale,
            occlusion_rate=config.occlusion_rate,
            seed=derive_seed(seed, f"{config.name}:render:{index}"),
        )
        records.append((spec, label, true_aus))
    return records


def records_to_samples(records) -> list:
    """Wrap synthesis records into :class:`~repro.datasets.base.Sample`s."""
    from repro.datasets.base import Sample

    return [
        Sample(video=Video(spec), label=label, true_aus=true_aus)
        for spec, label, true_aus in records
    ]
