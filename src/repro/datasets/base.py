"""Dataset value types and split utilities.

A :class:`Sample` pairs a lazily-rendered :class:`~repro.video.frame.Video`
with its stress label and ground-truth AU occurrence vector; a
:class:`StressDataset` is an immutable ordered collection with
subject-aware split helpers.  All splits are *subject-aware* (no subject
appears in both train and test), matching how the video stress
literature -- and the paper's 10-fold protocol -- avoids identity
leakage.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.facs.descriptions import FacialDescription
from repro.rng import make_rng
from repro.video.frame import Video

#: Stress label values.
UNSTRESSED: int = 0
STRESSED: int = 1


@dataclass(frozen=True)
class Sample:
    """One labelled stress-detection sample.

    Attributes
    ----------
    video:
        The (lazily rendered) clip.
    label:
        ``1`` = stressed, ``0`` = unstressed.
    true_aus:
        Ground-truth binary AU occurrence vector (12-dim).  Kept for
        dataset-level analysis and oracle tests; detection methods only
        see pixels.
    """

    video: Video
    label: int
    true_aus: np.ndarray

    def __post_init__(self) -> None:
        if self.label not in (UNSTRESSED, STRESSED):
            raise DatasetError(f"label must be 0 or 1, got {self.label}")

    @property
    def sample_id(self) -> str:
        return self.video.video_id

    @property
    def subject_id(self) -> str:
        return self.video.subject_id

    def true_description(self) -> FacialDescription:
        """The oracle facial-action description of this sample."""
        return FacialDescription.from_vector(self.true_aus)


@dataclass(frozen=True)
class StressDataset:
    """An immutable, ordered collection of stress samples."""

    name: str
    samples: tuple[Sample, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "samples", tuple(self.samples))
        ids = [sample.sample_id for sample in self.samples]
        if len(set(ids)) != len(ids):
            raise DatasetError(f"dataset {self.name!r} has duplicate sample ids")

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> Sample:
        return self.samples[index]

    @property
    def labels(self) -> np.ndarray:
        return np.array([sample.label for sample in self.samples], dtype=np.int64)

    def subjects(self) -> tuple[str, ...]:
        """Distinct subject ids in first-appearance order."""
        seen: dict[str, None] = {}
        for sample in self.samples:
            seen.setdefault(sample.subject_id, None)
        return tuple(seen)

    def class_counts(self) -> tuple[int, int]:
        """(num_unstressed, num_stressed)."""
        labels = self.labels
        return int((labels == UNSTRESSED).sum()), int((labels == STRESSED).sum())

    def subset(self, indices: Sequence[int], name: str | None = None) -> "StressDataset":
        """A new dataset containing the given sample indices, in order."""
        picked = tuple(self.samples[i] for i in indices)
        return StressDataset(name or self.name, picked)


def kfold_splits(
    dataset: StressDataset, num_folds: int = 10, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Subject-aware k-fold splits.

    Subjects are shuffled deterministically and dealt round-robin into
    ``num_folds`` groups; each fold's test set is every sample from its
    subject group.  Returns a list of ``(train_indices, test_indices)``
    pairs covering all samples exactly once on the test side.
    """
    if num_folds < 2:
        raise DatasetError("num_folds must be at least 2")
    subjects = list(dataset.subjects())
    if len(subjects) < num_folds:
        raise DatasetError(
            f"dataset {dataset.name!r} has {len(subjects)} subjects, "
            f"fewer than {num_folds} folds"
        )
    rng = make_rng(seed, f"kfold:{dataset.name}:{num_folds}")
    rng.shuffle(subjects)
    fold_of_subject = {
        subject: i % num_folds for i, subject in enumerate(subjects)
    }
    folds: list[list[int]] = [[] for _ in range(num_folds)]
    for index, sample in enumerate(dataset):
        folds[fold_of_subject[sample.subject_id]].append(index)
    splits = []
    all_indices = set(range(len(dataset)))
    for fold in folds:
        test = np.array(sorted(fold), dtype=np.int64)
        train = np.array(sorted(all_indices - set(fold)), dtype=np.int64)
        splits.append((train, test))
    return splits


def train_test_split(
    dataset: StressDataset, test_fraction: float = 0.2, seed: int = 0
) -> tuple[StressDataset, StressDataset]:
    """Single subject-aware split into (train, test) datasets."""
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError("test_fraction must lie strictly in (0, 1)")
    subjects = list(dataset.subjects())
    rng = make_rng(seed, f"split:{dataset.name}:{test_fraction}")
    rng.shuffle(subjects)
    num_test_subjects = max(1, int(round(len(subjects) * test_fraction)))
    test_subjects = set(subjects[:num_test_subjects])
    train_idx = [i for i, s in enumerate(dataset) if s.subject_id not in test_subjects]
    test_idx = [i for i, s in enumerate(dataset) if s.subject_id in test_subjects]
    if not train_idx or not test_idx:
        raise DatasetError("split produced an empty train or test set")
    return (
        dataset.subset(train_idx, f"{dataset.name}-train"),
        dataset.subset(test_idx, f"{dataset.name}-test"),
    )
