"""Synthetic dataset generators and dataset abstractions.

The three corpora the paper uses are semi-restricted video datasets;
this package generates synthetic stand-ins with matching statistics
(sample counts, subject counts, class balance) whose stress <-> facial
action link follows the literature-grounded priors in
:mod:`repro.facs.stress_priors`:

- :mod:`~repro.datasets.disfa` -- DISFA+ (645 clips, dense 12-AU labels)
  for Stage-1 instruction tuning;
- :mod:`~repro.datasets.uvsd` -- UVSD (2092 clips, 112 subjects,
  920 stressed / 1172 unstressed), lab-quality footage;
- :mod:`~repro.datasets.rsl` -- RSL (706 clips, 60 subjects,
  209 stressed / 497 unstressed), harder in-the-wild footage.
"""

from repro.datasets.base import Sample, StressDataset, kfold_splits, train_test_split
from repro.datasets.disfa import generate_disfa
from repro.datasets.instruction import build_instruction_pairs
from repro.datasets.rsl import generate_rsl
from repro.datasets.uvsd import generate_uvsd

__all__ = [
    "Sample",
    "StressDataset",
    "build_instruction_pairs",
    "generate_disfa",
    "generate_rsl",
    "generate_uvsd",
    "kfold_splits",
    "train_test_split",
]
