"""Synthetic RSL (Real-life Stress from "Odd Man Out") dataset.

The real RSL corpus is curated from a reality TV program in which liars
conceal their identities under questioning: 60 subjects (1:1
male/female), 706 clips, 209 stressed / 497 unstressed.  In-the-wild
TV footage is far harder than lab video, which the synthetic stand-in
expresses as weaker AU-stress coupling, more label noise, stronger
capture noise/lighting variation and occasional occlusion -- so every
method scores lower on RSL than on UVSD, as in all of the paper's
tables.
"""

from __future__ import annotations

from repro.datasets.base import StressDataset
from repro.datasets.synth import SynthesisConfig, records_to_samples, synthesize_dataset
from repro.facs.stress_priors import default_stress_prior

#: Paper statistics for RSL.
NUM_SAMPLES: int = 706
NUM_SUBJECTS: int = 60
NUM_STRESSED: int = 209


def rsl_config(num_samples: int = NUM_SAMPLES,
               num_subjects: int = NUM_SUBJECTS,
               num_stressed: int | None = None) -> SynthesisConfig:
    """RSL generation config; counts can be scaled down for tests."""
    if num_stressed is None:
        num_stressed = int(round(num_samples * NUM_STRESSED / NUM_SAMPLES))
    return SynthesisConfig(
        name="rsl",
        num_samples=num_samples,
        num_subjects=num_subjects,
        num_stressed=num_stressed,
        prior=default_stress_prior(coupling=1.9),
        label_noise=0.06,
        noise_scale=0.05,
        lighting_scale=0.10,
        occlusion_rate=0.18,
        subject_offset_scale=0.45,
    )


def generate_rsl(seed: int = 0, num_samples: int = NUM_SAMPLES,
                 num_subjects: int = NUM_SUBJECTS) -> StressDataset:
    """Generate the synthetic RSL dataset (see :func:`rsl_config`)."""
    config = rsl_config(num_samples, num_subjects)
    return StressDataset("rsl", tuple(records_to_samples(
        synthesize_dataset(config, seed)
    )))
