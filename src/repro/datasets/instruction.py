"""Instruction-pair construction for Stage-1 tuning.

Section III-B: "we construct a facial action description dataset D'
with instruction answer pairs <V, E> ... For each video V, we transform
the target action unit label into natural linguistic description E."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import StressDataset
from repro.facs.descriptions import FacialDescription
from repro.video.frame import Video


@dataclass(frozen=True)
class InstructionPair:
    """One <video, description> instruction-tuning example."""

    video: Video
    description: FacialDescription

    @property
    def text(self) -> str:
        """The rendered natural-language answer."""
        return self.description.render()


def build_instruction_pairs(dataset: StressDataset) -> list[InstructionPair]:
    """Turn an AU-annotated dataset (DISFA+) into <V, E> pairs."""
    return [
        InstructionPair(
            video=sample.video,
            description=FacialDescription.from_vector(sample.true_aus),
        )
        for sample in dataset
    ]
