"""Synthetic DISFA+ facial-expression recognition dataset.

DISFA+ (Mavadati et al., 2016) contains 645 manually AU-annotated video
samples covering 12 action units; the paper uses it to instruction-tune
the Describe step.  The synthetic stand-in renders 645 clips with dense
12-dim AU occurrence labels.  Because DISFA+ mixes posed and
spontaneous expressions, AU occurrence rates are moderate and
independent of any stress state, and every AU appears often enough for
the model to learn all 12 description phrases.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Sample, StressDataset, UNSTRESSED
from repro.datasets.synth import SubjectProfile, SynthesisConfig, au_intensity_curves
from repro.facs.action_units import NUM_AUS
from repro.facs.stress_priors import default_stress_prior
from repro.rng import derive_seed
from repro.video.frame import DEFAULT_NUM_FRAMES, IDENTITY_DIM, Video, VideoSpec

#: Paper statistics for DISFA+.
NUM_SAMPLES: int = 645
NUM_SUBJECTS: int = 27

#: Posed-expression AU occurrence rate (per AU, independent).
_POSED_RATE: float = 0.30


def generate_disfa(seed: int = 0, num_samples: int = NUM_SAMPLES,
                   num_subjects: int = NUM_SUBJECTS) -> StressDataset:
    """Generate the synthetic DISFA+ dataset.

    Samples carry ``label = UNSTRESSED`` uniformly; only ``true_aus``
    matters for instruction tuning.
    """
    rng = np.random.default_rng(derive_seed(seed, "synth:disfa"))
    # Reuse the intensity-curve machinery via a throwaway config.
    config = SynthesisConfig(
        name="disfa", num_samples=num_samples, num_subjects=num_subjects,
        num_stressed=0, prior=default_stress_prior(),
        num_frames=DEFAULT_NUM_FRAMES,
    )
    subjects = [
        SubjectProfile(
            subject_id=f"disfa-subj-{i:03d}",
            identity=rng.standard_normal(IDENTITY_DIM),
            expressivity=float(np.clip(rng.normal(1.05, 0.12), 0.7, 1.4)),
            au_offsets=np.zeros(NUM_AUS),
        )
        for i in range(num_subjects)
    ]
    samples = []
    for index in range(num_samples):
        subject = subjects[index % num_subjects]
        occurrence = (rng.random(NUM_AUS) < _POSED_RATE).astype(np.float64)
        curves = au_intensity_curves(config, subject, occurrence, rng)
        true_aus = (curves.max(axis=0) >= 0.5).astype(np.float64)
        spec = VideoSpec(
            video_id=f"disfa-{index:05d}",
            subject_id=subject.subject_id,
            au_intensities=curves,
            identity=subject.identity,
            lighting=float(rng.normal(0.0, 0.03)),
            noise_scale=0.015,
            seed=derive_seed(seed, f"disfa:render:{index}"),
        )
        samples.append(Sample(video=Video(spec), label=UNSTRESSED,
                              true_aus=true_aus))
    return StressDataset("disfa", tuple(samples))
